#!/usr/bin/env python3
"""Compare the three query variants (Qry_F / Qry_E / Qry_Ba) on one
dataset — the trade-off Section 10 introduces and Figure 12 measures.

Qry_F buries duplicates (full privacy), Qry_E eliminates them (leaks the
uniqueness pattern, much faster), Qry_Ba batches the expensive
deduplicate+sort+check work every p depths (fastest).

Run:  python examples/variants_tradeoff.py
"""

import time

from repro import SecTopK, SystemParams
from repro.core.results import QueryConfig
from repro.data import correlated_relation
from repro.nra import SortedLists, nra_topk


def main() -> None:
    relation = correlated_relation(36, 3, seed=21, correlation=0.85)
    scheme = SecTopK(SystemParams.insecure_demo(), seed=13)
    encrypted = scheme.encrypt(relation.rows)
    token = scheme.token([0, 1, 2], k=4)
    oracle = nra_topk(SortedLists(relation.rows, [0, 1, 2]), 4)
    print(f"n={relation.n_objects}, m=3, k=4; plaintext NRA halts at depth {oracle.halting_depth}\n")

    configs = {
        "Qry_F  (SecDedup/depth)": QueryConfig(variant="full", engine="eager"),
        "Qry_E  (SecDupElim/depth)": QueryConfig(variant="elim", engine="eager"),
        "Qry_Ba (batch p=4)": QueryConfig(variant="batch", batch_p=4, engine="eager"),
    }
    print(f"{'variant':28s} {'time':>8s} {'ms/depth':>9s} {'depth':>6s} {'KB':>8s}")
    for label, config in configs.items():
        started = time.perf_counter()
        result = scheme.query(encrypted, token, config)
        elapsed = time.perf_counter() - started
        winners = scheme.reveal(result)
        assert {o for o, _ in winners} == {o for o, _ in oracle.topk}
        print(
            f"{label:28s} {elapsed:7.2f}s "
            f"{1000 * elapsed / result.halting_depth:8.0f} "
            f"{result.halting_depth:6d} "
            f"{result.channel_stats.total_bytes / 1000:8.1f}"
        )
    print("\nall three variants return the same (correct) top-k set;")
    print("they differ in privacy (UP_d leakage) and per-depth cost.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Remote two-cloud deployment: query a standalone S2 daemon over TCP.

Launches the S2 service (``python -m repro.server.s2_service``) as a
separate OS process — the paper's crypto cloud on its own host — then
runs the quickstart workload against it through a
:class:`~repro.server.TopKServer` and checks the remote run is
bit-identical to the in-process one: same winners, same halting depth,
same round and byte counts.  A second query demonstrates the relation
registration: the daemon already holds the key material, so nothing but
the tiny session handshake crosses the wire before the protocol rounds.

Run:  PYTHONPATH=src python examples/remote_s2.py
"""

from __future__ import annotations

from repro import SecTopK, SystemParams
from repro.core.results import QueryConfig
from repro.data import gaussian_relation
from repro.net.socket_transport import disconnect_all
from repro.server import TopKServer
from repro.server.s2_service import launch_daemon


def main() -> None:
    # -- Data owner: keys + encrypted relation --------------------------
    relation = gaussian_relation(n_objects=20, n_attributes=3, seed=7)
    scheme = SecTopK(SystemParams.insecure_demo(), seed=2024)
    encrypted = scheme.encrypt(relation.rows)
    token = scheme.token(attributes=[0, 1, 2], k=3)
    config = QueryConfig(variant="elim", engine="eager")

    # -- Reference: both clouds in this process --------------------------
    with TopKServer(scheme, encrypted) as server:
        local = server.execute(token, config)
    local_winners = scheme.reveal(local)
    print(f"in-process: top-3 {local_winners}, "
          f"{local.channel_stats.rounds} rounds, "
          f"{local.channel_stats.total_bytes / 1000:.1f} KB")

    # -- Deployment: S2 in a separate OS process -------------------------
    daemon, address = launch_daemon()
    print(f"S2 daemon up at {address} (pid {daemon.pid})")
    try:
        with TopKServer(scheme, encrypted, transport=address) as server:
            remote = server.execute(token, config)
            # Second query: the relation is registered, the daemon keeps
            # the key material — only protocol rounds cross the wire.
            again = server.execute(scheme.token(attributes=[0, 1], k=2), config)
        remote_winners = scheme.reveal(remote)
        print(f"remote:     top-3 {remote_winners}, "
              f"{remote.channel_stats.rounds} rounds, "
              f"{remote.channel_stats.total_bytes / 1000:.1f} KB")
        print(f"second query on the registered relation: "
              f"top-2 {scheme.reveal(again)}")

        assert remote_winners == local_winners, "remote run diverged!"
        assert remote.halting_depth == local.halting_depth
        assert remote.channel_stats.rounds == local.channel_stats.rounds
        assert remote.channel_stats.total_bytes == local.channel_stats.total_bytes
        print("remote S2 is transport-equivalent: identical results, "
              "rounds, and bytes")
    finally:
        disconnect_all()
        daemon.terminate()
        daemon.wait(timeout=10)


if __name__ == "__main__":
    main()

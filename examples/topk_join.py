#!/usr/bin/env python3
"""Secure top-k join over two encrypted relations (Section 12).

Two hospital tables are joined on a shared department code and ranked by
the sum of a cost column from each side — the shape of the paper's
example  SELECT * FROM R1, R2 WHERE R1.A = R2.B
         ORDER BY R1.C + R2.D STOP AFTER k.

Run:  python examples/topk_join.py
"""

from repro.baselines.plaintext import plaintext_topk_join
from repro.core.params import SystemParams
from repro.crypto.rng import SecureRandom
from repro.join import SecTopKJoin


def main() -> None:
    rng = SecureRandom(99)
    # R1: (department, treatment_cost, beds)
    admissions = [
        [rng.randint_below(4), rng.randint_below(90), rng.randint_below(20)]
        for _ in range(9)
    ]
    # R2: (department, equipment_cost)
    equipment = [
        [rng.randint_below(4), rng.randint_below(90)] for _ in range(11)
    ]

    owner = SecTopKJoin(SystemParams.insecure_demo(), seed=5)
    er1 = owner.encrypt("admissions", admissions)
    er2 = owner.encrypt("equipment", equipment)
    print(
        f"encrypted: admissions {er1.n_tuples}x{er1.n_attributes}, "
        f"equipment {er2.n_tuples}x{er2.n_attributes}"
    )

    token = owner.token(
        "admissions", "equipment", join_on=(0, 0), order_by=(1, 1), k=4
    )
    print(
        "query: SELECT * FROM admissions, equipment "
        "WHERE admissions.dept = equipment.dept "
        "ORDER BY treatment_cost + equipment_cost STOP AFTER 4"
    )

    result = owner.join_query(er1, er2, token)
    revealed = owner.reveal(result)
    print(
        f"\njoin cardinality: {result.join_cardinality} pairs; "
        f"{result.channel_stats.total_bytes / 1000:.1f} KB inter-cloud traffic"
    )
    print("secure top-4 join scores:", [score for score, _ in revealed])

    oracle = plaintext_topk_join(admissions, equipment, (0, 0), (1, 1), 4)
    assert [score for score, _ in revealed] == [score for score, _, _ in oracle]
    print("matches the plaintext equi-join oracle")


if __name__ == "__main__":
    main()

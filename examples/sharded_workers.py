#!/usr/bin/env python3
"""Distributed S1: the storage scan spread over remote shard workers.

Launches two shard-worker daemons (``python -m
repro.server.shard_service``) as separate OS processes — the storage
cloud's scan nodes on their own hosts — then serves the same relation
three ways and checks the transcripts never move:

1. a single-worker (unsharded) scan,
2. local thread-pool shard workers (``shards=4``),
3. the plan's four slices placed on the two remote daemons
   (``shards=[addr1, addr2]``, round-robin).

Each slice's rows upload to its daemon once (the SLICE frame); after
that only tiny per-window requests cross the shard link, and the
per-item weighting modexp runs daemon-side.  The S1 <-> S2 channel
numbers — results, halting depth, rounds, bytes, leakage — are
bit-identical across all three, because the shard link is storage
infrastructure, invisible to the paper's accounting.

Run:  PYTHONPATH=src python examples/sharded_workers.py
"""

from __future__ import annotations

from repro import SecTopK, SystemParams
from repro.core.results import QueryConfig
from repro.data import gaussian_relation
from repro.net.socket_transport import disconnect_all
from repro.server import TopKServer
from repro.server.shard_service import launch_daemon


def transcript(scheme, result):
    return (
        scheme.reveal(result),
        result.halting_depth,
        result.channel_stats.rounds,
        result.channel_stats.total_bytes,
    )


def main() -> None:
    # -- Data owner: keys + encrypted relation --------------------------
    relation = gaussian_relation(n_objects=20, n_attributes=3, seed=7)
    scheme = SecTopK(SystemParams.insecure_demo(), seed=2024)
    encrypted = scheme.encrypt(relation.rows)
    token = scheme.token(attributes=[0, 1, 2], k=3, weights=[2, 1, 3])
    config = QueryConfig(variant="elim", engine="eager")

    # -- Reference: one worker, then local thread shards -----------------
    with TopKServer(scheme, encrypted) as server:
        base = server.execute(token, config)
    with TopKServer(scheme, encrypted, shards=4) as server:
        local = server.execute(token, config)
    print(f"unsharded:    top-3 {transcript(scheme, base)[0]}, "
          f"{base.channel_stats.rounds} rounds")
    assert transcript(scheme, local) == transcript(scheme, base)

    # -- Deployment: two shard daemons in separate OS processes ----------
    workers = [launch_daemon() for _ in range(2)]
    addresses = [address for _, address in workers]
    for process, address in workers:
        print(f"shard worker up at {address} (pid {process.pid})")
    try:
        with TopKServer(scheme, encrypted, shards=addresses) as server:
            # Four slices round-robined over two daemons; the first
            # query uploads each slice once.
            remote = server.execute(token, QueryConfig(
                variant="elim", engine="eager", shards=4,
            ))
            # Repeat: the slices are registered, so only per-window
            # shard-batch requests cross the shard link.
            again = server.execute(token, QueryConfig(
                variant="elim", engine="eager", shards=4,
            ))
        print(f"remote x4:    top-3 {transcript(scheme, remote)[0]}, "
              f"{remote.channel_stats.rounds} rounds")
        for s in remote.stats.shards:
            print(f"  shard {s.shard_id}: depths [{s.depth_lo}, {s.depth_hi}) "
                  f"scanned {s.records_scanned} records "
                  f"in {s.elapsed_seconds * 1000:.1f} ms")

        assert transcript(scheme, remote) == transcript(scheme, base), (
            "remote placement changed the transcript!"
        )
        assert {o for o, _ in scheme.reveal(again)} == {
            o for o, _ in scheme.reveal(base)
        }
        print("remote shard placement is transcript-invisible: identical "
              "results, rounds, and bytes")
    finally:
        disconnect_all()
        for process, _ in workers:
            process.terminate()
        for process, _ in workers:
            process.wait(timeout=10)


if __name__ == "__main__":
    main()

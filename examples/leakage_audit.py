#!/usr/bin/env python3
"""Audit what the two clouds actually observed during a query.

Section 9 proves CQA security relative to explicit leakage profiles
(query pattern and halting depth for S1; per-depth equality patterns for
S2).  This example runs one query with full instrumentation, prints
every class of observation either server made, and verifies that nothing
falls outside the declared profile.

Run:  python examples/leakage_audit.py
"""

import repro
from repro import SecTopK, SystemParams
from repro.core.leakage import ALLOWED_KINDS, audit
from repro.core.results import QueryConfig
from repro.crypto.rng import SecureRandom
from repro.protocols.base import LeakageLog


def main() -> None:
    rng = SecureRandom(3)
    rows = [[rng.randint_below(50) for _ in range(3)] for _ in range(12)]
    scheme = SecTopK(SystemParams.insecure_demo(), seed=8)
    encrypted = scheme.encrypt(rows)

    # The client API attaches every query's leakage slice to the result,
    # so the audit needs no access to the context at all.
    client = repro.connect(scheme, encrypted)
    token = client.token([0, 1, 2], k=3)
    result = client.query(token, QueryConfig(variant="elim", engine="eager"))
    print(f"query done: halting depth {result.halting_depth}\n")

    log = LeakageLog()
    log.events = list(result.leakage_events)
    report = audit(log)
    print("observations by kind (count -> licensed by):")
    for kind, count in sorted(report.counts.items()):
        print(f"  {kind:18s} x{count:5d} -> {ALLOWED_KINDS[kind]}")

    assert report.clean, f"UNDECLARED LEAKAGE: {report.unclassified}"
    print("\naudit clean: every observation is covered by the declared")
    print("leakage profile (L_Setup, L1_Query, L2_Query of Section 9)")

    # Show one equality-pattern batch: what S2 actually saw at one depth.
    eq = log.by_kind("eq_bits")
    if eq:
        print(f"\nexample EP_d batch S2 saw (bits of a permuted batch): {eq[-1].payload}")

    # Repeat the query: S1's query-pattern leakage flips to "repeated".
    repeat = client.query(token, QueryConfig(variant="elim"))
    client.close()
    qp = [
        e.payload
        for r in (result, repeat)
        for e in r.leakage_events
        if e.kind == "query_pattern"
    ]
    print(f"query-pattern observations across the two runs: {qp}")
    assert qp == [False, True]


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating scenario (Example 1.1): an authorized doctor
queries an encrypted electronic-health-record database.

The `patients` heart-disease table from Table 1 of the paper:

    patient   age  id   trestbps  chol  thalach
    Bob        38  121   110       196   166
    Celvin     43  222   120       201   160
    David      60  285   100       248   142
    Emma       36  956   120       267   112
    Flora      43  756   100       223   127

Doctor Alice runs  SELECT * FROM patients ORDER BY chol + thalach
STOP AFTER 2  over the *encrypted* table; the expected answer, per the
paper, is David and Emma.

Run:  python examples/healthcare_topk.py
"""

from repro import SecTopK, SystemParams
from repro.core.results import QueryConfig

PATIENTS = ["Bob", "Celvin", "David", "Emma", "Flora"]
ATTRIBUTES = ["age", "id", "trestbps", "chol", "thalach"]
ROWS = [
    [38, 121, 110, 196, 166],
    [43, 222, 120, 201, 160],
    [60, 285, 100, 248, 142],
    [36, 956, 120, 267, 112],
    [43, 756, 100, 223, 127],
]
CHOL, THALACH = ATTRIBUTES.index("chol"), ATTRIBUTES.index("thalach")


def main() -> None:
    # Data owner (the hospital) encrypts the records before outsourcing.
    owner = SecTopK(SystemParams.insecure_demo(), seed=11)
    encrypted = owner.encrypt(ROWS)
    print(f"encrypted patients table uploaded ({encrypted.size_mb() * 1000:.0f} KB)")

    # Alice obtains the token key from the owner and queries the cloud.
    token = owner.token(attributes=[CHOL, THALACH], k=2)
    print("Alice's query: SELECT * FROM patients ORDER BY chol+thalach STOP AFTER 2")

    result = owner.query(
        encrypted, token, QueryConfig(variant="full", engine="eager")
    )
    winners = owner.reveal(result)

    print(f"\nencrypted top-2 (halting depth {result.halting_depth}):")
    for row_id, score in winners:
        print(f"  {PATIENTS[row_id]:8s} chol+thalach = {score}")

    names = {PATIENTS[row_id] for row_id, _ in winners}
    assert names == {"David", "Emma"}, names
    print("\nmatches the paper's Example 1.1: David and Emma")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mutable encrypted relations + continuous top-k, end to end.

Demonstrates the PR-9 mutation subsystem:

* :class:`repro.MutableRelation` — encrypted insert / update / delete
  with incremental sorted-list maintenance (only touched prefixes are
  re-encrypted; the ``mutation_pattern`` leakage is declared per op);
* version bumps folding into ``relation_id()`` so caches, warm-start
  history and daemon registrations invalidate instead of aliasing;
* ``client.watch`` — a long-lived job that re-evaluates after every
  mutation and streams :class:`repro.TopKChanged` exactly when the
  revealed winners change, including the sliding-insert ``window`` mode;
* the same churn driven over a real S2 daemon in a separate OS process
  (MUTATE frames re-key the registration, no key re-upload).

Run:  PYTHONPATH=src python examples/streaming_topk.py
"""

from __future__ import annotations

import time

import repro
from repro.net.socket_transport import disconnect_all
from repro.server.s2_service import launch_daemon


def _settled(watch, count: int, timeout: float = 60.0) -> None:
    """Block until the watch has evaluated ``count`` times.

    Rapid-fire mutations coalesce into one evaluation (the runner wakes
    once for everything that happened while it was busy); pacing the
    churn keeps the demo's evaluation count deterministic.
    """
    deadline = time.monotonic() + timeout
    while watch.evaluations < count:
        assert time.monotonic() < deadline, "watch fell behind"
        time.sleep(0.01)


def mutate_and_watch(address: str | None = None) -> list[tuple[int, int]]:
    scheme = repro.SecTopK(repro.SystemParams.tiny(), seed=424242)
    rows = [[5, 2], [3, 9], [8, 1], [6, 6]]          # aggregates 7 12 9 12
    mutable = repro.MutableRelation(scheme, rows)

    target = address or "inprocess"
    with repro.connect(scheme, mutable, target) as client:
        token = client.token([0, 1], k=2)
        baseline = client.query(token)
        print(f"  [{target}] v{client.version} top-2: "
              f"{client.reveal(baseline)}")

        # A continuous watch: evaluates now, then after every mutation.
        watch = client.watch(token)
        _settled(watch, 1)

        res = client.insert([9, 9])                  # new champion (18)
        print(f"  [{target}] insert -> oid {res.object_id}, v{res.version}, "
              f"touched prefixes {res.touched}")
        _settled(watch, 2)
        client.update(res.object_id, [0, 0])         # demote it again
        _settled(watch, 3)
        client.delete(res.object_id)                 # and remove it
        _settled(watch, 4)

        watch.stop()
        summary = watch.summary(timeout=60)
        for event in watch.changes():
            print(f"  [{target}] TopKChanged @v{event.version}: "
                  f"{event.top_k}")
        # Three mutations + the initial evaluation (which announces the
        # baseline as the first change).  The update restored the
        # original winners, so the delete evaluated silently.
        assert summary.evaluations == 4, summary
        assert summary.changes == 3, summary
        assert client.version == 3

        final = client.query(token)
        assert client.reveal(final) == client.reveal(baseline)
        print(f"  [{target}] watch summary: {summary.evaluations} evaluations, "
              f"{summary.changes} changes; winners restored")
        return client.reveal(final)


def sliding_window(n_events: int = 4) -> None:
    """The streaming mode: top-k over the last-N inserted rows."""
    scheme = repro.SecTopK(repro.SystemParams.tiny(), seed=7)
    mutable = repro.MutableRelation(scheme, [[1, 1], [2, 2]])
    with repro.connect(scheme, mutable) as client:
        watch = client.watch(client.token([0, 1], k=1), window=2)
        _settled(watch, 1)
        for step, value in enumerate(range(3, 3 + n_events), start=2):
            client.insert([value * 3 % 11, value * 5 % 11])
            _settled(watch, step)
        watch.stop()
        summary = watch.summary(timeout=60)
        assert summary.evaluations == n_events + 1, summary
        print(f"  [window=2] {summary.evaluations} evaluations over the "
              f"insert stream; final window winner {summary.last_top_k}")


def main() -> None:
    print("-- in-process churn + watch --")
    local = mutate_and_watch()

    print("-- sliding insert window --")
    sliding_window()

    print("-- the same churn over a TCP daemon --")
    daemon, address = launch_daemon()
    print(f"  S2 daemon up at {address} (pid {daemon.pid})")
    try:
        remote = mutate_and_watch(address)
    finally:
        disconnect_all()
        daemon.terminate()
        daemon.wait(timeout=10)

    assert remote == local, "daemon-backed churn diverged from in-process!"
    print("remote churn matches in-process (same winners at every step)")


if __name__ == "__main__":
    main()

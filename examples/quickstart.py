#!/usr/bin/env python3
"""Quickstart: encrypt a relation, run a secure top-k query, reveal.

Demonstrates the three algorithms of ``SecTopK = (Enc, Token, SecQuery)``
end to end on a small synthetic relation, and cross-checks the encrypted
result against the plaintext NRA oracle.

Run:  python examples/quickstart.py
"""

from repro import SecTopK, SystemParams
from repro.core.results import QueryConfig
from repro.data import gaussian_relation
from repro.nra import SortedLists, nra_topk


def main() -> None:
    # -- Data owner: generate keys, encrypt, outsource ------------------
    relation = gaussian_relation(n_objects=30, n_attributes=4, seed=7)
    scheme = SecTopK(SystemParams.insecure_demo(), seed=2024)
    print(f"relation: {relation.n_objects} objects x {relation.n_attributes} attributes")

    encrypted = scheme.encrypt(relation.rows)
    print(f"encrypted relation: {encrypted.size_mb():.3f} MB uploaded to cloud S1")

    # -- Client: build a token for  SELECT * ORDER BY a0+a1+a2 STOP AFTER 3
    token = scheme.token(attributes=[0, 1, 2], k=3)
    print(f"query token (permuted list names): {token.permuted_lists}, k={token.k}")

    # -- Clouds: oblivious NRA between S1 and the crypto cloud S2 -------
    result = scheme.query(
        encrypted,
        token,
        QueryConfig(variant="elim", engine="eager", halting="strict"),
    )
    print(
        f"halted at depth {result.halting_depth}; "
        f"{result.channel_stats.total_bytes / 1000:.1f} KB crossed the inter-cloud "
        f"link in {result.channel_stats.rounds} rounds"
    )

    # -- Client: reveal the winners --------------------------------------
    winners = scheme.reveal(result)
    print("secure top-3:", winners)

    # -- Sanity: the plaintext NRA oracle agrees exactly -----------------
    oracle = nra_topk(SortedLists(relation.rows, [0, 1, 2]), 3)
    assert winners == oracle.topk, "secure engine diverged from plaintext NRA!"
    assert result.halting_depth == oracle.halting_depth
    print("matches the plaintext NRA oracle (same ids, scores, halting depth)")


if __name__ == "__main__":
    main()

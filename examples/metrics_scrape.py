#!/usr/bin/env python3
"""The observability layer, end to end: exporter, traces, live scrape.

Mounts the server's Prometheus exporter on an ephemeral localhost port
(``repro.connect(..., metrics_port=0)``), runs a few queries, and then

* scrapes ``/metrics`` the way Prometheus would and prints the query
  latency histogram, cache counters and scheduler gauges;
* checks ``/healthz`` before and after ``drain()`` — the load
  balancer's remove-from-rotation signal;
* prints the last job's :class:`~repro.obs.trace.JobTrace` timeline
  (queued → run → per-round laps → pool sub-spans) and its per-phase
  aggregate via :func:`~repro.obs.trace.trace_phases`.

In a real deployment the same endpoint comes from the daemon side too:
``python -m repro.server.s2_service --metrics-port 9464`` serves its
own registrations/sessions/request series at ``:9464/metrics``.

Run:  PYTHONPATH=src python examples/metrics_scrape.py
"""

from __future__ import annotations

import urllib.error
import urllib.request

import repro
from repro import QueryConfig
from repro.data import gaussian_relation
from repro.obs.trace import trace_phases


def scrape(port: int, path: str = "/metrics") -> tuple[int, str]:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def main() -> None:
    relation = gaussian_relation(n_objects=20, n_attributes=3, seed=7)
    scheme = repro.SecTopK(repro.SystemParams.insecure_demo(), seed=2024)
    encrypted = scheme.encrypt(relation.rows)
    config = QueryConfig(variant="elim", engine="eager")

    with repro.connect(scheme, encrypted, metrics_port=0) as client:
        port = client.server.metrics_port
        print(f"exporter on http://127.0.0.1:{port}/metrics\n")

        # Drive some traffic: two distinct queries plus one cache hit.
        hot = client.token([0, 1], k=3)
        client.query(hot, config)
        client.query(client.token([1, 2], k=3), config)
        job = client.submit(hot, config)
        result = job.result()
        assert result.cache_hit, "repeat of a finished query must hit the cache"

        # -- the scrape, as Prometheus would do it -----------------------
        status, body = scrape(port)
        assert status == 200
        wanted = (
            "repro_query_seconds_bucket",
            "repro_query_seconds_count",
            "repro_cache_hits_total",
            "repro_cache_misses_total",
            "repro_channel_rounds_total",
            "repro_scheduler_queue_depth",
            "repro_scheduler_jobs_active",
        )
        print("-- /metrics (selected series) --")
        for line in body.splitlines():
            if not line.startswith(wanted):
                continue
            if "_bucket{" in line and '"+Inf"' not in line:
                continue  # full histograms are long; print the +Inf tail
            print(f"  {line}")
        for name in wanted:
            assert name in body, f"missing series: {name}"

        # -- health: ready while serving, draining once told to ----------
        status, text = scrape(port, "/healthz")
        print(f"\n/healthz while serving: {status} {text.strip()}")
        assert status == 200
        client.server.drain()
        status, text = scrape(port, "/healthz")
        print(f"/healthz after drain():  {status} {text.strip()}")
        assert status == 503

        # -- the cache hit's trace: queued + run, zero rounds ------------
        print("\n-- cache-hit job trace --")
        for span in result.trace:
            print(f"  {span.name:<10} {span.seconds * 1e3:8.3f} ms")
        print("\n-- per-phase aggregate (trace_phases) --")
        for phase, agg in sorted(trace_phases(result.trace).items()):
            print(
                f"  {phase:<10} {agg['seconds'] * 1e3:8.3f} ms "
                f"across {agg['count']} span(s)"
            )
    print("\nok")


if __name__ == "__main__":
    main()

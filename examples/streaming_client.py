#!/usr/bin/env python3
"""The job-oriented client API, live against a remote S2 daemon.

Launches the standalone S2 service as a separate OS process, connects
with :func:`repro.connect`, and demonstrates the whole job surface:

* ``submit`` — queries become asynchronous :class:`~repro.server.jobs.QueryJob`\\ s;
* ``events()`` — typed progress streaming (depths scanned, round/byte
  counters, finalized winners) while the query runs;
* overlapped jobs — a second query pipelined behind the first;
* ``result().stats`` — the uniform :class:`~repro.core.results.QueryStats`
  cost block;
* parity — the remote submit path is bit-identical to an in-process
  ``execute``.

Run:  PYTHONPATH=src python examples/streaming_client.py
"""

from __future__ import annotations

import repro
from repro import QueryConfig
from repro.data import gaussian_relation
from repro.events import CandidateFinalized, DepthAdvanced, RoundTrip
from repro.net.socket_transport import disconnect_all
from repro.server.s2_service import launch_daemon


def main() -> None:
    # -- Data owner: keys + encrypted relation --------------------------
    relation = gaussian_relation(n_objects=20, n_attributes=3, seed=7)
    scheme = repro.SecTopK(repro.SystemParams.insecure_demo(), seed=2024)
    encrypted = scheme.encrypt(relation.rows)
    config = QueryConfig(variant="elim", engine="eager")

    # -- Reference: the same job in-process ------------------------------
    with repro.connect(scheme, encrypted) as client:
        local = client.query(client.token([0, 1, 2], k=3), config)
    print(f"in-process: top-3 {scheme.reveal(local)}, "
          f"{local.stats.rounds} rounds, {local.stats.total_bytes / 1000:.1f} KB")

    # -- Deployment: S2 in a separate OS process -------------------------
    daemon, address = launch_daemon()
    print(f"S2 daemon up at {address} (pid {daemon.pid})")
    try:
        with repro.connect(scheme, encrypted, address) as client:
            job = client.submit(client.token([0, 1, 2], k=3), config)
            # A second job, pipelined behind the first on the job queue.
            tail = client.submit(client.token([0, 1], k=2), config)

            for event in job.events():
                if isinstance(event, DepthAdvanced):
                    print(f"  depth {event.depth:2d} scanned, "
                          f"{event.candidates} candidates in T")
                elif isinstance(event, CandidateFinalized):
                    print(f"  winner #{event.rank} finalized at depth {event.depth}")
            remote = job.result(timeout=120)
            rounds = [e for e in job.events() if isinstance(e, RoundTrip)]
            print(f"remote:     top-3 {scheme.reveal(remote)}, "
                  f"{remote.stats.rounds} rounds "
                  f"({len(rounds)} streamed), "
                  f"{remote.stats.total_bytes / 1000:.1f} KB, "
                  f"leakage events: {len(remote.stats.leakage)}")
            print(f"pipelined second job: top-2 {scheme.reveal(tail.result(timeout=120))}")

        assert scheme.reveal(remote) == scheme.reveal(local), "remote job diverged!"
        assert remote.stats.rounds == local.stats.rounds
        assert remote.stats.total_bytes == local.stats.total_bytes
        # The two jobs draw distinct randomness streams (one scheme, two
        # servers), so permutation-dependent leakage *payloads* differ by
        # design; the declared profile — which server observed what, in
        # which protocol — must match event for event.  (The test suite
        # pins full bit-identity across identically-seeded deployments.)
        assert [t[:3] for t in remote.stats.leakage] == [
            t[:3] for t in local.stats.leakage
        ]
        print("submit-over-TCP matches the in-process run "
              "(results, rounds, bytes, leakage profile)")
    finally:
        disconnect_all()
        daemon.terminate()
        daemon.wait(timeout=10)


if __name__ == "__main__":
    main()

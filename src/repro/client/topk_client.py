"""``TopKClient`` — the façade in front of the whole query stack.

One object, one mental model::

    import repro

    client = repro.connect(scheme, encrypted, "tcp://s2.example:9317")
    job = client.submit(client.token([0, 1, 2], k=3))
    for event in job.events():          # DepthAdvanced, RoundTrip, ...
        print(event)
    result = job.result(timeout=30.0)
    print(client.reveal(result), result.stats.rounds, result.stats.total_bytes)

Everything the pre-redesign surface required the caller to stitch
together — ``make_clouds`` wiring, ``TopKServer`` sessions,
``execute``/``execute_many`` modes, channel snapshots, leakage logs —
sits behind :meth:`TopKClient.submit`: queries are *jobs* with
``result(timeout)`` / ``cancel()`` / ``done()`` and a typed
``events()`` stream, and every result carries its full cost profile in
``result.stats`` (:class:`~repro.core.results.QueryStats`), identically
across all transports and execution modes.
"""

from __future__ import annotations

from repro.core.relation import EncryptedRelation
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.core.token import Token
from repro.server.jobs import QueryJob, WatchJob
from repro.server.mutations import MutableRelation, MutationResult
from repro.server.topk_server import TopKServer


def connect(
    scheme: SecTopK,
    relation: EncryptedRelation | MutableRelation,
    address: str = "inprocess",
    *,
    rtt_ms: float = 0.0,
    s2_workers: int = 0,
    max_pending: int = 128,
    scheduler_workers: int = 8,
    shards: int | list[str] | tuple[str, ...] = 0,
    cache: bool = True,
    cache_capacity: int = 256,
    coalesce_ms: float = 0.0,
    warm_start: bool = False,
    metrics_port: int | None = None,
    state_dir: str | None = None,
) -> "TopKClient":
    """Connect a client to a relation at ``address``.

    ``address`` is a local backend name (``"inprocess"`` /
    ``"threaded"``) or the address of a standalone S2 daemon
    (``"tcp://host:port"`` / ``"unix:///path"``).  The returned
    :class:`TopKClient` owns its server: closing the client (or using
    it as a context manager) tears the whole deployment down.

    ``shards`` sets the server's default S1 shard-worker count:
    ``shards >= 2`` splits every query's sorted lists into contiguous
    depth slices scanned by shard workers and merged by the fan-in
    stage — transcripts (results, rounds, bytes, leakage) stay
    bit-identical to unsharded runs, and each result's
    ``stats.shards`` carries the per-shard cost slice.  Pass a list of
    shard-daemon addresses (``shards=["tcp://h1:p", "tcp://h2:p"]``)
    to place those slices on remote
    :class:`~repro.server.shard_service.ShardService` workers instead
    of local threads — same transcripts, distributed storage scan.

    The reuse layer rides on knowledge S1 already holds (L1 leakage):

    ``cache``
        Leakage-aware result cache (on by default).  A repeat of an
        earlier query — same token fingerprint, same relation, same
        transcript-relevant config — is served from the cache with
        **zero** S2 round-trips and ``stats.cache_hit=True``; the
        scheme still records the repeat, since ``query_pattern`` is
        exactly what the paper's L1 profile says S1 learns.  Opt out
        per query with ``QueryConfig(cache=False)`` or globally here.
    ``coalesce_ms``
        When positive, concurrent jobs on this relation that reach a
        round boundary within that window share one physical
        round-trip (``stats.coalesced_rounds`` counts them); per-job
        transcripts stay bit-identical to solo runs.  ``0`` disables.
    ``warm_start``
        Use the relation's observed halting depths (L1's
        ``halting_depth``) to place the first halting check just below
        the shallowest depth seen, skipping pre-halt checks.  Results
        are unchanged; only round count drops.  Also available
        per-query via ``QueryConfig(warm_start=True)``.

    ``metrics_port`` mounts the server's Prometheus ``/metrics`` +
    ``/healthz`` endpoint on ``127.0.0.1`` (``0`` = ephemeral port, read
    back from ``client.server.metrics_port``; ``None`` = no exporter).

    Pass a :class:`~repro.server.mutations.MutableRelation` as
    ``relation`` to make the deployment writable: ``client.insert`` /
    ``update`` / ``delete`` then apply encrypted mutations (each bumping
    ``client.version`` and invalidating every stale consumer), and
    ``client.watch`` starts continuous top-k jobs.  ``state_dir``
    persists the warm-start halting-depth history next to the daemon's
    registration spill, so a restarted deployment over unchanged data
    warm-starts immediately (the spill is dropped on every version
    bump).
    """
    server = TopKServer(
        scheme,
        relation,
        transport=address,
        rtt_ms=rtt_ms,
        s2_workers=s2_workers,
        max_pending=max_pending,
        scheduler_workers=scheduler_workers,
        shards=shards,
        cache=cache,
        cache_capacity=cache_capacity,
        coalesce_ms=coalesce_ms,
        warm_start=warm_start,
        metrics_port=metrics_port,
        state_dir=state_dir,
    )
    return TopKClient(server, owns_server=True)


class TopKClient:
    """Job-oriented client for secure top-k queries.

    Construct via :func:`connect` (owns a fresh server) or wrap an
    existing :class:`~repro.server.topk_server.TopKServer` to share its
    queue, pools and query-pattern history.
    """

    def __init__(self, server: TopKServer, owns_server: bool = False):
        self._server = server
        self._owns_server = owns_server
        self._closed = False

    # -- construction helpers --------------------------------------------

    @classmethod
    def for_server(cls, server: TopKServer) -> "TopKClient":
        """A client view over an existing server (not owned)."""
        return cls(server, owns_server=False)

    @property
    def server(self) -> TopKServer:
        """The underlying scheduler (sessions, pools, bookkeeping)."""
        return self._server

    @property
    def scheme(self) -> SecTopK:
        """The data owner's scheme (keys, token minting, reveal)."""
        return self._server.scheme

    @property
    def address(self) -> str:
        """The transport/backend this client's jobs run against."""
        return self._server.transport

    @property
    def stats(self) -> dict:
        """Reuse-layer counters: result-cache hits/misses/evictions,
        the coalescing window, and the current warm-start depth hint."""
        return self._server.stats

    # -- the job surface --------------------------------------------------

    def submit(
        self,
        token: Token,
        config: QueryConfig | None = None,
        *,
        timeout: float | None = None,
        expect_version: int | None = None,
    ) -> QueryJob:
        """Submit one query; returns its :class:`QueryJob` handle.

        ``timeout`` is the per-job deadline (seconds from submission),
        enforced cooperatively at round boundaries.  ``expect_version``
        pins the job to a relation version — it fails with
        :class:`~repro.exceptions.StaleRelationError` if a mutation
        lands first.  The job's transcript is bit-identical to the
        legacy ``execute`` path.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        return self._server.submit(
            token, config, timeout=timeout, expect_version=expect_version
        )

    def query(
        self,
        token: Token,
        config: QueryConfig | None = None,
        *,
        timeout: float | None = None,
    ) -> QueryResult:
        """Submit and block for the result (``submit(...).result()``)."""
        return self.submit(token, config, timeout=timeout).result()

    def submit_many(
        self,
        requests: list[tuple[Token, QueryConfig | None]],
        *,
        timeout: float | None = None,
    ) -> list[QueryJob]:
        """Submit a pipeline of jobs without waiting for any of them.

        The jobs overlap up to the server's scheduler capacity; collect
        them with ``[job.result() for job in jobs]`` (request order).
        """
        return [self.submit(token, config, timeout=timeout) for token, config in requests]

    # -- mutations and continuous top-k ------------------------------------

    @property
    def version(self) -> int:
        """Current relation version (bumped by every mutation)."""
        return self._server.version

    def mutate(self, op: str, *args) -> MutationResult:
        """Apply one encrypted mutation (``"insert"`` / ``"update"`` /
        ``"delete"``; requires a :class:`MutableRelation` deployment).

        Each mutation re-encrypts only the touched prefix of every
        sorted list, bumps :attr:`version`, and invalidates every
        consumer keyed by the predecessor relation id (result cache,
        shard slices, warm-start history, daemon registration).
        """
        if self._closed:
            raise RuntimeError("client is closed")
        return self._server.mutate(op, *args)

    def insert(self, row) -> MutationResult:
        """Insert one row; returns its allocated object id in the result."""
        return self.mutate("insert", row)

    def update(self, object_id: int, row) -> MutationResult:
        """Replace one row's scores in place."""
        return self.mutate("update", object_id, row)

    def delete(self, object_id: int) -> MutationResult:
        """Remove one row."""
        return self.mutate("delete", object_id)

    def watch(
        self,
        token: Token,
        config: QueryConfig | None = None,
        *,
        window: int | None = None,
        timeout: float | None = None,
    ) -> WatchJob:
        """Start a continuous top-k watch.

        The returned :class:`~repro.server.jobs.WatchJob` evaluates
        immediately and re-evaluates after every mutation, streaming
        :class:`~repro.events.TopKChanged` events (``job.changes()``)
        whenever the revealed winning set actually changes.
        ``window=N`` watches the last ``N`` inserted rows (sliding
        window) instead of the whole relation.  Stop with ``job.stop()``
        (graceful, resolves to a ``WatchSummary``) or ``job.cancel()``.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        return self._server.watch(
            token, config, window=window, timeout=timeout
        )

    # -- data-owner conveniences ------------------------------------------

    def token(
        self, attributes: list[int], k: int, weights: list[int] | None = None
    ) -> Token:
        """Mint a query token (delegates to the scheme)."""
        return self.scheme.token(attributes, k, weights)

    def reveal(self, result: QueryResult) -> list[tuple[int, int]]:
        """Decrypt a result's winners into ``(object_id, score)`` pairs."""
        return self.scheme.reveal(result)

    @staticmethod
    def engines() -> tuple[str, ...]:
        """Engine names selectable through ``QueryConfig(engine=...)``."""
        from repro.core.engine import engine_names

        return engine_names()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the client (and its server, when owned).  Idempotent,
        and safe when the daemon connection already died."""
        if self._closed:
            return
        self._closed = True
        if self._owns_server:
            self._server.close()

    def __enter__(self) -> "TopKClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The unified, job-oriented client API (see ARCHITECTURE.md, "Client
API" layer).

:func:`repro.connect` / :class:`TopKClient` are the single public entry
point to the query stack: one façade over every deployment mode
(in-process, threaded, remote TCP/Unix daemon) and every execution mode
(sequential, thread-windowed, worker-process pools), with asynchronous
job submission, streaming progress events and uniform
:class:`~repro.core.results.QueryStats` cost blocks.
"""

from repro.client.topk_client import TopKClient, connect
from repro.server.jobs import JobStatus, QueryJob

__all__ = ["TopKClient", "connect", "QueryJob", "JobStatus"]

"""Stdlib HTTP exporter: ``/metrics`` (Prometheus text) + ``/healthz``.

A :class:`MetricsExporter` wraps a ``ThreadingHTTPServer`` on its own
daemon thread, rendering one or more registries on every scrape (the S2
daemon mounts its per-instance registry next to the process-wide one so
a single scrape sees both).  ``/healthz`` reports the owner's
:class:`HealthState`: ``200 ready`` while serving, ``503 draining`` once
the owner's ``close()``/``drain()`` flipped it — a load balancer's
remove-from-rotation signal during graceful shutdown.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import REGISTRY

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HealthState:
    """Ready/draining flag shared between an owner and its exporter."""

    def __init__(self):
        self._draining = threading.Event()

    def drain(self) -> None:
        """Flip to draining (sticky; idempotent)."""
        self._draining.set()

    @property
    def ready(self) -> bool:
        return not self._draining.is_set()


class MetricsExporter:
    """Serve ``/metrics`` and ``/healthz`` for a set of registries.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    port either way.  Scrapes run on the HTTP server's own threads and
    only ever *read* instrument values, so the exporter adds nothing to
    any query path.
    """

    def __init__(self, port: int = 0, registries=None, health: HealthState | None = None):
        self.registries = list(registries) if registries is not None else [REGISTRY]
        self.health = health or HealthState()
        self._port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    def start(self) -> int:
        """Bind and start serving; returns the bound port. Idempotent."""
        if self._server is not None:
            return self.port
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 — http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = "".join(
                        reg.render() for reg in exporter.registries
                    ).encode("utf-8")
                    self._reply(200, CONTENT_TYPE, body)
                elif self.path.split("?", 1)[0] == "/healthz":
                    if exporter.health.ready:
                        self._reply(200, "text/plain; charset=utf-8", b"ready\n")
                    else:
                        self._reply(
                            503, "text/plain; charset=utf-8", b"draining\n"
                        )
                else:
                    self._reply(404, "text/plain; charset=utf-8", b"not found\n")

            def _reply(self, status: int, ctype: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # scrapes are not access-log events
                pass

        self._server = ThreadingHTTPServer(("127.0.0.1", self._port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def close(self) -> None:
        """Stop serving and release the port. Idempotent."""
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join()

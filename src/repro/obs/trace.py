"""Per-job trace timelines: monotonic-clock spans over a job's life.

A :class:`JobTrace` collects :class:`Span`\\ s — ``queued`` (submit →
start), ``run`` (start → finish), one ``round`` lap per coalesced
round-trip, plus duration-only sub-spans for compute-pool batches and
S2-side decrypt batches.  Traces are pure observation: building one
consumes no randomness and touches no protocol state, so a traced run
is transcript-identical to an untraced one (pinned by the equivalence
suites).

The frozen trace lands on :attr:`QueryResult.trace` /
:attr:`QueryStats.trace`; :func:`trace_phases` aggregates one or many
traces into the per-phase (queue vs rounds vs crypto) breakdowns the
benchmarks record.

Span times are ``time.monotonic()`` offsets from the trace's own
origin, so spans within one trace compare exactly; traces from
different processes do not share an origin.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One named interval: ``[start, end]`` seconds from the trace origin.

    Duration-only spans (a compute-pool batch measured elsewhere, an
    S2-side batch reported over the wire) anchor at the time they were
    *recorded* with ``start = end - duration``.
    """

    name: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


class JobTrace:
    """Mutable span collector for one job (thread-safe).

    ``begin``/``end`` bracket named phases; ``lap`` closes the previous
    occurrence of a repeating name (per-round spans) and opens the next;
    ``add`` records an externally-measured duration.  Close operations
    return the closed :class:`Span` (or ``None``) instead of invoking
    callbacks — callers deliver any derived events themselves, outside
    whatever locks they hold.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._origin = time.monotonic()
        self._open: dict[str, float] = {}
        self._spans: list[Span] = []

    def _now(self) -> float:
        return time.monotonic() - self._origin

    def begin(self, name: str) -> None:
        with self._lock:
            self._open[name] = self._now()

    def end(self, name: str) -> Span | None:
        """Close an open span; ``None`` when ``name`` was never begun."""
        now = self._now()
        with self._lock:
            start = self._open.pop(name, None)
            if start is None:
                return None
            span = Span(name, start, now)
            self._spans.append(span)
            return span

    def lap(self, name: str) -> Span | None:
        """Close the open ``name`` span (if any) and open the next one.

        Returns the span just closed — the per-round heartbeat: the
        first lap opens round 1, each later lap closes a round and
        opens the next.
        """
        now = self._now()
        with self._lock:
            start = self._open.get(name)
            self._open[name] = now
            if start is None:
                return None
            span = Span(name, start, now)
            self._spans.append(span)
            return span

    def add(self, name: str, seconds: float) -> Span:
        """Record an externally-measured duration, anchored at now."""
        now = self._now()
        span = Span(name, now - seconds, now)
        with self._lock:
            self._spans.append(span)
        return span

    def discard(self, name: str) -> None:
        """Drop an open span without recording it (a trailing ``round``
        lap that never completed is not a round)."""
        with self._lock:
            self._open.pop(name, None)

    def freeze(self) -> tuple[Span, ...]:
        """The spans recorded so far, chronological by end time."""
        with self._lock:
            return tuple(sorted(self._spans, key=lambda s: (s.end, s.start)))


def trace_phases(traces) -> dict:
    """Aggregate one or many frozen traces into per-phase totals.

    Returns ``{phase: {"seconds": total, "count": n}}`` where the phase
    is the span name with any ``:suffix`` stripped (``round:3`` folds
    into ``round``) — the shape the benchmarks store next to their
    wall-clock numbers.
    """
    if traces and isinstance(traces[0], Span):
        traces = [traces]
    out: dict[str, dict] = {}
    for trace in traces:
        for span in trace:
            phase = span.name.split(":", 1)[0]
            slot = out.setdefault(phase, {"seconds": 0.0, "count": 0})
            slot["seconds"] += span.seconds
            slot["count"] += 1
    return out

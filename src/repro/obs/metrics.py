"""Dependency-free metrics core: counters, gauges, fixed-bucket
histograms in a process-wide registry.

Instrumentation is **observation only** by construction: instruments
touch their own locks and integers/floats, never protocol state, and a
disabled registry (:func:`set_enabled`, ``REPRO_METRICS=0``) turns every
hot-path record into a no-op — results, rounds, bytes and leakage are
bit-identical either way (pinned by the transport-equivalence suite).

The surface mirrors the Prometheus client conventions without the
dependency:

* a :class:`MetricsRegistry` owns named *families*
  (``registry.counter(name, help, labelnames=())``); re-registering the
  same name returns the existing family (so module-level instrument
  definitions can run in any import order), while a name re-registered
  with a different type or label set fails loudly;
* a family with label names hands out children via
  ``family.labels(engine="eager")``; unlabeled families are used
  directly;
* label cardinality is bounded: past :data:`MAX_LABEL_SETS` distinct
  label combinations a family folds further combinations into one
  shared ``overflow="1"`` child instead of growing without bound (and
  never raises from a hot path);
* :meth:`MetricsRegistry.render` emits Prometheus text exposition
  format 0.0.4; :meth:`MetricsRegistry.snapshot` returns a consistent
  point-in-time value map taken under the registry lock.

Histograms use fixed upper-bound buckets; :meth:`Histogram.quantile`
returns the upper bound of the bucket containing the target rank
(``ceil(q * count)``, clamped to at least 1) — exact with respect to the
bucket resolution, pinned by tests.
"""

from __future__ import annotations

import math
import os
import threading

#: Default histogram buckets (seconds): micro-benchmark to multi-minute.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Distinct label combinations a family accepts before folding the rest
#: into one overflow child.
MAX_LABEL_SETS = 64

_enabled = os.environ.get("REPRO_METRICS", "1") != "0"


def set_enabled(on: bool) -> None:
    """Globally enable/disable instrument recording (render still works)."""
    global _enabled
    _enabled = bool(on)


def enabled() -> bool:
    """Whether instruments currently record observations."""
    return _enabled


def _quote_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_quote_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, in-flight counts)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with exact bucket-resolution quantiles.

    ``buckets`` are the finite upper bounds, ascending; an implicit
    ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or bounds[-1] == float("inf"):
            raise ValueError("buckets must be finite, ascending upper bounds")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # [-1] is the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, count in zip(self.buckets + (float("inf"),), counts):
            running += count
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile.

        The target rank is ``ceil(q * count)`` clamped to at least 1;
        with no observations the quantile is 0.0.  Exact with respect to
        the bucket resolution (the true value lies at or below the
        returned bound), pinned by ``tests/test_obs.py``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        cumulative = self.bucket_counts()
        total = cumulative[-1][1]
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        for bound, running in cumulative:
            if running >= rank:
                return bound
        return float("inf")  # unreachable: +Inf bucket holds `total`


class _Family:
    """One named metric family: an unlabeled instrument or a labeled
    map of children, created on first :meth:`labels` use."""

    def __init__(self, name, help_text, kind, labelnames, make):
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._make = make
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}
        self._bare = make() if not self.labelnames else None

    def __getattr__(self, attr):
        # An unlabeled family *is* its single instrument: proxy
        # inc/dec/set/observe/value/... so call sites hold the family
        # directly.  Labeled families must go through labels().
        bare = self.__dict__.get("_bare")
        if bare is None:
            raise AttributeError(
                f"metric {self.__dict__.get('name')} is labeled by "
                f"{self.__dict__.get('labelnames')} — use .labels(...)"
            )
        return getattr(bare, attr)

    def labels(self, **labelvalues):
        """The child instrument for one label combination.

        Unknown/missing label names fail loudly (a wiring bug); label
        *cardinality* overflow does not — past :data:`MAX_LABEL_SETS`
        combinations every new combination shares one overflow child, so
        an unbounded label value (a hostile relation id, say) can never
        blow up memory or crash a hot path.
        """
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_SETS:
                    key = ("__overflow__",) * len(self.labelnames)
                    child = self._children.get(key)
                    if child is None:
                        child = self._children[key] = self._make()
                else:
                    child = self._children[key] = self._make()
            return child

    def _series(self):
        """``(label_pairs, instrument)`` rows, sorted by label values."""
        if self._bare is not None:
            return [((), self._bare)]
        with self._lock:
            items = sorted(self._children.items())
        return [
            (tuple(zip(self.labelnames, key)), child) for key, child in items
        ]


class MetricsRegistry:
    """A process- or instance-scoped collection of metric families."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, name, help_text, kind, labelnames, make) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name} already registered as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            family = _Family(name, help_text, kind, labelnames, make)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labelnames=()) -> _Family:
        return self._register(name, help_text, "counter", labelnames, Counter)

    def gauge(self, name: str, help_text: str, labelnames=()) -> _Family:
        return self._register(name, help_text, "gauge", labelnames, Gauge)

    def histogram(
        self, name: str, help_text: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> _Family:
        return self._register(
            name, help_text, "histogram", labelnames,
            lambda: Histogram(buckets),
        )

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent point-in-time map ``series-name -> value``.

        Histograms contribute ``<name>_count`` and ``<name>_sum``
        entries.  Taken under the registry lock so concurrent
        registrations cannot tear the family list; each instrument's
        value is read under its own lock.
        """
        with self._lock:
            families = list(self._families.values())
        out = {}
        for family in families:
            for labels, inst in family._series():
                suffix = _label_suffix(labels)
                if family.kind == "histogram":
                    out[f"{family.name}_count{suffix}"] = inst.count
                    out[f"{family.name}_sum{suffix}"] = inst.sum
                else:
                    out[f"{family.name}{suffix}"] = inst.value
        return out

    def render(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines = []
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, inst in family._series():
                if family.kind == "histogram":
                    for bound, running in inst.bucket_counts():
                        le = labels + (("le", _format_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket{_label_suffix(le)} {running}"
                        )
                    suffix = _label_suffix(labels)
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(inst.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {inst.count}")
                else:
                    lines.append(
                        f"{family.name}{_label_suffix(labels)} "
                        f"{_format_value(inst.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide registry module-level instrumentation records into.
REGISTRY = MetricsRegistry()

"""Observability layer: metrics registry, Prometheus exporter, traces.

See ARCHITECTURE.md ("Observability layer") for the metric name table
and how the pieces mount on the server/daemon.
"""

from repro.obs.exporter import HealthState, MetricsExporter
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    set_enabled,
)
from repro.obs.trace import JobTrace, Span, trace_phases

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "HealthState",
    "JobTrace",
    "MetricsExporter",
    "MetricsRegistry",
    "Span",
    "enabled",
    "set_enabled",
    "trace_phases",
]

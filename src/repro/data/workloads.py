"""Query workload generators for the evaluation harness.

Section 11.2.1: "For each query, we randomly choose the number of
attributes m that are used for the ranking function ranging from 2 to 8,
and we also vary k between 2 and 20.  The ranking function F that we use
is the sum function."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import SecureRandom
from repro.exceptions import QueryError


@dataclass(frozen=True)
class QuerySpec:
    """One top-k query: which attributes, which k (sum scoring)."""

    attributes: tuple[int, ...]
    k: int

    def __post_init__(self):
        if self.k < 1:
            raise QueryError("k must be >= 1")
        if len(set(self.attributes)) != len(self.attributes):
            raise QueryError("duplicate attributes in query")


def random_queries(
    n_queries: int,
    n_attributes: int,
    m_range: tuple[int, int] = (2, 8),
    k_range: tuple[int, int] = (2, 20),
    seed: int = 0,
) -> list[QuerySpec]:
    """Sample the paper's query workload."""
    if m_range[0] < 1 or m_range[1] > n_attributes:
        raise QueryError("m_range incompatible with the relation width")
    rng = SecureRandom(("workload", seed).__repr__().encode())
    queries = []
    for _ in range(n_queries):
        m = rng.randint(*m_range)
        attrs = list(range(n_attributes))
        rng.shuffle(attrs)
        queries.append(
            QuerySpec(attributes=tuple(sorted(attrs[:m])), k=rng.randint(*k_range))
        )
    return queries

"""Distribution-controlled synthetic relation generators.

NRA's halting depth — and therefore every query-time figure in the paper
— depends on the joint distribution of the attribute columns: correlated
columns let the top-k candidates dominate early (shallow scans), while
anti-correlated columns force deep scans.  These generators expose that
axis explicitly so benchmarks and property tests can cover it.

All values are non-negative integers (the scheme encrypts integer scores;
real-valued attributes are assumed pre-scaled, as in the paper's use of
the UCI datasets).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.crypto.rng import SecureRandom
from repro.exceptions import DataError


@dataclass
class Relation:
    """A plaintext relation: named rows of integer attributes."""

    name: str
    rows: list[list[int]]
    attribute_names: list[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.rows:
            raise DataError("relation is empty")
        width = len(self.rows[0])
        if any(len(r) != width for r in self.rows):
            raise DataError("ragged relation")
        if not self.attribute_names:
            self.attribute_names = [f"a{i}" for i in range(width)]

    @property
    def n_objects(self) -> int:
        return len(self.rows)

    @property
    def n_attributes(self) -> int:
        return len(self.rows[0])


def _gauss_pair(rng: SecureRandom) -> tuple[float, float]:
    """Box–Muller transform on top of the deterministic RNG."""
    u1 = max(rng.randint_below(1 << 53) / (1 << 53), 1e-12)
    u2 = rng.randint_below(1 << 53) / (1 << 53)
    radius = math.sqrt(-2.0 * math.log(u1))
    return radius * math.cos(2 * math.pi * u2), radius * math.sin(2 * math.pi * u2)


def _clamp(value: float, low: int, high: int) -> int:
    return max(low, min(high, int(round(value))))


def gaussian_relation(
    n_objects: int,
    n_attributes: int,
    seed: int = 0,
    mean: float = 500.0,
    std: float = 150.0,
    max_value: int = 1000,
    name: str = "gaussian",
) -> Relation:
    """Independent Gaussian columns (the paper's ``synthetic`` dataset
    "takes values from Gaussian distribution")."""
    rng = SecureRandom(("gauss", seed, n_objects, n_attributes).__repr__().encode())
    rows = []
    for _ in range(n_objects):
        row = []
        while len(row) < n_attributes:
            g1, g2 = _gauss_pair(rng)
            row.append(_clamp(mean + std * g1, 0, max_value))
            if len(row) < n_attributes:
                row.append(_clamp(mean + std * g2, 0, max_value))
        rows.append(row[:n_attributes])
    return Relation(name=name, rows=rows)


def uniform_relation(
    n_objects: int,
    n_attributes: int,
    seed: int = 0,
    max_value: int = 1000,
    name: str = "uniform",
) -> Relation:
    """Independent uniform columns."""
    rng = SecureRandom(("unif", seed, n_objects, n_attributes).__repr__().encode())
    rows = [
        [rng.randint_below(max_value + 1) for _ in range(n_attributes)]
        for _ in range(n_objects)
    ]
    return Relation(name=name, rows=rows)


def correlated_relation(
    n_objects: int,
    n_attributes: int,
    seed: int = 0,
    correlation: float = 0.8,
    max_value: int = 1000,
    name: str = "correlated",
) -> Relation:
    """Columns sharing a latent factor (NRA-friendly: shallow halting)."""
    if not 0.0 <= correlation <= 1.0:
        raise DataError("correlation must be in [0, 1]")
    rng = SecureRandom(("corr", seed, n_objects, n_attributes).__repr__().encode())
    mean, std = max_value / 2, max_value / 6
    rows = []
    for _ in range(n_objects):
        latent, _ = _gauss_pair(rng)
        row = []
        for _ in range(n_attributes):
            noise, _ = _gauss_pair(rng)
            mixed = correlation * latent + math.sqrt(1 - correlation**2) * noise
            row.append(_clamp(mean + std * mixed, 0, max_value))
        rows.append(row)
    return Relation(name=name, rows=rows)


def anticorrelated_relation(
    n_objects: int,
    n_attributes: int,
    seed: int = 0,
    max_value: int = 1000,
    name: str = "anticorrelated",
) -> Relation:
    """Rows with (roughly) constant attribute sums — the NRA-adversarial
    case where no object dominates and scans go deep."""
    rng = SecureRandom(("anti", seed, n_objects, n_attributes).__repr__().encode())
    total = max_value * n_attributes // 2
    rows = []
    for _ in range(n_objects):
        # Random composition of `total` into n_attributes parts.
        cuts = sorted(
            rng.randint_below(total + 1) for _ in range(n_attributes - 1)
        )
        parts = []
        previous = 0
        for cut in cuts:
            parts.append(min(cut - previous, max_value))
            previous = cut
        parts.append(min(total - previous, max_value))
        rows.append(parts)
    return Relation(name=name, rows=rows)

"""Datasets mirroring the paper's evaluation (Section 11).

The paper uses three UCI datasets (``insurance``, ``diabetes``,
``PAMAP``) plus a 1M-row Gaussian ``synthetic`` dataset.  This offline
environment has no network access, so :mod:`repro.data.uci` provides
synthetic stand-ins with the same schema shapes and integer-valued,
realistically-skewed columns, and a ``scale`` knob that shrinks row
counts proportionally (every benchmark prints the scale it ran at).
:mod:`repro.data.synthetic` provides the distribution-controlled
generators (Gaussian, uniform, correlated, anti-correlated) that NRA
behaviour depends on.
"""

from repro.data.synthetic import (
    Relation,
    gaussian_relation,
    uniform_relation,
    correlated_relation,
    anticorrelated_relation,
)
from repro.data.uci import insurance, diabetes, pamap, synthetic_1m, paper_datasets
from repro.data.workloads import QuerySpec, random_queries

__all__ = [
    "Relation",
    "gaussian_relation",
    "uniform_relation",
    "correlated_relation",
    "anticorrelated_relation",
    "insurance",
    "diabetes",
    "pamap",
    "synthetic_1m",
    "paper_datasets",
    "QuerySpec",
    "random_queries",
]

"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on three UCI Machine Learning Repository datasets plus
one synthetic dataset (Section 11):

===========  ========  ===========  =========================================
dataset      objects   attributes   character
===========  ========  ===========  =========================================
insurance      5 822       13       customer/product counts, small skewed ints
diabetes     101 767       10       hospital visit counts, heavy-tailed
PAMAP        376 416       15       physical-activity sensor readings
synthetic  1 000 000       10       Gaussian
===========  ========  ===========  =========================================

This environment has no network access, so each loader generates a
synthetic relation with the *same schema shape* and a plausible value
distribution (substitution documented in DESIGN.md: NRA behaviour depends
on score distributions and duplicate structure, which the generators
control; absolute row counts are scaled by ``scale`` and every benchmark
prints the scale it ran at).
"""

from __future__ import annotations

from repro.crypto.rng import SecureRandom
from repro.data.synthetic import (
    Relation,
    correlated_relation,
    gaussian_relation,
    uniform_relation,
)
from repro.exceptions import DataError

#: Paper row counts, used to derive scaled sizes.
PAPER_SIZES = {
    "insurance": (5822, 13),
    "diabetes": (101767, 10),
    "PAMAP": (376416, 15),
    "synthetic": (1_000_000, 10),
}


def _scaled(n: int, scale: float) -> int:
    if not 0 < scale <= 1:
        raise DataError("scale must be in (0, 1]")
    return max(8, int(round(n * scale)))


def insurance(scale: float = 1.0, seed: int = 1) -> Relation:
    """The CoIL/insurance benchmark stand-in: small skewed integers with
    many duplicates (categorical-count columns)."""
    n, m = PAPER_SIZES["insurance"]
    n = _scaled(n, scale)
    rng = SecureRandom(("insurance", seed).__repr__().encode())
    rows = []
    for _ in range(n):
        row = []
        for a in range(m):
            # Zipf-ish counts in [0, 9] with attribute-dependent skew.
            r = rng.randint_below(1 << 20) / (1 << 20)
            value = int(10 * (r ** (1.5 + 0.1 * a)))
            row.append(min(value, 9))
        rows.append(row)
    return Relation(name="insurance", rows=rows)


def diabetes(scale: float = 1.0, seed: int = 2) -> Relation:
    """Hospital readmission stand-in: heavy-tailed visit/medication
    counts — a mix of near-constant and widely-spread columns."""
    n, m = PAPER_SIZES["diabetes"]
    n = _scaled(n, scale)
    rng = SecureRandom(("diabetes", seed).__repr__().encode())
    rows = []
    for _ in range(n):
        row = []
        for a in range(m):
            r = rng.randint_below(1 << 20) / (1 << 20)
            if a % 3 == 0:
                value = int(120 * r * r)          # lab procedures etc.
            elif a % 3 == 1:
                value = int(25 * r ** 3)          # medication counts
            else:
                value = int(10 * r)               # visit counts
            row.append(value)
        rows.append(row)
    return Relation(name="diabetes", rows=rows)


def pamap(scale: float = 1.0, seed: int = 3) -> Relation:
    """Physical-activity-monitoring stand-in: correlated sensor channels
    (heart rate / accelerometers move together within an activity)."""
    n, m = PAPER_SIZES["PAMAP"]
    n = _scaled(n, scale)
    base = correlated_relation(
        n, m, seed=seed, correlation=0.7, max_value=500, name="PAMAP"
    )
    return base


def synthetic_1m(scale: float = 1.0, seed: int = 4) -> Relation:
    """The paper's 1M-row Gaussian synthetic dataset."""
    n, m = PAPER_SIZES["synthetic"]
    n = _scaled(n, scale)
    return gaussian_relation(n, m, seed=seed, name="synthetic")


def paper_datasets(scale: float, seed: int = 0) -> list[Relation]:
    """All four evaluation datasets at a common scale (bench helper)."""
    return [
        insurance(scale, seed + 1),
        diabetes(scale, seed + 2),
        pamap(scale, seed + 3),
        synthetic_1m(scale, seed + 4),
    ]

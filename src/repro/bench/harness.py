"""Shared benchmark machinery.

Benchmarks run at laptop scale (see DESIGN.md): pure-Python big-int
crypto over scaled-down datasets.  Absolute times are therefore not
comparable to the paper's C++/24-core numbers, but every *series shape* —
who wins, how costs scale with ``k``, ``m``, ``p``, ``n`` — is, and that
is what ``EXPERIMENTS.md`` records.  Every report prints the dataset
scale used so the substitution stays visible.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.data.synthetic import Relation
from repro.net.channel import LinkModel

#: Where bench modules append their measured series.
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass
class QueryMetrics:
    """Everything a query run yields for the figures."""

    dataset: str
    variant: str
    m: int
    k: int
    time_per_depth: float
    halting_depth: int
    total_seconds: float
    bytes_total: int
    bytes_per_depth: float
    rounds: int
    latency_modeled: float

    def row(self) -> list:
        return [
            self.dataset,
            self.variant,
            self.m,
            self.k,
            f"{self.time_per_depth * 1000:.1f}",
            self.halting_depth,
            f"{self.bytes_per_depth / 1000:.1f}",
            f"{self.bytes_total / 1_000_000:.3f}",
            f"{self.latency_modeled:.3f}",
        ]

    HEADER = [
        "dataset",
        "variant",
        "m",
        "k",
        "ms/depth",
        "depth",
        "KB/depth",
        "MB total",
        "latency(s)@50Mbps",
    ]


class BenchContext:
    """Caches schemes and encrypted relations across benchmark cases.

    Encrypting a relation dominates setup time, so each (params, dataset)
    pair is encrypted once per session.
    """

    def __init__(self, params: SystemParams | None = None, seed: int = 2024):
        self.params = params or SystemParams.tiny()
        self.seed = seed
        self._schemes: dict[str, SecTopK] = {}
        self._relations: dict[str, object] = {}

    def scheme_for(self, relation: Relation) -> SecTopK:
        if relation.name not in self._schemes:
            self._schemes[relation.name] = SecTopK(self.params, seed=self.seed)
        return self._schemes[relation.name]

    def encrypted(self, relation: Relation):
        if relation.name not in self._relations:
            scheme = self.scheme_for(relation)
            self._relations[relation.name] = scheme.encrypt(relation.rows)
        return self._relations[relation.name]


def measure_query(
    bench_ctx: BenchContext,
    relation: Relation,
    attributes: list[int],
    k: int,
    config: QueryConfig,
    variant_label: str | None = None,
) -> QueryMetrics:
    """Run one secure query and collect the figure metrics."""
    scheme = bench_ctx.scheme_for(relation)
    encrypted = bench_ctx.encrypted(relation)
    token = scheme.token(attributes, k)
    started = time.perf_counter()
    result = scheme.query(encrypted, token, config)
    elapsed = time.perf_counter() - started
    depths = max(result.halting_depth, 1)
    stats = result.channel_stats
    return QueryMetrics(
        dataset=relation.name,
        variant=variant_label or config.variant,
        m=len(attributes),
        k=k,
        time_per_depth=elapsed / depths,
        halting_depth=result.halting_depth,
        total_seconds=elapsed,
        bytes_total=stats.total_bytes,
        bytes_per_depth=stats.total_bytes / depths,
        rounds=stats.rounds,
        latency_modeled=LinkModel(bandwidth_mbps=50).latency_seconds(stats),
    )


def oracle_halting_depth(relation: Relation, attributes: list[int], k: int) -> int:
    """True NRA halting depth for a query (plaintext, cheap).

    The eager engine halts at exactly this depth when uncapped, so
    benches that cap the scan use it to extrapolate full-query totals.
    """
    from repro.nra import SortedLists, nra_topk

    return nra_topk(
        SortedLists(relation.rows, attributes), k, halting="paper"
    ).halting_depth


@dataclass
class SeriesReport:
    """A paper-style series: header + rows, printed and persisted."""

    title: str
    header: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, row: list) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [
            max(len(str(self.header[i])), *(len(str(r[i])) for r in self.rows))
            if self.rows
            else len(str(self.header[i]))
            for i in range(len(self.header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.header, widths)))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def emit(self, filename: str) -> str:
        """Print the series and append it to ``benchmarks/results/``."""
        text = self.render()
        print("\n" + text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / filename
        with open(path, "a") as handle:
            handle.write(text + "\n\n")
        return text

"""Experiment harness regenerating the paper's tables and figures.

:mod:`repro.bench.harness` provides the shared machinery — cached
scheme/relation construction, single-query measurement, and paper-style
series printers — and :mod:`repro.bench.experiments` defines one runner
per table/figure.  The pytest-benchmark modules under ``benchmarks/``
are thin wrappers around these runners; each also appends its series to
``benchmarks/results/`` so ``EXPERIMENTS.md`` can quote measured rows.
"""

from repro.bench.harness import (
    BenchContext,
    QueryMetrics,
    SeriesReport,
    measure_query,
)

__all__ = ["BenchContext", "QueryMetrics", "SeriesReport", "measure_query"]

"""Plaintext Bloom filter and the EHL false-positive analysis of Section 5.

The EHL construction "is indeed a probabilistically encrypted Bloom filter
except that we use one list for each object and encrypt each bit in the
list".  This module provides the plaintext combinatorial object so that

* the encrypted structure can delegate its hashing logic here, and
* the false-positive-rate formulas of Section 5 can be property-tested
  against simulation.
"""

from __future__ import annotations

import math

from repro.crypto.prf import Prf, encode_object_id


class BloomFilter:
    """A fixed-size Bloom filter keyed by a family of PRFs.

    Unlike a classic Bloom filter that accumulates many elements, the EHL
    usage pattern inserts a *single* object per filter and compares filters
    for equality; :meth:`positions` exposes the hashed index set that the
    encrypted structure encrypts bit-by-bit.
    """

    def __init__(self, size: int, prfs: list[Prf]):
        if size < 1:
            raise ValueError("Bloom filter size must be positive")
        if not prfs:
            raise ValueError("at least one PRF is required")
        self.size = size
        self.prfs = prfs
        self.bits = [0] * size

    def positions(self, item) -> list[int]:
        """The (possibly colliding) hash positions of ``item``."""
        message = encode_object_id(item)
        return [prf.to_bit_position(message, self.size) for prf in self.prfs]

    def add(self, item) -> None:
        """Insert ``item``."""
        for pos in self.positions(item):
            self.bits[pos] = 1

    def __contains__(self, item) -> bool:
        return all(self.bits[pos] for pos in self.positions(item))

    def bit_vector(self, item) -> list[int]:
        """The length-``size`` 0/1 vector for a single item (EHL layout)."""
        vector = [0] * self.size
        for pos in self.positions(item):
            vector[pos] = 1
        return vector


def optimal_hash_count(size: int, n_items: int) -> int:
    """The FPR-minimizing number of hash functions ``s = (H/n) ln 2``.

    Section 5: "we can choose the number of hash functions HMAC s to be
    (H/n) ln 2 to minimize the false positive rate".
    """
    if size < 1 or n_items < 1:
        raise ValueError("size and n_items must be positive")
    return max(1, round(size / n_items * math.log(2)))


def bloom_false_positive_rate(size: int, n_hashes: int, n_items: int) -> float:
    """Classic Bloom FPR ``(1 - e^{-s*n/H})^s`` (Section 5)."""
    return (1.0 - math.exp(-n_hashes * n_items / size)) ** n_hashes


def ehl_plus_false_positive_bound(modulus: int, n_hashes: int, n_items: int) -> float:
    """EHL+ union-bound FPR ``n^2 / N^s`` (Section 5).

    Two distinct objects collide only if all ``s`` HMAC values agree mod
    ``N``; the union bound over all pairs gives ``C(n,2)/N^s <= n^2/N^s``.
    """
    log_bound = 2 * math.log(max(n_items, 1)) - n_hashes * math.log(modulus)
    # Guard against underflow: anything below e^-700 is effectively zero.
    return math.exp(log_bound) if log_bound > -700 else 0.0

"""Encrypted data structures: Bloom filters, EHL and EHL+ (Section 5).

* :mod:`repro.structures.bloom` — the plaintext Bloom filter that is the
  combinatorial core of EHL, plus the false-positive-rate analysis of
  Section 5.
* :mod:`repro.structures.ehl` — the bit-list Encrypted Hash List.
* :mod:`repro.structures.ehl_plus` — the compact EHL+ variant hashing into
  ``Z_N``.
* :mod:`repro.structures.items` — the encrypted item containers
  ``E(I) = ⟨EHL(o), Enc(x)⟩`` and ``(EHL(o), Enc(W), Enc(B))`` that the
  sorted lists and the candidate list ``T`` are made of.
"""

from repro.structures.bloom import BloomFilter, bloom_false_positive_rate, optimal_hash_count
from repro.structures.ehl import Ehl, EhlFactory
from repro.structures.ehl_plus import EhlPlus, EhlPlusFactory
from repro.structures.items import EncryptedItem, ScoredItem

__all__ = [
    "BloomFilter",
    "bloom_false_positive_rate",
    "optimal_hash_count",
    "Ehl",
    "EhlFactory",
    "EhlPlus",
    "EhlPlusFactory",
    "EncryptedItem",
    "ScoredItem",
]

"""The space- and computation-efficient EHL+ of Section 5.

Instead of encrypting ``H`` bits, EHL+ hashes the object into the *large*
group ``Z_N`` ``s`` times and encrypts only those ``s`` hash values::

    EHL+(o)[i] = Enc( HMAC(k_i, o) mod N ),   1 <= i <= s

The equality operator ``⊖`` homomorphically subtracts the hash values
component-wise with fresh random scalars, so its cost drops from ``O(H)``
to ``O(s)`` while the false-positive rate falls to the negligible
``n^2 / N^s`` (union bound; Section 5).

EHL+ additionally supports the block-wise blinding ``⊙`` of the notation
paragraph in Section 5 (``c ← Enc(x) ⊙ EHL(y)``), which ``SecDedup`` uses
to blind object identities with random vectors ``α ∈ Z_N^s``.
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.crypto.prf import Prf, derive_keys, encode_object_id
from repro.crypto.rng import SecureRandom
from repro.exceptions import KeyMismatchError


class EhlPlus:
    """An EHL+ structure: ``s`` Paillier encryptions of ``Z_N`` hashes."""

    __slots__ = ("cells",)

    def __init__(self, cells: list[Ciphertext]):
        if not cells:
            raise ValueError("EHL+ must have at least one cell")
        self.cells = cells

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def public_key(self) -> PaillierPublicKey:
        return self.cells[0].public_key

    def minus(self, other: "EhlPlus", rng: SecureRandom) -> Ciphertext:
        """The randomized equality operator ``self ⊖ other`` (Section 5)."""
        if len(other) != len(self):
            raise KeyMismatchError("EHL+ arity mismatch")
        pk = self.public_key
        acc = pk.encrypt(0, rng)
        n = pk.n
        for mine, theirs in zip(self.cells, other.cells):
            r = rng.rand_nonzero(n)
            acc = acc + (mine - theirs) * r
        return acc

    def blind_add(self, alphas: list[int]) -> "EhlPlus":
        """The block-wise operation ``⊙``: add ``α_i`` to each component.

        ``SecDedup``/``Rand`` (Algorithm 8) blind the object identity by
        homomorphically adding a random vector; :meth:`blind_add` with the
        negated vector removes the blind again.
        """
        if len(alphas) != len(self.cells):
            raise KeyMismatchError("blinding vector arity mismatch")
        return EhlPlus([cell + a for cell, a in zip(self.cells, alphas)])

    def rerandomized(self, rng: SecureRandom) -> "EhlPlus":
        """A fresh-looking EHL+ encrypting the same hash vector."""
        pk = self.public_key
        return EhlPlus([pk.rerandomize(cell, rng) for cell in self.cells])

    def serialized_size(self) -> int:
        """Byte size on the wire (``s`` ciphertexts)."""
        return sum(cell.serialized_size() for cell in self.cells)


class EhlPlusFactory:
    """Builds :class:`EhlPlus` structures under a fixed key set.

    ``n_hashes`` is the paper's ``s`` (their experiments use ``s = 5``;
    ``s = 4`` or ``5`` already gives negligible FPR for millions of
    records when ``N`` is 256 bits).
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        master_key: bytes,
        n_hashes: int = 5,
        rng: SecureRandom | None = None,
    ):
        if n_hashes < 1:
            raise ValueError("need at least one hash function")
        self.public_key = public_key
        self.n_hashes = n_hashes
        self.prfs: list[Prf] = derive_keys(master_key, n_hashes, label="ehl+")
        self.rng = rng or SecureRandom()

    def hash_vector(self, object_id) -> list[int]:
        """The plaintext hash vector ``(HMAC(k_i, o) mod N)_i``."""
        message = encode_object_id(object_id)
        n = self.public_key.n
        return [prf.to_range(message, n) for prf in self.prfs]

    def encode(self, object_id) -> EhlPlus:
        """Return ``EHL+(o)``."""
        return EhlPlus(
            [self.public_key.encrypt(h, self.rng) for h in self.hash_vector(object_id)]
        )

    def encode_random(self, rng: SecureRandom | None = None) -> EhlPlus:
        """An EHL+ of a freshly random (non-existent) object.

        ``SecDedup`` replaces duplicated objects with random identities;
        sampling the hash vector uniformly from ``Z_N^s`` is statistically
        identical to hashing a random unused id.
        """
        rng = rng or self.rng
        n = self.public_key.n
        return EhlPlus(
            [self.public_key.encrypt(rng.randint_below(n), rng) for _ in range(self.n_hashes)]
        )

    def structure_bytes(self) -> int:
        """Size of one EHL+ in bytes (for the Fig. 7/8 size series)."""
        return self.n_hashes * self.public_key.ciphertext_bytes

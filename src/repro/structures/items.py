"""Encrypted item containers used by the sorted lists and candidate list.

* :class:`EncryptedItem` — ``E(I) = ⟨EHL(o), Enc(x)⟩``: one entry of an
  encrypted sorted list (Section 6).
* :class:`ScoredItem` — ``E(I) = (EHL(o), Enc(W), Enc(B))``: a candidate
  carried in the list ``T`` during query processing with its encrypted
  worst and best scores (Section 8.1).

``ScoredItem`` optionally carries the per-list encrypted state
(accumulated per-list score and encrypted seen-indicator) that the
``eager`` best-refresh mode maintains; the paper-literal mode ignores
those fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import backend
from repro.crypto.damgard_jurik import LayeredCiphertext
from repro.crypto.paillier import Ciphertext


@dataclass
class EncryptedItem:
    """One encrypted sorted-list entry ``⟨EHL(o), Enc(x)⟩``.

    ``ehl`` is an :class:`~repro.structures.ehl.Ehl` or
    :class:`~repro.structures.ehl_plus.EhlPlus`; the protocols only use the
    shared ``minus`` interface.
    """

    ehl: object
    score: Ciphertext
    record: Ciphertext | None = None
    """Optional ``Enc(object_id)`` rider so the client can decrypt the
    winners; travels blinded through every protocol like the scores do."""

    def serialized_size(self) -> int:
        """Byte size on the wire."""
        size = self.ehl.serialized_size() + self.score.serialized_size()
        if self.record is not None:
            size += self.record.serialized_size()
        return size


def weight_entries(entries: list["EncryptedItem"], weight: int) -> list["EncryptedItem"]:
    """Apply a query weight to a sorted list's entries.

    The single home of the weighting construction: the unsharded query
    path and the shard workers both call it, and the sharded-vs-unsharded
    bit-parity invariant depends on the two producing identical
    ciphertexts (scalar multiplication is deterministic, and ``weight ==
    1`` keeps the original objects on both paths).
    """
    if weight == 1 or not entries:
        return entries
    # One backend.powmod_vec call for the whole list instead of a
    # Ciphertext.__mul__ per entry: same exponent reduction as __mul__
    # (``weight % n``), so the ciphertexts stay bit-identical, but an
    # accelerated backend converts the shared exponent/modulus once —
    # and the gmp-kernel backend releases the GIL across the whole list,
    # which is what lets concurrent shard workers overlap here.
    pk = entries[0].score.public_key
    powers = backend.powmod_vec(
        [e.score.value for e in entries], weight % pk.n, pk.n_squared
    )
    return [
        EncryptedItem(ehl=e.ehl, score=Ciphertext(value, pk), record=e.record)
        for e, value in zip(entries, powers)
    ]


@dataclass
class JoinedTuple:
    """One combined join tuple ``E(o) = (Enc(s), [Enc(x_1) ... Enc(x_m)])``.

    Produced by ``SecJoin`` and filtered by ``SecFilter``; lives here (and
    not in the protocol modules) because it is a pure data container that
    also crosses the inter-cloud wire.
    """

    score: Ciphertext
    attributes: list[Ciphertext]

    def serialized_size(self) -> int:
        """Byte size on the wire."""
        return self.score.serialized_size() + sum(
            a.serialized_size() for a in self.attributes
        )


class ListPrefix:
    """A zero-copy view of the first ``length`` entries of a sorted list.

    ``SecBest`` consumes one prefix per other query list per depth; slicing
    ``lists[j][: depth + 1]`` for every item at every depth costs
    ``O(n·m²)`` list copying over a scan.  This view supports exactly the
    operations the protocol needs — ``len``, indexing (including negative
    indices for the bottom item) and iteration — without copying.
    """

    __slots__ = ("_items", "_length")

    def __init__(self, items: list, length: int):
        if not 0 <= length <= len(items):
            raise ValueError("prefix length out of range")
        self._items = items
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int):
        if not isinstance(index, int):
            raise TypeError("ListPrefix supports integer indices only")
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError("prefix index out of range")
        return self._items[index]

    def __iter__(self):
        for i in range(self._length):
            yield self._items[i]


@dataclass
class ScoredItem:
    """A top-k candidate with encrypted worst/best scores.

    Attributes
    ----------
    ehl:
        Encrypted hash list of the object id.
    worst:
        ``Enc(W)`` — encrypted lower bound of the aggregate score.
    best:
        ``Enc(B)`` — encrypted upper bound of the aggregate score.
    list_scores:
        Eager mode only: per-query-list accumulated encrypted score
        (``Enc(0)`` until the object is seen in that list).
    seen_bits:
        Eager mode only: per-query-list layered encryption ``E2(seen_j)``
        of whether the object has been seen in list ``j`` yet.
    uid:
        An S1-local handle for bookkeeping.  Carries no information about
        the object (S1 assigns it sequentially), so it is not leakage.
    """

    ehl: object
    worst: Ciphertext
    best: Ciphertext
    list_scores: list[Ciphertext] | None = None
    seen_bits: list[LayeredCiphertext] | None = None
    record: Ciphertext | None = None
    uid: int = -1

    def serialized_size(self) -> int:
        """Byte size on the wire (EHL + the two score ciphertexts)."""
        size = (
            self.ehl.serialized_size()
            + self.worst.serialized_size()
            + self.best.serialized_size()
        )
        if self.list_scores is not None:
            size += sum(c.serialized_size() for c in self.list_scores)
        if self.seen_bits is not None:
            size += sum(c.serialized_size() for c in self.seen_bits)
        if self.record is not None:
            size += self.record.serialized_size()
        return size

    def clone_shallow(self) -> "ScoredItem":
        """A copy sharing the (immutable) ciphertext objects."""
        return ScoredItem(
            ehl=self.ehl,
            worst=self.worst,
            best=self.best,
            list_scores=list(self.list_scores) if self.list_scores is not None else None,
            seen_bits=list(self.seen_bits) if self.seen_bits is not None else None,
            record=self.record,
            uid=self.uid,
        )

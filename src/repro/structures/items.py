"""Encrypted item containers used by the sorted lists and candidate list.

* :class:`EncryptedItem` — ``E(I) = ⟨EHL(o), Enc(x)⟩``: one entry of an
  encrypted sorted list (Section 6).
* :class:`ScoredItem` — ``E(I) = (EHL(o), Enc(W), Enc(B))``: a candidate
  carried in the list ``T`` during query processing with its encrypted
  worst and best scores (Section 8.1).

``ScoredItem`` optionally carries the per-list encrypted state
(accumulated per-list score and encrypted seen-indicator) that the
``eager`` best-refresh mode maintains; the paper-literal mode ignores
those fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.damgard_jurik import LayeredCiphertext
from repro.crypto.paillier import Ciphertext


@dataclass
class EncryptedItem:
    """One encrypted sorted-list entry ``⟨EHL(o), Enc(x)⟩``.

    ``ehl`` is an :class:`~repro.structures.ehl.Ehl` or
    :class:`~repro.structures.ehl_plus.EhlPlus`; the protocols only use the
    shared ``minus`` interface.
    """

    ehl: object
    score: Ciphertext
    record: Ciphertext | None = None
    """Optional ``Enc(object_id)`` rider so the client can decrypt the
    winners; travels blinded through every protocol like the scores do."""

    def serialized_size(self) -> int:
        """Byte size on the wire."""
        size = self.ehl.serialized_size() + self.score.serialized_size()
        if self.record is not None:
            size += self.record.serialized_size()
        return size


@dataclass
class ScoredItem:
    """A top-k candidate with encrypted worst/best scores.

    Attributes
    ----------
    ehl:
        Encrypted hash list of the object id.
    worst:
        ``Enc(W)`` — encrypted lower bound of the aggregate score.
    best:
        ``Enc(B)`` — encrypted upper bound of the aggregate score.
    list_scores:
        Eager mode only: per-query-list accumulated encrypted score
        (``Enc(0)`` until the object is seen in that list).
    seen_bits:
        Eager mode only: per-query-list layered encryption ``E2(seen_j)``
        of whether the object has been seen in list ``j`` yet.
    uid:
        An S1-local handle for bookkeeping.  Carries no information about
        the object (S1 assigns it sequentially), so it is not leakage.
    """

    ehl: object
    worst: Ciphertext
    best: Ciphertext
    list_scores: list[Ciphertext] | None = None
    seen_bits: list[LayeredCiphertext] | None = None
    record: Ciphertext | None = None
    uid: int = -1

    def serialized_size(self) -> int:
        """Byte size on the wire (EHL + the two score ciphertexts)."""
        size = (
            self.ehl.serialized_size()
            + self.worst.serialized_size()
            + self.best.serialized_size()
        )
        if self.list_scores is not None:
            size += sum(c.serialized_size() for c in self.list_scores)
        if self.seen_bits is not None:
            size += sum(c.serialized_size() for c in self.seen_bits)
        if self.record is not None:
            size += self.record.serialized_size()
        return size

    def clone_shallow(self) -> "ScoredItem":
        """A copy sharing the (immutable) ciphertext objects."""
        return ScoredItem(
            ehl=self.ehl,
            worst=self.worst,
            best=self.best,
            list_scores=list(self.list_scores) if self.list_scores is not None else None,
            seen_bits=list(self.seen_bits) if self.seen_bits is not None else None,
            record=self.record,
            uid=self.uid,
        )

"""The Encrypted Hash List (EHL) of Section 5.

To encode an object ``o``:

1. hash ``o`` with ``s`` keyed PRFs into a length-``H`` bit list
   (a single-object Bloom filter), and
2. encrypt every bit with Paillier.

Two EHLs support the randomized homomorphic equality operator

.. math::

   EHL(x) \\ominus EHL(y) \\;=\\; \\prod_{i=0}^{H-1}
       \\bigl(EHL(x)[i] \\cdot EHL(y)[i]^{-1}\\bigr)^{r_i}

which encrypts ``0`` iff the two bit lists agree (Lemma 5.2) and a value
statistically close to uniform in ``Z_N`` otherwise.  A false ``Enc(0)``
occurs only when two distinct objects hash to the identical position set —
the Bloom-filter false-positive event analysed in
:mod:`repro.structures.bloom`.

The compact variant EHL+ lives in :mod:`repro.structures.ehl_plus`; both
expose the same ``minus`` interface so the protocols are agnostic to which
one the database was encrypted with.
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.crypto.prf import Prf, derive_keys
from repro.crypto.rng import SecureRandom
from repro.exceptions import KeyMismatchError
from repro.structures.bloom import BloomFilter


class Ehl:
    """An encrypted hash list: ``H`` Paillier-encrypted bits."""

    __slots__ = ("cells",)

    def __init__(self, cells: list[Ciphertext]):
        if not cells:
            raise ValueError("EHL must have at least one cell")
        self.cells = cells

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def public_key(self) -> PaillierPublicKey:
        return self.cells[0].public_key

    def minus(self, other: "Ehl", rng: SecureRandom) -> Ciphertext:
        """The randomized equality operator ``self ⊖ other``.

        Returns ``Enc(Σ r_i (x_i − y_i))`` — an encryption of ``0`` iff
        the underlying bit lists are identical, otherwise of a value
        uniform in ``Z_N`` with overwhelming probability.
        """
        if len(other) != len(self):
            raise KeyMismatchError("EHL length mismatch")
        pk = self.public_key
        acc = pk.encrypt(0, rng)
        n = pk.n
        for mine, theirs in zip(self.cells, other.cells):
            r = rng.rand_nonzero(n)
            acc = acc + (mine - theirs) * r
        return acc

    def serialized_size(self) -> int:
        """Byte size on the wire (all ``H`` ciphertexts)."""
        return sum(cell.serialized_size() for cell in self.cells)

    def rerandomized(self, rng: SecureRandom) -> "Ehl":
        """A fresh-looking EHL encrypting the same bit list."""
        pk = self.public_key
        return Ehl([pk.rerandomize(cell, rng) for cell in self.cells])


class EhlFactory:
    """Builds :class:`Ehl` structures for objects under a fixed key set.

    Parameters mirror Section 5: ``table_size`` is ``H`` and ``n_hashes``
    is ``s``.  The factory owns the PRF keys (derived from ``master_key``)
    and the Paillier public key; it is held by the data owner during
    ``Enc`` and by nobody afterwards.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        master_key: bytes,
        table_size: int = 23,
        n_hashes: int = 5,
        rng: SecureRandom | None = None,
    ):
        if n_hashes > table_size:
            raise ValueError("more hash functions than table cells")
        self.public_key = public_key
        self.table_size = table_size
        self.n_hashes = n_hashes
        self.prfs: list[Prf] = derive_keys(master_key, n_hashes, label="ehl")
        self._bloom = BloomFilter(table_size, self.prfs)
        self.rng = rng or SecureRandom()

    def encode(self, object_id) -> Ehl:
        """Return ``EHL(o)`` for the given object identifier."""
        bits = self._bloom.bit_vector(object_id)
        return Ehl([self.public_key.encrypt(b, self.rng) for b in bits])

    def positions(self, object_id) -> list[int]:
        """The plaintext hash positions (exposed for tests/analysis only)."""
        return self._bloom.positions(object_id)

    def structure_bytes(self) -> int:
        """Size of one EHL in bytes (for the Fig. 7/8 size series)."""
        return self.table_size * self.public_key.ciphertext_bytes


def ehl_equal_plain(factory: EhlFactory, x, y) -> bool:
    """Plaintext oracle for whether ``⊖`` would report equality.

    Used by tests to distinguish genuine matches from Bloom false
    positives.
    """
    return factory.positions(x) == factory.positions(y) and set(
        factory.positions(x)
    ) == set(factory.positions(y))

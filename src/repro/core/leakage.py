"""Declared leakage profiles and the audit used by the security tests.

Section 9 defines CQA security relative to explicit leakage functions:

* ``L_Setup = (|R|, M)`` — relation size and attribute count;
* ``L1_Query = (QP, D_q)`` — S1 learns the query pattern (whether a query
  repeats) and the halting depth;
* ``L2_Query = {EP_d}`` — S2 learns, per depth, the equality pattern of a
  *randomly permuted* batch of items.

The optimized variants add (Section 10):

* ``UP_d`` — the number of distinct objects in a deduplicated batch
  (``SecDupElim``; learned by both servers);
* group-membership ranks in ``SecUpdate``'s trailing dedup (same
  granularity as ``EP_d``).

Our fast building-block constructions add (DESIGN.md substitutions):

* blinded-comparison sign bits (uniform coins) and blinded magnitudes;
* affinely-scaled sort-key values of permuted lists.

:func:`audit` classifies every event a run recorded against this
whitelist; anything unclassified fails the security tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.protocols.base import LeakageLog

#: Every observation kind any protocol may legitimately record, mapped to
#: the leakage-profile component that licenses it.
ALLOWED_KINDS: dict[str, str] = {
    "eq_bits": "L2: equality pattern EP_d (permuted)",
    "recover_batch": "blinded batch size only",
    "cmp_sign": "blinded comparison sign (uniform coin)",
    "masked_bit": "coin-masked protocol output bit",
    "dgk_blinded": "statistically blinded value",
    "dgk_any_zero": "coin-masked DGK intermediate bit",
    "dedup_matrix": "L2: equality pattern EP_d (permuted)",
    "dedup_groups": "L2: duplicate-group sizes (EP_d granularity)",
    "unique_count": "UP_d: uniqueness pattern (optimized variants)",
    "sort_key_blinded": "affinely-scaled sort key of a permuted list",
    "sort_size": "batch size only",
    "gate_key_blinded": "affinely-scaled gate pair (network sort)",
    "gate_bit": "coin-randomized gate order bit (network sort)",
    "filter_flag": "join-match count (SecFilter; Section 12 leakage)",
    "query_pattern": "L1: query pattern QP",
    "halting_depth": "L1: halting depth D_q",
}


@dataclass
class LeakageReport:
    """Summary of a run's observations."""

    counts: dict[str, int] = field(default_factory=dict)
    unclassified: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether every observation is covered by the declared profile."""
        return not self.unclassified


def audit(log: LeakageLog) -> LeakageReport:
    """Classify every recorded observation against the declared profile."""
    report = LeakageReport()
    for event in log.events:
        if event.kind in ALLOWED_KINDS:
            report.counts[event.kind] = report.counts.get(event.kind, 0) + 1
        else:
            report.unclassified.append(f"{event.observer}:{event.protocol}:{event.kind}")
    return report


def equality_pattern_matrices(log: LeakageLog) -> list[list[int]]:
    """Extract the per-batch equality bit vectors S2 observed (``EP_d``)."""
    return [list(e.payload) for e in log.by_kind("eq_bits")]

"""The ``SecTopK = (Enc, Token, SecQuery)`` scheme (Sections 4–10).

* :mod:`repro.core.params`   — system-wide cryptographic parameters.
* :mod:`repro.core.scheme`   — the data-owner/client API: ``encrypt``
  (Algorithm 2), ``token`` (Section 7), ``query`` (Algorithm 3) and
  ``reveal``.
* :mod:`repro.core.relation` — the encrypted relation ``ER``.
* :mod:`repro.core.engine`   — S1's oblivious NRA engine with the three
  query variants Qry_F / Qry_E / Qry_Ba and the eager/literal best-score
  modes (DESIGN.md §3).
* :mod:`repro.core.leakage`  — declared leakage profiles and the audit
  used by the security tests.
* :mod:`repro.core.results`  — query results and statistics.
"""

from repro.core.params import SystemParams
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.core.token import Token

__all__ = ["SystemParams", "SecTopK", "Token", "QueryConfig", "QueryResult"]

"""Query tokens (Section 7).

``Token(K, q)`` is deliberately lightweight: the client holding the PRP
key ``K`` maps each queried attribute index ``i`` to the permuted list
name ``P_K(i)`` and sends ``{P_K(i)}``, the weights (if not binary) and
``k``.  The token reveals to S1 only *which permuted lists* to scan — the
query pattern ``QP`` leakage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.exceptions import QueryError


@dataclass(frozen=True)
class Token:
    """A top-k query token.

    ``permuted_lists[i]`` is ``P_K(attribute_i)``; the ordering pairs with
    ``weights``.
    """

    permuted_lists: tuple[int, ...]
    k: int
    weights: tuple[int, ...] = field(default=())

    def __post_init__(self):
        if self.k < 1:
            raise QueryError("k must be >= 1")
        if len(set(self.permuted_lists)) != len(self.permuted_lists):
            raise QueryError("duplicate attribute in token")
        if not self.permuted_lists:
            raise QueryError("token selects no attributes")
        if self.weights and len(self.weights) != len(self.permuted_lists):
            raise QueryError("weights/attributes length mismatch")
        if any(w < 0 for w in self.weights):
            raise QueryError("weights must be non-negative")

    @property
    def m(self) -> int:
        """Number of scoring attributes ``m``."""
        return len(self.permuted_lists)

    def effective_weights(self) -> tuple[int, ...]:
        """Weights with the binary default filled in."""
        return self.weights if self.weights else (1,) * self.m

    def fingerprint(self) -> str:
        """Deterministic digest used for the query-pattern leakage ``QP``.

        Two identical queries produce identical tokens, which is exactly
        what S1 can observe (Section 9's ``QP`` leakage function).
        """
        material = repr((self.permuted_lists, self.k, self.weights)).encode()
        return hashlib.sha256(material).hexdigest()[:16]

    def scan_fingerprint(self) -> str:
        """Digest of the token *without* ``k`` — the scan identity.

        Two tokens over the same permuted lists and weights scan the
        same sorted lists in the same order regardless of ``k``; the
        result cache indexes by this digest so a ``k' < k`` repeat can
        be served as a prefix slice of the cached ``k`` result.  Derived
        from the same observables as :meth:`fingerprint`, so it
        introduces no leakage beyond the declared query pattern.
        """
        material = repr((self.permuted_lists, self.weights)).encode()
        return hashlib.sha256(material).hexdigest()[:16]

"""Query configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.net.channel import ChannelStats
from repro.structures.items import ScoredItem


@dataclass(frozen=True)
class QueryConfig:
    """Knobs for one ``SecQuery`` execution.

    Attributes
    ----------
    variant:
        ``"full"`` — Qry_F: ``SecDedup`` (burial) every check point,
        maximum privacy;
        ``"elim"`` — Qry_E: ``SecDupElim`` every check point (leaks the
        uniqueness pattern ``UP_d``, 5–7x faster per the paper);
        ``"batch"`` — Qry_Ba: like ``elim`` but deduplication, sorting and
        halting checks run only every ``batch_p`` depths (Section 10.2).
    batch_p:
        The batching parameter ``p`` (only used by ``"batch"``).
    engine:
        ``"eager"`` — stateful engine: per-list encrypted score/seen state,
        best scores refreshed for *all* candidates every check point
        (matches textbook NRA and the paper's Fig. 3 walkthrough; halts at
        the plaintext NRA depth).
        ``"literal"`` — Algorithm 3 to the letter: per-depth ``SecWorst``/
        ``SecBest``/``SecUpdate``; best scores of candidates not seen at
        the current depth go stale (conservative upper bounds, later
        halting).  See DESIGN.md §3.
    halting:
        ``"strict"`` — check every candidate outside the top-k plus the
        unseen-objects bound (exact NRA halting);
        ``"paper"`` — only the (k+1)-th candidate plus the unseen bound.
    compare_method / sort_method:
        Override the scheme defaults per query.
    max_depth:
        Optional scan cap (benchmarks use it to bound run time; results
        are then best-effort as in a budgeted NRA run).
    """

    variant: str = "elim"
    batch_p: int = 150
    engine: str = "eager"
    halting: str = "strict"
    compare_method: str | None = None
    sort_method: str | None = None
    max_depth: int | None = None

    def __post_init__(self):
        if self.variant not in ("full", "elim", "batch"):
            raise QueryError(f"unknown query variant: {self.variant!r}")
        if self.engine not in ("eager", "literal"):
            raise QueryError(f"unknown engine: {self.engine!r}")
        if self.halting not in ("strict", "paper"):
            raise QueryError(f"unknown halting rule: {self.halting!r}")
        if self.variant == "batch" and self.batch_p < 1:
            raise QueryError("batch_p must be >= 1")

    def check_every(self) -> int:
        """How many depths between check points (dedup + sort + halt)."""
        return self.batch_p if self.variant == "batch" else 1


@dataclass
class QueryResult:
    """Outcome of one secure top-k query."""

    items: list[ScoredItem]
    """The k winning candidates, best first, still encrypted."""

    halting_depth: int
    """1-based depth at which the oblivious NRA halted."""

    channel_stats: ChannelStats
    """Inter-cloud traffic of this query."""

    depth_seconds: list[float] = field(default_factory=list)
    """Wall-clock seconds spent per scanned depth (bench series)."""

    config: QueryConfig | None = None

    leakage_events: list | None = None
    """Populated by the server's ``execute_many`` paths: the session's
    leakage log, riding along so callers (and the process-mode parity
    tests) can audit queries whose sessions live in worker processes."""

    @property
    def time_per_depth(self) -> float:
        """Average seconds per depth — the paper's main query metric."""
        if not self.depth_seconds:
            return 0.0
        return sum(self.depth_seconds) / len(self.depth_seconds)

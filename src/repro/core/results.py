"""Query configuration and result containers."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.net.channel import ChannelStats
from repro.structures.items import ScoredItem


@dataclass(frozen=True)
class QueryConfig:
    """Knobs for one ``SecQuery`` execution.

    Attributes
    ----------
    variant:
        ``"full"`` — Qry_F: ``SecDedup`` (burial) every check point,
        maximum privacy;
        ``"elim"`` — Qry_E: ``SecDupElim`` every check point (leaks the
        uniqueness pattern ``UP_d``, 5–7x faster per the paper);
        ``"batch"`` — Qry_Ba: like ``elim`` but deduplication, sorting and
        halting checks run only every ``batch_p`` depths (Section 10.2).
    batch_p:
        The batching parameter ``p`` (only used by ``"batch"``).
    engine:
        ``"eager"`` — stateful engine: per-list encrypted score/seen state,
        best scores refreshed for *all* candidates every check point
        (matches textbook NRA and the paper's Fig. 3 walkthrough; halts at
        the plaintext NRA depth).
        ``"literal"`` — Algorithm 3 to the letter: per-depth ``SecWorst``/
        ``SecBest``/``SecUpdate``; best scores of candidates not seen at
        the current depth go stale (conservative upper bounds, later
        halting).  See DESIGN.md §3.
    halting:
        ``"strict"`` — check every candidate outside the top-k plus the
        unseen-objects bound (exact NRA halting);
        ``"paper"`` — only the (k+1)-th candidate plus the unseen bound.
    compare_method / sort_method:
        Override the scheme defaults per query.
    max_depth:
        Optional scan cap (benchmarks use it to bound run time; results
        are then best-effort as in a budgeted NRA run).
    shards:
        How many S1 shard workers hold the query lists.  ``None`` means
        "the server's default" (``TopKServer(shards=N)``); ``0``/``1``
        is the single-worker scan.  ``N >= 2`` splits every query list
        into ``N`` contiguous depth slices served by shard workers and
        merged by the fan-in stage — transcript-invisible: a sharded
        run is bit-identical (results, rounds, bytes, leakage) to the
        unsharded one (see :mod:`repro.server.sharding`).  Clamped to
        the relation size for tiny relations.
    cache:
        Whether the server may serve this query from its leakage-aware
        result cache (see :mod:`repro.server.query_cache`).  A hit is
        legal exactly because the query-pattern repeat is already L1
        leakage; ``cache=False`` forces a fresh two-cloud run and keeps
        the result out of the cache.
    warm_start:
        Let the server derive ``min_check_depth`` from the relation's
        halting-depth history (itself L1 leakage) so the engine skips
        check points that history says cannot halt.  Never changes the
        revealed top-k set — only the number of pre-halt rounds (the
        same contract as the ``"batch"`` variant's sparse check grid).
    min_check_depth:
        Explicit first check depth (1-based): check points below it are
        skipped.  ``None`` leaves the engine's grid untouched.  Usually
        filled in by the server from ``warm_start`` rather than set by
        hand.
    """

    variant: str = "elim"
    batch_p: int = 150
    engine: str = "eager"
    halting: str = "strict"
    compare_method: str | None = None
    sort_method: str | None = None
    max_depth: int | None = None
    shards: int | None = None
    cache: bool = True
    warm_start: bool = False
    min_check_depth: int | None = None

    def __post_init__(self):
        # Lazy import: the registry lives with the engines, which import
        # this module for the config type.
        from repro.core.engine import engine_names, is_registered_engine

        if self.variant not in ("full", "elim", "batch"):
            raise QueryError(f"unknown query variant: {self.variant!r}")
        if not is_registered_engine(self.engine):
            raise QueryError(
                f"unknown engine: {self.engine!r} "
                f"(registered: {', '.join(engine_names())})"
            )
        if self.halting not in ("strict", "paper"):
            raise QueryError(f"unknown halting rule: {self.halting!r}")
        if self.variant == "batch" and self.batch_p < 1:
            raise QueryError("batch_p must be >= 1")
        if self.shards is not None and self.shards < 0:
            raise QueryError("shards must be >= 0")
        if self.min_check_depth is not None and self.min_check_depth < 1:
            raise QueryError("min_check_depth must be >= 1")

    def check_every(self) -> int:
        """How many depths between check points (dedup + sort + halt)."""
        return self.batch_p if self.variant == "batch" else 1

    def effective_shards(self) -> int:
        """Shard-worker count this config asks for (0/1 = unsharded)."""
        return self.shards or 0

    def cache_key(self) -> tuple:
        """The config part of the result-cache key.

        Covers every knob that can change what a query returns — the
        wire transcript *or* the result's observable cost profile
        (``shards`` is transcript-invisible but surfaces per-shard
        stats, so it keys too).  Deliberately excludes the purely
        operational ``cache`` flag itself.
        """
        return (
            self.variant,
            self.batch_p,
            self.engine,
            self.halting,
            self.compare_method,
            self.sort_method,
            self.max_depth,
            self.shards,
            self.warm_start,
            self.min_check_depth,
        )


@dataclass(frozen=True)
class ShardStats:
    """One shard worker's slice of a sharded query's cost profile."""

    shard_id: int
    """Shard index, 0-based, in depth order."""

    depth_lo: int
    """First (0-based) global depth this shard's slice holds."""

    depth_hi: int
    """One past the last global depth of the slice."""

    records_scanned: int
    """Encrypted items this shard served to the engine (window
    granularity: a fetched depth counts all its list entries)."""

    depth_reached: int
    """Deepest (1-based) global depth the shard served; 0 when the query
    halted before the scan reached this shard's slice."""

    elapsed_seconds: float
    """Wall-clock seconds this shard's worker spent preparing and
    serving its slice (weighting + window assembly)."""


@dataclass(frozen=True)
class QueryStats:
    """The uniform cost profile of one query, across every execution
    mode and transport.

    Clients read this block instead of reaching into transports,
    channels or leakage logs: the same fields are populated whether the
    query ran in-process, on a thread, against a TCP daemon, or inside
    an ``execute_many`` worker process.
    """

    engine: str
    variant: str
    halting_depth: int
    depths_scanned: int
    rounds: int
    bytes_s1_to_s2: int
    bytes_s2_to_s1: int
    elapsed_seconds: float
    leakage: tuple = ()
    """``(observer, protocol, kind, repr(payload))`` tuples, in event
    order — the query's full declared-leakage profile."""

    shards: tuple = ()
    """Per-shard :class:`ShardStats`, in depth order — empty for
    unsharded runs."""

    cache_hit: bool = False
    """Whether the result was served from the server's leakage-aware
    result cache (zero S2 rounds) instead of a fresh two-cloud run."""

    coalesced_rounds: int = 0
    """How many of this query's round-trips were shared with concurrent
    jobs on the same relation by the scan rendezvous (0 when coalescing
    is off or no partner arrived in the window)."""

    trace: tuple = field(default=(), compare=False)
    """The job's frozen trace timeline — :class:`~repro.obs.trace.Span`
    tuples (queued, run, per-round laps, pool/S2 sub-spans) when the
    query ran through the server's job scheduler; empty for bare
    ``scheme.query`` calls.  Wall-clock observation, so excluded from
    equality (two transcript-identical runs never share timings)."""

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_s1_to_s2 + self.bytes_s2_to_s1

    @property
    def time_per_depth(self) -> float:
        """Average seconds per scanned depth."""
        if not self.depths_scanned:
            return 0.0
        return self.elapsed_seconds / self.depths_scanned


@dataclass
class QueryResult:
    """Outcome of one secure top-k query."""

    items: list[ScoredItem]
    """The k winning candidates, best first, still encrypted."""

    halting_depth: int
    """1-based depth at which the oblivious NRA halted."""

    channel_stats: ChannelStats
    """Inter-cloud traffic of this query."""

    depth_seconds: list[float] = field(default_factory=list)
    """Wall-clock seconds spent per scanned depth (bench series)."""

    config: QueryConfig | None = None

    leakage_events: list | None = None
    """This query's slice of the session leakage log (S1 and S2 events
    at their protocol positions), attached by the scheme on every path —
    including queries whose sessions live in worker processes."""

    shard_stats: list | None = None
    """Per-shard :class:`ShardStats` of a sharded run (depth order);
    ``None`` for single-worker scans."""

    cache_hit: bool = False
    """True when the server served this result from its query cache."""

    coalesced_rounds: int = 0
    """Round-trips this query shared with concurrent jobs (rendezvous)."""

    trace: tuple | None = None
    """Frozen :class:`~repro.obs.trace.Span` timeline attached by the
    job scheduler (``None`` until a job's ``_finish_result`` sets it)."""

    @property
    def time_per_depth(self) -> float:
        """Average seconds per depth — the paper's main query metric."""
        if not self.depth_seconds:
            return 0.0
        return sum(self.depth_seconds) / len(self.depth_seconds)

    @functools.cached_property
    def stats(self) -> QueryStats:
        """The uniform :class:`QueryStats` cost block for this query.

        Computed once on first access (the leakage tuple reprs every
        event payload) from fields that are final by the time a result
        reaches the caller.
        """
        config = self.config or QueryConfig()
        return QueryStats(
            engine=config.engine,
            variant=config.variant,
            halting_depth=self.halting_depth,
            depths_scanned=len(self.depth_seconds),
            rounds=self.channel_stats.rounds,
            bytes_s1_to_s2=self.channel_stats.bytes_s1_to_s2,
            bytes_s2_to_s1=self.channel_stats.bytes_s2_to_s1,
            elapsed_seconds=sum(self.depth_seconds),
            leakage=tuple(
                (e.observer, e.protocol, e.kind, repr(e.payload))
                for e in (self.leakage_events or ())
            ),
            shards=tuple(self.shard_stats or ()),
            cache_hit=self.cache_hit,
            coalesced_rounds=self.coalesced_rounds,
            trace=tuple(self.trace or ()),
        )

"""S1's oblivious NRA engine — ``SecQuery`` (Algorithm 3).

Two engines implement the same functionality:

* :class:`EagerEngine` maintains, for every candidate, per-query-list
  encrypted state: the accumulated list score ``Enc(s_j)`` and the layered
  seen-indicator ``E2(seen_j)``.  At every *check point* it recomputes
  every candidate's worst score ``Σ_j s_j`` and best score
  ``Σ_j s_j + Σ_j (1 - seen_j)·bottom_j`` with one batched ``RecoverEnc``,
  deduplicates, sorts with ``EncSort`` and evaluates the halting rule with
  ``EncCompare``.  This engine reproduces textbook NRA exactly (same
  halting depth as the plaintext oracle) and powers all three query
  variants; the batching variant Qry_Ba simply spaces out the check
  points.

* :class:`LiteralEngine` follows Algorithm 3 line by line: per depth it
  runs ``SecWorst`` (Algorithm 4) and ``SecBest`` (Algorithm 6) for the
  depth's items, deduplicates the depth batch, merges it into ``T`` with
  ``SecUpdate`` (Algorithm 9), then sorts and checks halting.  Candidates
  untouched at the current depth keep stale (conservative) upper bounds,
  so halting can come later than plaintext NRA — but the reported top-k
  set is still correct (DESIGN.md §3).

Round coalescing: every independent S2 interaction of one depth is a
*flow* (see :mod:`repro.net.batching`), and the engines run a depth's
flows lock-step so each stage crosses the link as ONE round-trip.  A
depth therefore costs O(1) rounds regardless of the number of query
lists ``m`` or the candidate-list size — the per-depth round complexity
the paper's Table 3 assumes — where the uncoalesced formulation paid
O(m) (eager absorption, literal SecWorst/SecBest) or O(|T|) (strict
halting) rounds.

Neither engine ever sees a plaintext: every decision flows through the
sub-protocols, and S1's only observations are the declared ``L1`` leakage
(query pattern, halting depth, and — in the elim variants — the
uniqueness pattern).
"""

from __future__ import annotations

import time

import importlib

from repro.crypto.damgard_jurik import (
    layered_one_hot_select,
    layered_select,
)
from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.events import CandidateFinalized, DepthAdvanced
from repro.exceptions import QueryError
from repro.protocols.base import S1Context
from repro.net.messages import ZeroTestBatch
from repro.protocols.enc_compare import enc_compare, enc_compare_flow
from repro.protocols.enc_sort import enc_sort
from repro.protocols.recover_enc import recover_enc_flow
from repro.protocols.sec_best import sec_best_flow
from repro.protocols.sec_dedup import sec_dedup
from repro.protocols.sec_dup_elim import sec_dup_elim
from repro.protocols.sec_update import sec_update
from repro.protocols.sec_worst import sec_worst_flow
from repro.core.results import QueryConfig
from repro.structures.items import EncryptedItem, ListPrefix, ScoredItem

PROTOCOL = "SecQuery"


class _EngineBase:
    """Shared plumbing: sorting, halting rule, per-depth timing."""

    def __init__(
        self,
        ctx: S1Context,
        own_keypair: PaillierKeypair,
        enc_lists: list[list[EncryptedItem]],
        k: int,
        config: QueryConfig,
        compare_method: str,
        sort_method: str,
    ):
        if not enc_lists:
            raise QueryError("query selects no lists")
        lengths = {len(lst) for lst in enc_lists}
        if len(lengths) != 1:
            raise QueryError("sorted lists have inconsistent lengths")
        self.ctx = ctx
        self.own_keypair = own_keypair
        self.lists = enc_lists
        self.n = lengths.pop()
        self.m = len(enc_lists)
        self.k = k
        if k > self.n:
            raise QueryError(f"k={k} exceeds relation size n={self.n}")
        self.config = config
        self.compare_method = compare_method
        self.sort_method = sort_method
        self.depth_seconds: list[float] = []
        # Sharded relations (repro.server.sharding) expose a prefetch
        # hook: announcing each depth boundary lets the shard workers
        # assemble and fan-in the check window before its rounds are
        # built.  Plain lists have no hook and cost nothing.
        self._prefetch_window = getattr(enc_lists, "prefetch", None)

    def _begin_depth(self, depth: int) -> None:
        """Make ``depth``'s items servable (shard-window fan-in point)."""
        if self._prefetch_window is not None:
            self._prefetch_window(depth)

    # -- unseen-object bound ---------------------------------------------

    def _unseen_bound(self, depth: int) -> Ciphertext:
        """``Enc(Σ_j bottom_j)`` at ``depth`` — the NRA unseen-object bound.

        Computed on demand, once per check depth (the halting rule is its
        only consumer); hoisted into a helper so a future shard fan-in
        can share it.
        """
        total = self.lists[0][depth].score
        for j in range(1, self.m):
            total = total + self.lists[j][depth].score
        return total

    # -- halting ---------------------------------------------------------

    def _halting_check(
        self, t_sorted: list[ScoredItem], depth: int
    ) -> bool:
        """Evaluate the halting rule on the sorted candidate list.

        Two stages, each one coalesced round for the blinded construction
        (three for DGK): the unseen-object bound first — preserving the
        cheap early-out on the common non-halting path — then all
        remaining per-candidate comparisons together, regardless of the
        candidate-list size (the uncoalesced strict rule paid one round
        per candidate).
        """
        if len(t_sorted) < self.k:
            return False
        last_depth = depth == self.n - 1
        if last_depth:
            return True
        w_k = t_sorted[self.k - 1].worst
        ctx = self.ctx

        # Stage 1 — unseen-object bound: B(unseen) = sum of bottom scores.
        if not enc_compare(
            ctx,
            self._unseen_bound(depth),
            w_k,
            method=self.compare_method,
            protocol=PROTOCOL,
        ):
            return False

        # Stage 2 — candidate bounds, coalesced into one round.
        if self.config.halting == "paper":
            if len(t_sorted) == self.k:
                return True
            candidates = [t_sorted[self.k]]
        else:
            # strict: every candidate outside the top-k must be dominated.
            candidates = t_sorted[self.k :]
        flows = [
            enc_compare_flow(
                ctx, item.best, w_k, method=self.compare_method, protocol=PROTOCOL
            )
            for item in candidates
        ]
        return all(ctx.run_flows(flows))

    def _sort(self, items: list[ScoredItem]) -> list[ScoredItem]:
        with self.ctx.channel.protocol(PROTOCOL):
            return enc_sort(
                self.ctx,
                items,
                self.own_keypair,
                descending=True,
                method=self.sort_method,
                key="worst",
            )

    def _dedup(self, items: list[ScoredItem], ranks: list[int]) -> list[ScoredItem]:
        with self.ctx.channel.protocol(PROTOCOL):
            if self.config.variant == "full":
                return sec_dedup(self.ctx, items, self.own_keypair, ranks)
            return sec_dup_elim(self.ctx, items, self.own_keypair, ranks)

    def _is_check_depth(self, depth: int) -> bool:
        every = self.config.check_every()
        first = self.config.min_check_depth
        if first is not None:
            # Warm-started grid: anchored at the earliest depth history
            # says a halt is possible (1-based ``first``), then every
            # ``every`` depths, plus the unconditional last depth.  Same
            # correctness contract as the batch variant's sparse grid:
            # checks only ever move later, so the top-k set is
            # unchanged, only rounds are saved.
            anchor = first - 1
            return depth == self.n - 1 or (
                depth >= anchor and (depth - anchor) % every == 0
            )
        return (depth + 1) % every == 0 or depth == self.n - 1

    def _max_depth(self) -> int:
        if self.config.max_depth is None:
            return self.n
        return min(self.n, self.config.max_depth)

    # -- progress streaming ----------------------------------------------

    def _notify_depth(self, depth: int, candidates: int) -> None:
        """One depth scanned (1-based); pure observation, no protocol."""
        self.ctx.notify(DepthAdvanced(depth=depth, candidates=candidates))

    def _notify_final(self, winners: list[ScoredItem], depth: int) -> None:
        """The halting rule fixed the top-k: one event per rank."""
        for rank in range(len(winners)):
            self.ctx.notify(CandidateFinalized(rank=rank + 1, depth=depth))


class EagerEngine(_EngineBase):
    """Stateful engine: exact NRA bounds for every candidate."""

    def run(self) -> tuple[list[ScoredItem], int]:
        """Execute the query; returns (top-k items, 1-based halting depth)."""
        t_list: list[ScoredItem] = []
        for depth in range(self._max_depth()):
            started = time.perf_counter()
            self.ctx.checkpoint()
            self._begin_depth(depth)
            check = self._is_check_depth(depth)
            # At check depths the bound refresh rides the absorption's
            # recover round (one coalesced flow batch) instead of paying
            # its own round afterwards.
            t_list = self._absorb_depth(t_list, depth, refresh=check)
            if check:
                t_list = self._dedup(t_list, list(range(len(t_list))))
                if len(t_list) >= self.k:
                    t_list = self._sort(t_list)
                    if self._halting_check(t_list, depth):
                        self.depth_seconds.append(time.perf_counter() - started)
                        self._notify_depth(depth + 1, len(t_list))
                        self._notify_final(t_list[: self.k], depth + 1)
                        return t_list[: self.k], depth + 1
            self.depth_seconds.append(time.perf_counter() - started)
            self._notify_depth(depth + 1, len(t_list))
        # Budget exhausted (max_depth cap): best-effort answer.
        self._refresh_bounds(t_list, self._max_depth() - 1)
        t_list = self._dedup(t_list, list(range(len(t_list))))
        t_list = self._sort(t_list)
        self._notify_final(t_list[: self.k], self._max_depth())
        return t_list[: self.k], self._max_depth()

    # -- coalesced per-depth absorption ----------------------------------

    def _absorb_depth(
        self, t_list: list[ScoredItem], depth: int, refresh: bool = False
    ) -> list[ScoredItem]:
        """Fold all ``m`` sorted-access items of one depth into the state.

        The per-list absorptions are independent up to candidate-identity
        bookkeeping (an item only needs the *identities* — EHLs — of the
        candidates before it, which are known at depth start), so their
        equality tests ship in one round and their ``RecoverEnc`` batches
        in a second — two round-trips per depth instead of ``2m``.

        With ``refresh=True`` (check depths) the worst/best bound
        recomputation joins the same flow batch: its inputs are only the
        seen bits, which the absorb flows settle from the equality
        stage's bits, so its ``RecoverEnc`` batch coalesces into the
        absorption's recover round — a check depth costs 5 rounds where
        the uncoalesced refresh paid a 6th.
        """
        items = [self.lists[j][depth] for j in range(self.m)]
        shared = list(t_list)
        base = len(shared)
        flows = [
            self._absorb_flow(shared, base, j, items) for j in range(self.m)
        ]
        if refresh:
            flows.append(self._refresh_flow(shared, depth, wait_rounds=1))
        self.ctx.run_flows(flows)
        return shared

    def _absorb_flow(
        self,
        shared: list[ScoredItem],
        base: int,
        list_slot: int,
        items: list[EncryptedItem],
    ):
        """One list's absorption at the current depth (flow form).

        Runs the equality test against every candidate known before this
        item (earlier depths' candidates plus this depth's earlier list
        items), credits the matched candidate's ``list_slot`` score/seen
        state, and appends a new candidate entry that is homomorphically
        neutralized when the object was already known (S1 cannot branch
        on the encrypted match bit); check-point deduplication clears the
        neutralized husks.  Flows are advanced in list order, so by the
        time this flow mutates candidate state, every earlier list's
        entry for this depth exists in ``shared``.
        """
        ctx = self.ctx
        dj = ctx.dj
        item = items[list_slot]
        zero = ctx.zero()
        n_candidates = base + list_slot
        ehls = [shared[i].ehl for i in range(base)] + [
            items[i].ehl for i in range(list_slot)
        ]

        bits = []
        if n_candidates:
            # Permute before shipping so S2's equality-pattern view is the
            # declared EP_d leakage (pattern up to a random permutation).
            order = ctx.rng.permutation(n_candidates)
            eq_cts = [item.ehl.minus(ehls[i], ctx.rng) for i in order]
            permuted_bits = yield ZeroTestBatch(protocol=PROTOCOL, cts=eq_cts)
            bits = [None] * n_candidates
            for slot, i in enumerate(order):
                bits[i] = permuted_bits[slot]

        # Everything that needs only the equality bits — seen-bit credits
        # and the new candidate's entry — settles *before* the recover
        # round, so a check depth's bound refresh (whose inputs are the
        # seen bits) can ride the same recover round.
        for i, bit in enumerate(bits):
            candidate = shared[i]
            candidate.seen_bits[list_slot] = candidate.seen_bits[list_slot] + bit

        matched = None
        for bit in bits:
            matched = bit if matched is None else matched + bit

        layered = [layered_select(dj, bit, item.score, zero) for bit in bits]
        if matched is None:
            own_seen = dj.encrypt(1, ctx.rng)
            own_layered = None
        else:
            own_seen = dj.encrypt(1, ctx.rng) - matched
            # matched -> Enc(0), fresh object -> Enc(x).
            own_layered = layered_one_hot_select(dj, [matched], [zero], item.score)
            layered.append(own_layered)

        entry = ScoredItem(
            ehl=item.ehl,
            worst=zero,
            best=zero,
            list_scores=[
                # The own-list slot is patched to the recovered score
                # after the recover round resolves.
                zero if j == list_slot else ctx.public_key.encrypt(0, ctx.rng)
                for j in range(self.m)
            ],
            seen_bits=[
                own_seen if j == list_slot else dj.encrypt(0, ctx.rng)
                for j in range(self.m)
            ],
            record=item.record,
        )
        if len(shared) != base + list_slot:
            raise QueryError(
                "absorption order violated: earlier lists' entries must be "
                "appended before this flow resumes"
            )
        shared.append(entry)

        recovered = yield from recover_enc_flow(ctx, layered, PROTOCOL)

        for i, credit in enumerate(recovered[: len(bits)]):
            candidate = shared[i]
            candidate.list_scores[list_slot] = (
                candidate.list_scores[list_slot] + credit
            )

        entry.list_scores[list_slot] = (
            recovered[-1] if own_layered is not None else item.score
        )

    # -- bound recomputation ----------------------------------------------

    def _refresh_flow(
        self, t_list: list[ScoredItem], depth: int, wait_rounds: int = 0
    ):
        """Recompute every candidate's worst/best from the per-list state
        (flow form).

        ``wait_rounds`` lets the flow sit out leading rounds so that,
        when appended after the absorb flows of a check depth, its
        layered selects are built only once the absorptions have settled
        the seen bits — the ``RecoverEnc`` batch then coalesces into the
        absorption's recover round.  The worst/best sums are computed
        after that round resolves, by which time the absorb flows (which
        run first each stage) have applied their score credits.
        """
        for _ in range(wait_rounds):
            yield None
        if not t_list:
            return
        ctx = self.ctx
        dj = ctx.dj
        zero = ctx.zero()
        bottoms = [self.lists[j][depth].score for j in range(self.m)]

        layered = []
        for t_item in t_list:
            for j in range(self.m):
                # seen -> Enc(0) contribution, unseen -> Enc(bottom_j).
                layered.append(
                    layered_one_hot_select(
                        dj, [t_item.seen_bits[j]], [zero], bottoms[j]
                    )
                )
        recovered = yield from recover_enc_flow(ctx, layered, PROTOCOL)

        idx = 0
        for t_item in t_list:
            worst = t_item.list_scores[0]
            for j in range(1, self.m):
                worst = worst + t_item.list_scores[j]
            best = worst
            for j in range(self.m):
                best = best + recovered[idx]
                idx += 1
            t_item.worst = worst
            t_item.best = best

    def _refresh_bounds(self, t_list: list[ScoredItem], depth: int) -> None:
        """Standalone bound refresh (budget-exhausted best-effort path)."""
        self.ctx.run_flows([self._refresh_flow(t_list, depth)])


class LiteralEngine(_EngineBase):
    """Algorithm 3 verbatim: SecWorst/SecBest/SecDedup/SecUpdate per depth."""

    def run(self) -> tuple[list[ScoredItem], int]:
        """Execute the query; returns (top-k items, 1-based halting depth)."""
        ctx = self.ctx
        t_list: list[ScoredItem] = []
        for depth in range(self._max_depth()):
            started = time.perf_counter()
            ctx.checkpoint()
            self._begin_depth(depth)
            depth_items = [self.lists[j][depth] for j in range(self.m)]
            # Zero-copy prefix views (the bottom item is prefix[-1]).
            prefixes = [ListPrefix(self.lists[j], depth + 1) for j in range(self.m)]

            # All SecWorst/SecBest runs of a depth are independent:
            # coalesce their equality stage and their recover stage into
            # one round-trip each.
            flows = []
            for idx, item in enumerate(depth_items):
                others = depth_items[:idx] + depth_items[idx + 1 :]
                flows.append(sec_worst_flow(ctx, item, others))
                flows.append(
                    sec_best_flow(
                        ctx,
                        item,
                        [prefixes[j] for j in range(self.m) if j != idx],
                    )
                )
            bounds = ctx.run_flows(flows)

            gammas: list[ScoredItem] = []
            with ctx.channel.protocol(PROTOCOL):
                for idx, item in enumerate(depth_items):
                    gammas.append(
                        ScoredItem(
                            ehl=item.ehl,
                            worst=bounds[2 * idx],
                            best=bounds[2 * idx + 1],
                            record=item.record,
                        )
                    )
                if len(gammas) > 1:
                    if self.config.variant == "full":
                        gammas = sec_dedup(ctx, gammas, self.own_keypair)
                    else:
                        gammas = sec_dup_elim(ctx, gammas, self.own_keypair)
                t_list = sec_update(
                    ctx,
                    t_list,
                    gammas,
                    self.own_keypair,
                    eliminate=self.config.variant != "full",
                )

            if self._is_check_depth(depth) and len(t_list) >= self.k:
                t_list = self._sort(t_list)
                if self._halting_check(t_list, depth):
                    self.depth_seconds.append(time.perf_counter() - started)
                    self._notify_depth(depth + 1, len(t_list))
                    self._notify_final(t_list[: self.k], depth + 1)
                    return t_list[: self.k], depth + 1
            self.depth_seconds.append(time.perf_counter() - started)
            self._notify_depth(depth + 1, len(t_list))

        t_list = self._sort(t_list)
        self._notify_final(t_list[: self.k], self._max_depth())
        return t_list[: self.k], self._max_depth()


# ---------------------------------------------------------------------------
# Engine registry: every execution strategy the scheme can run, selectable
# by name through ``QueryConfig(engine=...)``.
# ---------------------------------------------------------------------------

#: name -> engine class, or a lazy ``"module:attr"`` reference (resolved on
#: first use, so listing engine names never imports the baseline modules).
_ENGINE_REGISTRY: dict[str, object] = {}


def register_engine(name: str, factory) -> None:
    """Register an engine under ``name``.

    ``factory`` is either an engine class with the :class:`_EngineBase`
    constructor signature — ``(ctx, own_keypair, enc_lists, k, config,
    compare_method, sort_method)``, exposing ``run() -> (items, depth)``
    and ``depth_seconds`` — or a ``"module:attr"`` string resolved
    lazily.  Re-registering a name replaces the previous entry.
    """
    _ENGINE_REGISTRY[name] = factory


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted (for errors, docs and clients)."""
    return tuple(sorted(_ENGINE_REGISTRY))


def is_registered_engine(name: str) -> bool:
    """Whether ``name`` is selectable through ``QueryConfig(engine=...)``."""
    return name in _ENGINE_REGISTRY


def resolve_engine(name: str):
    """The engine class registered under ``name`` (lazy refs resolved)."""
    try:
        factory = _ENGINE_REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown engine: {name!r} (registered: {', '.join(engine_names())})"
        ) from None
    if isinstance(factory, str):
        module_name, _, attr = factory.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        _ENGINE_REGISTRY[name] = factory
    return factory


def build_engine(
    ctx: S1Context,
    own_keypair: PaillierKeypair,
    enc_lists: list[list[EncryptedItem]],
    k: int,
    config: QueryConfig,
    compare_method: str,
    sort_method: str,
):
    """Instantiate the engine the config asks for."""
    cls = resolve_engine(config.engine)
    return cls(ctx, own_keypair, enc_lists, k, config, compare_method, sort_method)


register_engine("eager", EagerEngine)
register_engine("literal", LiteralEngine)
# Cost-model baselines (Section 11): selectable through the same config,
# implemented in their own module so the secure path never imports them.
register_engine("plaintext", "repro.core.baseline_engines:NaiveShipEngine")
register_engine("sknn", "repro.core.baseline_engines:SknnScanEngine")

"""Baseline engines for the registry: the paper's comparison points.

Section 11 measures ``SecTopK`` against two reference strategies; the
engine registry makes both selectable through the ordinary
``QueryConfig(engine=...)`` so benchmarks and the client API can run
them over the same relations, transports and accounting channel:

* ``"plaintext"`` (:class:`NaiveShipEngine`) — the full-shipment
  strawman: every ``(Enc(score), Enc(record))`` pair of the queried
  lists crosses the link in ONE round, S2 decrypts everything,
  aggregates per object and returns the top-k re-encrypted.  O(n·m)
  communication, no oblivious machinery, wholesale reveal to S2
  (recorded as ``full_reveal`` leakage).

* ``"sknn"`` (:class:`SknnScanEngine`) — the cost structure of the
  secure-kNN adaptation [21] (Section 11.3) mapped onto the sorted-list
  storage: phase 1 ships the whole relation for per-object aggregation;
  phase 2 runs ``k`` secure-maximum scan rounds of ``n - 1`` interactive
  ``EncCompare`` invocations each, re-shipping the surviving candidates
  every round ("[21] needs to send all of the encrypted records for
  each query execution").  Computation and communication are O(n)
  per selection round — no early termination, ever.

Both engines reproduce *cost structure and results*, not security: they
are insecure reference points by design, and their leakage logs say so
explicitly.  Results match the plaintext oracle (ties broken by record
id), so the parity and transport-equivalence machinery applies to them
unchanged.
"""

from __future__ import annotations

import time

from repro.core.engine import _EngineBase
from repro.net.messages import AggregateByRecord, NaiveTopKQuery, RecordShipment
from repro.protocols.enc_compare import enc_compare
from repro.structures.items import ScoredItem


class NaiveShipEngine(_EngineBase):
    """``engine="plaintext"``: ship everything, let S2 do the top-k."""

    PROTOCOL = "NaiveTopK"

    def run(self) -> tuple[list[ScoredItem], int]:
        started = time.perf_counter()
        ctx = self.ctx
        scores = [item.score for lst in self.lists for item in lst]
        records = [item.record for lst in self.lists for item in lst]
        pairs = ctx.call(
            NaiveTopKQuery(
                protocol=self.PROTOCOL, scores=scores, records=records, k=self.k
            )
        )
        items = [
            ScoredItem(ehl=None, worst=total, best=total, record=record)
            for record, total in pairs
        ]
        self.depth_seconds.append(time.perf_counter() - started)
        self._notify_depth(self.n, len(items))
        self._notify_final(items, self.n)
        return items, self.n


class SknnScanEngine(_EngineBase):
    """``engine="sknn"``: [21]-shaped full scan + k secure-max rounds."""

    PROTOCOL = "SkNNScan"

    def run(self) -> tuple[list[ScoredItem], int]:
        started = time.perf_counter()
        ctx = self.ctx

        # Phase 1 — the whole relation crosses the link once; S2 returns
        # per-object aggregate totals (record ids in clear: the
        # baseline's declared reveal).
        scores = [item.score for lst in self.lists for item in lst]
        records = [item.record for lst in self.lists for item in lst]
        rids, totals = ctx.call(
            AggregateByRecord(protocol=self.PROTOCOL, scores=scores, records=records)
        )
        by_rid = dict(zip(rids, totals))

        # Phase 2 — k rounds of a SMIN_n-style scan: n-1 interactive
        # comparisons each, with the surviving candidates re-shipped
        # every round as [21] does.  Candidates are visited in
        # descending record id so the ``a <= b`` comparison hands ties
        # to the smaller id — the plaintext oracle's tie-break.
        winners: list[ScoredItem] = []
        excluded: set[int] = set()
        for _ in range(self.k):
            ctx.checkpoint()
            candidates = [rid for rid in rids if rid not in excluded]
            ctx.call(
                RecordShipment(
                    protocol=self.PROTOCOL,
                    objects=[
                        ctx.public_key.rerandomize(by_rid[rid], ctx.rng)
                        for rid in candidates
                    ],
                )
            )
            best = candidates[-1]
            for rid in reversed(candidates[:-1]):
                if enc_compare(
                    ctx,
                    by_rid[best],
                    by_rid[rid],
                    method=self.compare_method,
                    protocol=self.PROTOCOL,
                ):
                    best = rid
            excluded.add(best)
            winners.append(
                ScoredItem(
                    ehl=None,
                    worst=by_rid[best],
                    best=by_rid[best],
                    record=ctx.public_key.encrypt(best, ctx.rng),
                )
            )

        self.depth_seconds.append(time.perf_counter() - started)
        self._notify_depth(self.n, len(winners))
        self._notify_final(winners, self.n)
        return winners, self.n

"""System-wide parameters for the SecTopK scheme.

Collects every knob the construction has — key sizes, EHL shape, score
encoding widths, and the default choices for the pluggable building
blocks — with presets matching the paper's evaluation and a fast preset
for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError


@dataclass(frozen=True)
class SystemParams:
    """Immutable scheme parameters.

    Attributes
    ----------
    key_bits:
        Paillier modulus size.  The paper's experiments use a 256-bit
        modulus ("128-bit security for the Paillier and DJ encryption").
    score_bits:
        Maximum bit-width of a single attribute score.
    blind_bits:
        Statistical blinding parameter ``κ``.
    ehl_variant:
        ``"plus"`` for EHL+ (default, what the paper's query experiments
        use) or ``"bits"`` for the original EHL.
    ehl_hashes:
        Number of PRFs ``s`` (paper: 5).
    ehl_table_size:
        Bit-table length ``H`` for the ``"bits"`` variant (paper: 23).
    compare_method / sort_method:
        Default constructions for ``EncCompare`` (``"blinded"``/``"dgk"``)
        and ``EncSort`` (``"affine"``/``"network"``).
    """

    key_bits: int = 256
    score_bits: int = 32
    blind_bits: int = 40
    ehl_variant: str = "plus"
    ehl_hashes: int = 5
    ehl_table_size: int = 23
    compare_method: str = "blinded"
    sort_method: str = "affine"

    def __post_init__(self):
        if self.ehl_variant not in ("plus", "bits"):
            raise QueryError(f"unknown EHL variant: {self.ehl_variant!r}")
        if self.compare_method not in ("blinded", "dgk"):
            raise QueryError(f"unknown compare method: {self.compare_method!r}")
        if self.sort_method not in ("affine", "network"):
            raise QueryError(f"unknown sort method: {self.sort_method!r}")
        # The widest range any protocol needs: affine sort blinding of
        # sentinel-magnitude keys.
        needed = self.score_bits + 2 * self.blind_bits + 4
        if needed >= self.key_bits:
            raise QueryError(
                f"key_bits={self.key_bits} too small for score_bits="
                f"{self.score_bits}, blind_bits={self.blind_bits} "
                f"(need > {needed})"
            )

    @classmethod
    def paper(cls) -> "SystemParams":
        """The configuration of the paper's experiments (Section 11)."""
        return cls(key_bits=256, score_bits=32, blind_bits=40, ehl_hashes=5)

    @classmethod
    def insecure_demo(cls) -> "SystemParams":
        """Small, fast parameters for tests and examples.

        192-bit modulus and narrower blinding: functionally identical,
        *not* a secure key size.
        """
        return cls(key_bits=192, score_bits=20, blind_bits=28, ehl_hashes=4)

    @classmethod
    def tiny(cls) -> "SystemParams":
        """Minimal parameters for fast unit tests (128-bit modulus)."""
        return cls(
            key_bits=128,
            score_bits=16,
            blind_bits=24,
            ehl_hashes=3,
            ehl_table_size=16,
        )

    @classmethod
    def secure(cls) -> "SystemParams":
        """A conservatively-sized configuration for real deployments."""
        return cls(key_bits=2048, score_bits=48, blind_bits=60, ehl_hashes=5)

"""The encrypted relation ``ER`` produced by ``Enc`` (Algorithm 2).

``ER`` is a set of per-attribute sorted lists whose entries are
``E(I^d) = ⟨EHL(o^d), Enc(x^d), Enc(o^d)⟩`` — the encrypted-hash-list of
the object id, the Paillier-encrypted local score, and the encrypted
record id that lets the client decrypt the winners.  Lists are stored
under their *permuted* names ``P_K(i)``, so an S1 holding ``ER`` learns
only the relation size and attribute count (Theorem 6.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.structures.items import EncryptedItem


@dataclass
class EncryptedRelation:
    """``ER`` — what the data owner uploads to S1."""

    lists: dict[int, list[EncryptedItem]]
    """Permuted list name -> entries in descending local-score order."""

    n_objects: int
    n_attributes: int
    ehl_variant: str

    version: int = 0
    """Monotonic mutation counter.  ``Enc`` emits version 0; every
    insert/update/delete through :class:`~repro.server.mutations.MutableRelation`
    produces a successor relation with ``version + 1``.  Folded into
    :meth:`relation_id`, so every mutation re-keys daemon registrations,
    the process-wide relation/slice stores, the query cache and the
    warm-start history — stale consumers miss rather than alias."""

    _relation_id: str | None = field(default=None, repr=False, compare=False)

    def relation_id(self) -> str:
        """A stable fingerprint identifying this encrypted relation.

        Keys the deployment machinery: remote S2 daemons register key
        material per relation id (so repeated queries skip the upload),
        and query-worker pools cache the relation per id.  Derived from
        the shape, the mutation :attr:`version` and one ciphertext per
        list — encryption randomness makes that distinguishing — so the
        same ``ER`` object, pickled copies of it, and re-loads of it all
        agree, while any two versions of one relation never collide.
        """
        if self._relation_id is None:
            digest = hashlib.sha256(b"repro-relation:")
            digest.update(
                f"{self.n_objects}:{self.n_attributes}:"
                f"{self.ehl_variant}:v{self.version}".encode()
            )
            for name in sorted(self.lists):
                entries = self.lists[name]
                digest.update(name.to_bytes(8, "big", signed=True))
                if entries:
                    digest.update(entries[0].score.to_bytes())
            self._relation_id = digest.hexdigest()[:32]
        return self._relation_id

    def list_for(self, permuted_name: int) -> list[EncryptedItem]:
        """Sorted list stored under a permuted name."""
        if permuted_name not in self.lists:
            raise QueryError(f"no list named {permuted_name}")
        return self.lists[permuted_name]

    def serialized_size(self) -> int:
        """Total size of ``ER`` in bytes (Fig. 7b / 8b series)."""
        return sum(
            item.serialized_size() for lst in self.lists.values() for item in lst
        )

    def size_mb(self) -> float:
        """Total size in megabytes."""
        return self.serialized_size() / 1_000_000

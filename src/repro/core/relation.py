"""The encrypted relation ``ER`` produced by ``Enc`` (Algorithm 2).

``ER`` is a set of per-attribute sorted lists whose entries are
``E(I^d) = ⟨EHL(o^d), Enc(x^d), Enc(o^d)⟩`` — the encrypted-hash-list of
the object id, the Paillier-encrypted local score, and the encrypted
record id that lets the client decrypt the winners.  Lists are stored
under their *permuted* names ``P_K(i)``, so an S1 holding ``ER`` learns
only the relation size and attribute count (Theorem 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.structures.items import EncryptedItem


@dataclass
class EncryptedRelation:
    """``ER`` — what the data owner uploads to S1."""

    lists: dict[int, list[EncryptedItem]]
    """Permuted list name -> entries in descending local-score order."""

    n_objects: int
    n_attributes: int
    ehl_variant: str

    def list_for(self, permuted_name: int) -> list[EncryptedItem]:
        """Sorted list stored under a permuted name."""
        if permuted_name not in self.lists:
            raise QueryError(f"no list named {permuted_name}")
        return self.lists[permuted_name]

    def serialized_size(self) -> int:
        """Total size of ``ER`` in bytes (Fig. 7b / 8b series)."""
        return sum(
            item.serialized_size() for lst in self.lists.values() for item in lst
        )

    def size_mb(self) -> float:
        """Total size in megabytes."""
        return self.serialized_size() / 1_000_000

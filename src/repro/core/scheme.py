"""``SecTopK = (Enc, Token, SecQuery)`` — the top-level scheme
(Definition 4.1).

A :class:`SecTopK` instance plays the *data owner* (it generates and keeps
all keys) and mints the artifacts for the other parties:

* :meth:`encrypt` — Algorithm 2: sort each attribute column, encrypt every
  entry as ``⟨EHL(o), Enc(x), Enc(o)⟩`` and permute the list names with
  the PRP ``P_K``.  The result is what S1 stores.
* :meth:`token` — Section 7: map the queried attribute indices through
  ``P_K``.
* :meth:`query` — Algorithm 3: spin up the two-cloud machinery (S1
  context, S2 crypto cloud, accounting channel) and run the oblivious NRA
  engine.  In a deployment the two sides run on different providers; the
  in-process simulation routes every exchanged byte through the
  accounting channel so the communication results stay exact.
* :meth:`reveal` — client-side decryption of the winners (the paper's
  clients fetch the decryption keys from the data owner).
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from collections import deque
from dataclasses import replace

from repro.crypto.damgard_jurik import DamgardJurik
from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import PaillierKeypair
from repro.crypto.prf import random_key
from repro.crypto.prp import Prp
from repro.crypto.rng import SecureRandom
from repro.exceptions import DataError, QueryError
from repro.obs.metrics import REGISTRY
from repro.protocols.base import S1Context, _wire_clouds, owned_context
from repro.core.engine import build_engine
from repro.core.params import SystemParams
from repro.core.relation import EncryptedRelation
from repro.core.results import QueryConfig, QueryResult
from repro.core.token import Token
from repro.structures.ehl import EhlFactory
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import EncryptedItem, weight_entries


# Per-engine query cost instruments (observation only — recorded after
# the engine run, off every protocol path).
_QUERY_SECONDS = REGISTRY.histogram(
    "repro_query_seconds",
    "End-to-end engine-run wall-clock per query.",
    labelnames=("engine",),
)
_QUERY_ROUNDS = REGISTRY.histogram(
    "repro_query_rounds",
    "Physical round-trips per query.",
    labelnames=("engine",),
    buckets=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000),
)


class SecTopK:
    """The secure top-k query scheme."""

    def __init__(self, params: SystemParams | None = None, seed: int | None = None):
        self.params = params or SystemParams.paper()
        self._rng = SecureRandom(seed)
        self.keypair = PaillierKeypair.generate(self.params.key_bits, self._rng.spawn("keygen"))
        self.public_key = self.keypair.public_key
        self.dj = DamgardJurik(self.public_key, s=2)
        self.encoder = SignedEncoder(
            self.public_key.n,
            score_bits=self.params.score_bits,
            blind_bits=self.params.blind_bits,
        )
        self._ehl_master = random_key(self._rng.spawn("ehl-master"))
        self._prp_key = self._rng.spawn("prp").randbytes(32)
        # S1's own keypair for blinding-seed transport (Algorithm 7's pk');
        # generated once and reused across protocol invocations.  Its
        # modulus is oversized so that SecFilter's combined unblinding
        # values (products/sums of residues mod N) never wrap under pk'.
        self._s1_keypair = PaillierKeypair.generate(
            2 * self.params.key_bits + 16, self._rng.spawn("s1-own")
        )
        self._query_history: set[str] = set()
        # Per-relation halting-depth observations (also L1 leakage —
        # every query's halting depth is declared in HD), feeding the
        # warm-start hint.  Bounded so a long-lived scheme never grows
        # with traffic; recent depths dominate anyway.
        self._depth_history: dict[str, deque] = {}
        # Query-pattern state is deliberately cross-query (it IS the L1
        # leakage), but concurrent server sessions must update it safely.
        self._history_lock = threading.Lock()
        # Monotonic salt for context randomness streams: every context
        # this scheme wires up draws independent randomness, no matter
        # how many servers/sessions share the scheme.
        self._ctx_counter = itertools.count()

    # ------------------------------------------------------------------
    # Pickling (process-mode execute_many ships the scheme to workers).
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_history_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._history_lock = threading.Lock()

    def record_query_patterns(self, tokens) -> None:
        """Fold query fingerprints into the cross-query history.

        Process-mode ``execute_many`` workers hold forked copies of this
        scheme, so the parent folds the batch back in afterwards to keep
        the authoritative query-pattern history (the L1 leakage) exact.
        """
        with self._history_lock:
            for token in tokens:
                self._query_history.add(token.fingerprint())

    def query_pattern_snapshot(self) -> frozenset:
        """A frozen copy of the query-pattern history (fingerprints)."""
        with self._history_lock:
            return frozenset(self._query_history)

    def reset_query_history(self, patterns) -> None:
        """Replace the history wholesale.

        Process-mode workers install each request's sequential-equivalent
        prior before querying; their scheme copies are per-task scratch.
        """
        with self._history_lock:
            self._query_history = set(patterns)

    #: Halting-depth observations retained per relation (recent wins).
    DEPTH_HISTORY_SIZE = 64

    def record_halting_depth(self, relation_id: str, depth: int) -> None:
        """Fold one halting-depth observation into the warm-start history.

        Halting depths are L1 leakage (the ``HD`` function of Section 9),
        so remembering them — like the query-pattern set above — reveals
        nothing new.  Inline queries record here directly; process-mode
        ``execute_many`` folds its workers' depths back through the
        parent (worker scheme copies are per-task scratch).
        """
        with self._history_lock:
            history = self._depth_history.get(relation_id)
            if history is None:
                history = self._depth_history[relation_id] = deque(
                    maxlen=self.DEPTH_HISTORY_SIZE
                )
            history.append(depth)

    def observe_query_pattern(self, token) -> bool:
        """Fold one token into the query-pattern history; return whether
        it was a repeat.

        This is the L1 ``QP`` observation a fresh run of the token would
        have recorded — the server's cache layer calls it when serving a
        result without running the query (prefix hits included), so the
        leakage it reports stays exactly what a fresh run would leak.
        """
        fingerprint = token.fingerprint()
        with self._history_lock:
            repeated = fingerprint in self._query_history
            self._query_history.add(fingerprint)
        return repeated

    def export_depth_history(self, relation_id: str) -> list[int]:
        """This relation's halting-depth observations, oldest first.

        The server's ``state_dir`` persistence spills these next to the
        daemon's registrations; the depths are L1 leakage (``HD``), so
        the spill reveals nothing the declared profile does not.
        """
        with self._history_lock:
            history = self._depth_history.get(relation_id)
            return list(history) if history else []

    def import_depth_history(self, relation_id: str, depths) -> None:
        """Restore spilled halting-depth observations (append order)."""
        with self._history_lock:
            history = self._depth_history.get(relation_id)
            if history is None:
                history = self._depth_history[relation_id] = deque(
                    maxlen=self.DEPTH_HISTORY_SIZE
                )
            for depth in depths:
                history.append(int(depth))

    def drop_depth_history(self, relation_id: str) -> None:
        """Forget one relation's warm-start history (mutation hook: a
        version bump changes what any halting depth means)."""
        with self._history_lock:
            self._depth_history.pop(relation_id, None)

    def halting_depth_hint(self, relation_id: str) -> int | None:
        """The earliest depth history says a query on this relation may
        halt (``None`` with no observations yet).

        The *minimum* observed depth is the safe anchor: a check point
        below it has never been seen to halt, so skipping those rounds
        costs nothing on history-shaped workloads — and even a query
        that *would* have halted earlier still returns a correct top-k,
        just from a deeper scan (exactly the ``"batch"`` variant's
        sparse-check contract).
        """
        with self._history_lock:
            history = self._depth_history.get(relation_id)
            return min(history) if history else None

    def context_namespace(self) -> str:
        """Reserve a scheme-wide unique namespace for caller-built salts.

        Servers prefix their per-request salts with one of these so two
        servers sharing a scheme never reuse a randomness stream.  Drawn
        from the same counter as ``make_clouds``' automatic salts, so
        the two schemes of uniqueness can never collide either.
        """
        return f"ns{next(self._ctx_counter)}"

    # ------------------------------------------------------------------
    # Enc (Algorithm 2)
    # ------------------------------------------------------------------

    def _ehl_factory(self, rng: SecureRandom):
        if self.params.ehl_variant == "plus":
            return EhlPlusFactory(
                self.public_key,
                self._ehl_master,
                n_hashes=self.params.ehl_hashes,
                rng=rng,
            )
        return EhlFactory(
            self.public_key,
            self._ehl_master,
            table_size=self.params.ehl_table_size,
            n_hashes=self.params.ehl_hashes,
            rng=rng,
        )

    def encrypt(
        self,
        rows: list[list[int]],
        object_ids: list[int] | None = None,
        version: int = 0,
        stream: str = "enc",
    ) -> EncryptedRelation:
        """Encrypt a relation into ``ER`` (Algorithm 2).

        ``object_ids`` names each row explicitly (default: the row
        index).  The mutation layer relies on this: a relation grown by
        inserts carries monotonic object ids that are *not* dense row
        indices, and rebuilding it from scratch with the same ids must
        reproduce the same sorted order — ties break by object id on
        both paths.  ``version`` seeds the relation's mutation counter.

        ``stream`` labels the randomness stream this encryption draws
        (deterministic schemes only; see :meth:`SecureRandom.spawn`).
        The default ``"enc"`` is the data owner's one-time upload
        stream.  Callers that encrypt *more than one plaintext relation*
        under one scheme — the sliding-window watch path — MUST pass a
        label that is unique per plaintext content: reusing one stream
        across different plaintexts reuses Paillier randomness at
        aligned positions, letting S1 divide ciphertexts pairwise and
        brute-force score deltas.  A content-derived label keeps the
        complementary property that re-encrypting identical content
        yields identical ciphertexts.
        """
        if not rows:
            raise DataError("relation is empty")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise DataError("ragged relation")
        if object_ids is None:
            object_ids = list(range(len(rows)))
        elif len(object_ids) != len(rows):
            raise DataError("object_ids/rows length mismatch")
        elif len(set(object_ids)) != len(object_ids):
            raise DataError("duplicate object id")
        for row in rows:
            for value in row:
                self.encoder.check_score(value)

        rng = self._rng.spawn(stream)
        factory = self._ehl_factory(rng)
        prp = Prp(self._prp_key, width)
        self._attribute_width = width

        lists: dict[int, list[EncryptedItem]] = {}
        for attribute in range(width):
            ranked = sorted(
                range(len(rows)),
                key=lambda o: (-rows[o][attribute], object_ids[o]),
            )
            entries = [
                EncryptedItem(
                    ehl=factory.encode(object_ids[o]),
                    score=self.public_key.encrypt(rows[o][attribute], rng),
                    record=self.public_key.encrypt(object_ids[o], rng),
                )
                for o in ranked
            ]
            lists[prp.forward(attribute)] = entries
        return EncryptedRelation(
            lists=lists,
            n_objects=len(rows),
            n_attributes=width,
            ehl_variant=self.params.ehl_variant,
            version=version,
        )

    def attribute_list_names(self) -> list[int]:
        """Permuted list name ``P_K(i)`` of every attribute, in order.

        The mutation layer maintains the encrypted sorted lists
        incrementally and needs to know which permuted name holds which
        attribute — knowledge only the data owner (this scheme) has.
        """
        width = getattr(self, "_attribute_width", None)
        if width is None:
            raise QueryError("encrypt a relation before resolving list names")
        prp = Prp(self._prp_key, width)
        return [prp.forward(a) for a in range(width)]

    # ------------------------------------------------------------------
    # Token (Section 7)
    # ------------------------------------------------------------------

    def token(
        self, attributes: list[int], k: int, weights: list[int] | None = None
    ) -> Token:
        """Build a query token for the client (Section 7).

        The PRP domain is the attribute width of the most recently
        encrypted relation (the client learns it together with the key
        material).
        """
        if not attributes:
            raise QueryError("query selects no attributes")
        width = getattr(self, "_attribute_width", None)
        if width is None:
            raise QueryError("encrypt a relation before generating tokens")
        for a in attributes:
            if not 0 <= a < width:
                raise QueryError(f"attribute {a} out of range")
        prp = Prp(self._prp_key, width)
        return Token(
            permuted_lists=tuple(prp.forward(a) for a in attributes),
            k=k,
            weights=tuple(weights) if weights else (),
        )

    # ------------------------------------------------------------------
    # SecQuery (Algorithm 3)
    # ------------------------------------------------------------------

    def make_clouds(
        self,
        transport: str = "inprocess",
        label: str = "",
        salt: str | None = None,
        compute=None,
        rtt_ms: float = 0.0,
        relation: EncryptedRelation | None = None,
    ) -> S1Context:
        """Deprecated public spelling of the context wiring.

        Prefer :func:`repro.connect` — the :class:`~repro.client.TopKClient`
        façade owns context lifecycles, job scheduling and progress
        streaming.  This method remains for existing callers and tests.
        """
        warnings.warn(
            "SecTopK.make_clouds() is a legacy entry point; use "
            "repro.connect(...) / TopKClient for the supported client surface",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._make_context(
            transport=transport,
            label=label,
            salt=salt,
            compute=compute,
            rtt_ms=rtt_ms,
            relation=relation,
        )

    def _make_context(
        self,
        transport: str = "inprocess",
        label: str = "",
        salt: str | None = None,
        compute=None,
        rtt_ms: float = 0.0,
        relation: EncryptedRelation | None = None,
        on_event=None,
        control=None,
        session_label: str | None = None,
        transport_wrap=None,
    ) -> S1Context:
        """Wire up a fresh S1 context and S2 crypto cloud.

        ``transport`` selects the backend (``"inprocess"`` or
        ``"threaded"``) or names a remote S2 daemon
        (``"tcp://host:port"`` / ``"unix:///path"``): the remote path
        opens a multiplexed daemon session provisioned with this
        scheme's key material and the same spawned S2 randomness stream
        a local cloud would hold, so remote queries replay local ones
        bit-for-bit.  ``relation`` (optional) scopes the daemon-side
        registration to that relation's id, letting repeated queries
        against a registered relation skip the key/param upload
        entirely.  Each context's randomness streams are salted
        with a scheme-wide monotonic counter (plus the optional
        ``label``), so contexts created from one scheme — by however
        many servers or sessions share it — never repeat blinding or
        permutation draws.  Still deterministic for a seeded scheme:
        the N-th context of an identically-seeded scheme draws the same
        stream.

        An explicit ``salt`` bypasses the counter and is used verbatim —
        the caller then guarantees uniqueness.  This is what lets the
        server's ``execute_many`` assign each request a deterministic
        stream regardless of which worker thread or *process* serves it
        (the counter lives in this process and cannot coordinate forks).

        ``compute`` attaches a :class:`~repro.crypto.parallel.ComputePool`
        to the crypto cloud; ``rtt_ms`` adds simulated link latency.
        ``on_event`` / ``control`` become the context's progress and
        job-control hooks (observations only — a context with hooks is
        transcript-identical to one without).
        """
        if salt is None:
            salt = f"{label}#{next(self._ctx_counter)}"
        return _wire_clouds(
            self.keypair,
            self.dj,
            self.encoder,
            transport,
            self._rng.spawn("s1" + salt),
            self._rng.spawn("s2" + salt),
            compute=compute,
            rtt_ms=rtt_ms,
            relation_id=relation.relation_id() if relation is not None else None,
            session_label=session_label if session_label is not None else salt,
            on_event=on_event,
            control=control,
            transport_wrap=transport_wrap,
        )

    def query(
        self,
        relation: EncryptedRelation,
        token: Token,
        config: QueryConfig | None = None,
        ctx: S1Context | None = None,
        shard_executor=None,
        shard_placement: tuple[str, ...] | None = None,
    ) -> QueryResult:
        """Process a top-k query on the encrypted relation.

        A caller-provided ``ctx`` stays open (the caller owns its
        transport); a default one is closed before returning.  When the
        query itself fails, a dead transport's secondary close error is
        suppressed so the original failure surfaces undisturbed.

        ``shard_executor`` (optional) is where a sharded query
        (``config.shards >= 2``) runs its shard workers' slice
        preparation and window assembly; without one the shard fan-out
        runs inline — same transcript, no overlap.  The
        :class:`~repro.server.topk_server.TopKServer` scheduler passes
        its shard-worker pool here.

        ``shard_placement`` (optional) maps a sharded query's plan
        slices onto remote shard-worker daemons
        (:mod:`repro.server.shard_service`) instead of local threads:
        shard ``s`` is served by address ``s % len(placement)``.  The
        remote scan is transcript-identical to the local one (the shard
        link is S1-internal and never touches channel accounting).
        """
        config = config or QueryConfig()
        if ctx is not None:
            return self._query(
                relation, token, config, ctx, shard_executor, shard_placement
            )
        with owned_context(self._make_context()) as ctx:
            return self._query(
                relation, token, config, ctx, shard_executor, shard_placement
            )

    def _query(
        self,
        relation: EncryptedRelation,
        token: Token,
        config: QueryConfig,
        ctx: S1Context,
        shard_executor=None,
        shard_placement: tuple[str, ...] | None = None,
    ) -> QueryResult:
        # This query's slice of the (possibly shared, session-long)
        # leakage log and channel accounting starts here; S2 events land
        # in-position during the engine run on every transport, and the
        # result's channel_stats is the per-query delta so a session's
        # second query does not report cumulative traffic.
        events_start = len(ctx.leakage.events)
        stats_start = ctx.channel.snapshot()
        # L1 leakage: query pattern + (later) halting depth.
        fingerprint = token.fingerprint()
        with self._history_lock:
            repeated = fingerprint in self._query_history
            self._query_history.add(fingerprint)
        ctx.leakage.record("S1", "SecQuery", "query_pattern", repeated)

        relation_id = relation.relation_id()
        if config.warm_start and config.min_check_depth is None:
            # History-driven warm start: anchor the engine's check grid
            # at the earliest halting depth this relation has shown
            # (itself L1 leakage, recorded below).  Resolved here — not
            # at the server — so sessions and bare scheme.query calls
            # warm-start identically; an explicit min_check_depth wins.
            hint = self.halting_depth_hint(relation_id)
            if hint is not None and hint > 1:
                config = replace(config, min_check_depth=hint)

        shard_view = None
        if config.effective_shards() >= 2:
            # Sharded scan: the query lists live as contiguous depth
            # slices on shard workers; the engine consumes the fan-in
            # merged windows.  Value-identical items in scan order keep
            # the S2-visible transcript bit-identical to the unsharded
            # path below.  (Function-level import: the sharding layer
            # lives with the server, which imports this module.)
            from repro.server.sharding import ShardedQueryLists

            shard_view = ShardedQueryLists(
                relation,
                token,
                config.effective_shards(),
                window=config.check_every(),
                executor=shard_executor,
                placement=shard_placement,
            )
            enc_lists = shard_view
        else:
            # weight_entries is shared with the shard workers, so the
            # two paths can never drift apart on the weighting.
            enc_lists = [
                weight_entries(relation.list_for(name), weight)
                for name, weight in zip(
                    token.permuted_lists, token.effective_weights()
                )
            ]

        engine = build_engine(
            ctx,
            self._s1_keypair,
            enc_lists,
            token.k,
            config,
            config.compare_method or self.params.compare_method,
            config.sort_method or self.params.sort_method,
        )
        run_start = time.perf_counter()
        items, halting_depth = engine.run()
        ctx.leakage.record("S1", "SecQuery", "halting_depth", halting_depth)
        self.record_halting_depth(relation_id, halting_depth)
        channel_stats = ctx.channel.snapshot().delta(stats_start)
        _QUERY_SECONDS.labels(engine=config.engine).observe(
            time.perf_counter() - run_start
        )
        _QUERY_ROUNDS.labels(engine=config.engine).observe(channel_stats.rounds)
        return QueryResult(
            items=items,
            halting_depth=halting_depth,
            channel_stats=channel_stats,
            depth_seconds=engine.depth_seconds,
            config=config,
            leakage_events=list(ctx.leakage.events[events_start:]),
            shard_stats=shard_view.shard_stats() if shard_view is not None else None,
        )

    # ------------------------------------------------------------------
    # Client-side reveal
    # ------------------------------------------------------------------

    def reveal(self, result: QueryResult) -> list[tuple[int, int]]:
        """Decrypt the winners into ``(object_id, score)`` pairs.

        The client obtains the decryption key from the data owner
        (Section 3.1); this method plays both roles.
        """
        out = []
        for item in result.items:
            if item.record is None:
                raise QueryError("result items carry no record ciphertexts")
            object_id = self.keypair.secret_key.decrypt(item.record)
            score = self.keypair.secret_key.decrypt_signed(item.worst)
            out.append((object_id, score))
        return out

"""The multi-query server front-end (see ARCHITECTURE.md, layer 3).

:class:`~repro.server.topk_server.TopKServer` holds one encrypted
relation plus the S2 connection recipe and schedules
:class:`~repro.server.jobs.QueryJob`\\ s from a bounded queue —
submitted directly or through the :mod:`repro.client` façade — next to
long-lived isolated :class:`~repro.server.topk_server.QuerySession`\\ s,
against an in-process S2 or a standalone
:class:`~repro.server.s2_service.S2Service` daemon reached by socket
address (see ARCHITECTURE.md, deployment layer).

:mod:`repro.server.sharding` splits a relation's sorted lists into
contiguous depth slices scanned by shard workers behind
``TopKServer(shards=N)`` — transcript-identical to the single-worker
scan (see ARCHITECTURE.md, sharding).

The reuse layer (see ARCHITECTURE.md, reuse layer) lives here too:
:mod:`repro.server.query_cache` serves repeat queries with zero S2
rounds under the paper's L1 ``query_pattern`` leakage, and
:mod:`repro.server.rendezvous` coalesces concurrent jobs' depth-scan
rounds into shared physical round-trips.
"""

from repro.server.jobs import JobStatus, QueryJob, WatchJob, WatchSummary
from repro.server.mutations import MutableRelation, MutationResult
from repro.server.query_cache import CacheStats, QueryCache
from repro.server.rendezvous import ScanRendezvous
from repro.server.sharding import ShardPlan
from repro.server.topk_server import QuerySession, TopKServer

__all__ = [
    "CacheStats",
    "JobStatus",
    "MutableRelation",
    "MutationResult",
    "QueryCache",
    "QueryJob",
    "QuerySession",
    "S2Service",
    "ScanRendezvous",
    "ShardPlan",
    "ShardService",
    "TopKServer",
    "WatchJob",
    "WatchSummary",
]


def __getattr__(name: str):
    # Lazy so `python -m repro.server.s2_service` (and the shard daemon)
    # does not import the daemon module twice (once via this package,
    # once as __main__).
    if name == "S2Service":
        from repro.server.s2_service import S2Service

        return S2Service
    if name == "ShardService":
        from repro.server.shard_service import ShardService

        return ShardService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

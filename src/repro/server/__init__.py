"""The multi-query server front-end (see ARCHITECTURE.md, layer 3).

:class:`~repro.server.topk_server.TopKServer` holds one encrypted
relation plus the S2 connection recipe and serves many isolated
:class:`~repro.server.topk_server.QuerySession`\\ s, sequentially or
concurrently.
"""

from repro.server.topk_server import QuerySession, TopKServer

__all__ = ["QuerySession", "TopKServer"]

"""Query jobs: the asynchronous unit of work of the client API.

A :class:`QueryJob` is the future-like handle :meth:`TopKServer.submit
<repro.server.topk_server.TopKServer.submit>` returns: it resolves to a
:class:`~repro.core.results.QueryResult` (:meth:`QueryJob.result`),
supports cooperative cancellation (:meth:`QueryJob.cancel`) and per-job
deadlines, and streams typed :mod:`repro.events` progress events
(:meth:`QueryJob.events`) while the query runs.

Cancellation and deadlines are *cooperative*: the job's
:class:`JobControl` is checked at every communication round boundary
(see :class:`~repro.net.batching.RoundBatcher`) and at every engine
depth, so an abort never interrupts a round mid-flight — the transport
and the S2 side stay consistent, and the server keeps serving
subsequent jobs.  A job executed on a worker *process*
(``execute_many(mode="process")``) honours cancellation only while it
is still queued; its deadline, if any, travels with it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.exceptions import JobCancelled, JobTimeout
from repro.events import (
    JobFinished,
    JobQueued,
    JobStarted,
    PoolBatch,
    ProgressEvent,
    RoundTrip,
    S2Progress,
    SpanClosed,
    TopKChanged,
)
from repro.obs.metrics import REGISTRY
from repro.obs.trace import JobTrace

_QUEUE_WAIT = REGISTRY.histogram(
    "repro_scheduler_queue_wait_seconds",
    "Seconds a job waited in the bounded queue before starting.",
)

#: How many swallowed listener exceptions a job retains (the first N; a
#: persistently broken listener fails once per event, and keeping every
#: traceback alive would grow memory with the length of the scan).
MAX_RECORDED_LISTENER_ERRORS = 32


class JobStatus:
    """Lifecycle states of a :class:`QueryJob`."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"

    #: States from which the job will never move again.
    TERMINAL = frozenset({DONE, CANCELLED, FAILED})


class JobControl:
    """Cancellation flag + absolute deadline, checked at round boundaries.

    The S1 context holds a reference and calls :meth:`check` before
    every round flush; raising here is what aborts the query at the
    next safe point.  The check fires *before* the round enters the
    scan rendezvous (when coalescing is on), and ``TopKServer.close()``
    additionally fails the rendezvous itself — so a job parked at the
    coalescing barrier surfaces :class:`~repro.exceptions.JobCancelled`
    rather than hanging on peers that will never arrive.
    """

    __slots__ = ("_cancelled", "_deadline")

    def __init__(self, timeout: float | None = None):
        self._cancelled = threading.Event()
        self._deadline = None if timeout is None else time.monotonic() + timeout

    def cancel(self) -> None:
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def deadline_expired(self) -> bool:
        return self._deadline is not None and time.monotonic() > self._deadline

    @property
    def remaining(self) -> float | None:
        """Seconds until the deadline (``None`` = no deadline)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def check(self) -> None:
        """Raise if the job should stop at this boundary."""
        if self._cancelled.is_set():
            raise JobCancelled("job cancelled at a round boundary")
        if self.deadline_expired:
            raise JobTimeout("job deadline exceeded at a round boundary")


class QueryJob:
    """Future-like handle for one submitted top-k query."""

    def __init__(self, job_id: int, token, config, timeout: float | None = None):
        self.job_id = job_id
        self.token = token
        self.config = config
        self._control = JobControl(timeout)
        self._status = JobStatus.PENDING
        self._result = None
        self._error: BaseException | None = None
        self._done = threading.Event()
        self._events: list[ProgressEvent] = []
        self._events_cond = threading.Condition()
        self._callbacks: list = []
        self._listeners: list = []
        self._listener_errors: list[BaseException] = []
        # Whether a scheduler worker actually began executing the job
        # (batch history accounting distinguishes attempted from
        # never-started jobs).
        self._attempted = False
        # Installed by the scheduler: how this job actually executes.
        self._runner = None
        #: Monotonic-clock span timeline of this job (queued, run,
        #: per-round laps, pool/S2 sub-spans).  Frozen onto the result
        #: at completion; purely observational — never consulted by the
        #: protocol.
        self.trace = JobTrace()

    # -- observation ------------------------------------------------------

    @property
    def status(self) -> str:
        """Current :class:`JobStatus` value."""
        return self._status

    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._done.is_set()

    def result(self, timeout: float | None = None):
        """Block for the :class:`~repro.core.results.QueryResult`.

        ``timeout`` bounds the *wait* only (the job keeps running; a
        ``TimeoutError`` here is not a job failure).  A cancelled job
        raises :class:`~repro.exceptions.JobCancelled`, a deadline-hit
        job :class:`~repro.exceptions.JobTimeout`, and a failed job its
        original error.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} not finished within {timeout}s (still "
                f"{self._status})"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block for the job's error (``None`` when it succeeded)."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} not finished within {timeout}s")
        return self._error

    # -- cancellation -----------------------------------------------------

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Returns ``False`` when the job already reached a terminal state
        (too late), ``True`` otherwise — the job will stop at the next
        round boundary (or before it ever starts, if still queued).
        """
        if self._done.is_set():
            return False
        self._control.cancel()
        return True

    # -- event stream -----------------------------------------------------

    def events(self):
        """Iterate the job's progress events, live.

        Yields every recorded event in order, blocking for new ones
        while the job runs; the stream ends after the terminal
        :class:`~repro.events.JobFinished` event.  Multiple independent
        iterations are allowed (each replays from the start).
        """
        index = 0
        while True:
            with self._events_cond:
                while index >= len(self._events) and not self._done.is_set():
                    self._events_cond.wait()
                if index >= len(self._events):
                    return
                event = self._events[index]
            index += 1
            yield event

    def add_listener(self, callback) -> None:
        """Register a push listener: ``callback(event)`` runs for every
        subsequent progress event, on the thread that produced it (the
        scheduler worker, inside the round loop).

        Listener exceptions are swallowed and recorded in
        :attr:`listener_errors` (the first
        :data:`MAX_RECORDED_LISTENER_ERRORS`) — a broken listener can
        observe a query, never corrupt it.  Prefer :meth:`events` for
        consumption at your own pace; listeners are for low-latency
        taps (metrics, logs).
        """
        with self._events_cond:
            self._listeners.append(callback)

    @property
    def listener_errors(self) -> list[BaseException]:
        """Exceptions raised by push listeners, in occurrence order."""
        with self._events_cond:
            return list(self._listener_errors)

    # -- scheduler-side hooks ---------------------------------------------

    def _record_event(self, event: ProgressEvent) -> None:
        # Derive trace spans *before* touching the (non-reentrant)
        # condition: RoundTrip laps the current round span, pool/S2
        # progress frames land as anchored sub-spans.
        derived = None
        if isinstance(event, RoundTrip):
            span = self.trace.lap("round")
            if span is not None:
                derived = SpanClosed(name=span.name, seconds=span.seconds)
        elif isinstance(event, PoolBatch):
            self.trace.add(f"pool:{event.op}", event.seconds)
        elif isinstance(event, S2Progress):
            self.trace.add("s2", event.seconds)
        with self._events_cond:
            self._events.append(event)
            self._events_cond.notify_all()
            listeners = list(self._listeners)
        self._deliver(listeners, event)
        if derived is not None:
            self._record_event(derived)

    def _deliver(self, listeners: list, event: ProgressEvent) -> None:
        """Push one event to listeners; swallow-and-record failures (the
        caller may be the round loop, which must never see them)."""
        for callback in listeners:
            try:
                callback(event)
            except Exception as exc:
                with self._events_cond:
                    if len(self._listener_errors) < MAX_RECORDED_LISTENER_ERRORS:
                        self._listener_errors.append(exc)

    def _mark_queued(self) -> None:
        self.trace.begin("queued")
        self._record_event(JobQueued(job_id=self.job_id))

    def _start(self) -> bool:
        """Transition to RUNNING; ``False`` when the job must not run
        (cancelled or expired while queued — finished here instead)."""
        if self._control.cancelled:
            self._finish_error(
                JobCancelled("job cancelled before it started"),
                JobStatus.CANCELLED,
            )
            return False
        if self._control.deadline_expired:
            self._finish_error(
                JobTimeout("job deadline expired while queued"), JobStatus.FAILED
            )
            return False
        self._status = JobStatus.RUNNING
        self._attempted = True
        queued = self.trace.end("queued")
        if queued is not None:
            _QUEUE_WAIT.observe(queued.seconds)
        self.trace.begin("run")
        self.trace.begin("round")
        self._record_event(JobStarted(job_id=self.job_id))
        if queued is not None:
            self._record_event(SpanClosed(name=queued.name, seconds=queued.seconds))
        return True

    def _finish_result(self, result) -> None:
        self._result = result
        self._finish(JobStatus.DONE)

    def _close_run_span(self) -> None:
        """End the lifecycle spans (tail of an open round lap is not a
        round — discard it) and emit the run span's closure."""
        self.trace.discard("round")
        run = self.trace.end("run")
        if run is not None:
            self._record_event(SpanClosed(name=run.name, seconds=run.seconds))
        if self._result is not None:
            try:
                self._result.trace = self.trace.freeze()
                vars(self._result).pop("stats", None)
            except Exception:
                pass

    def _finish_error(self, error: BaseException, status: str | None = None) -> None:
        self._error = error
        if status is None:
            if isinstance(error, JobCancelled):
                status = JobStatus.CANCELLED
            else:
                status = JobStatus.FAILED
        self._finish(status)

    def _finish(self, status: str) -> None:
        if status not in JobStatus.TERMINAL:
            raise ValueError(f"not a terminal job status: {status!r}")
        self._close_run_span()
        self._status = status
        event = JobFinished(job_id=self.job_id, status=status)
        with self._events_cond:
            self._events.append(event)
            self._done.set()
            self._events_cond.notify_all()
            listeners = list(self._listeners)
        self._deliver(listeners, event)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _add_done_callback(self, callback) -> None:
        """Internal: run ``callback(job)`` once terminal (immediately if
        already done).  Used by the server's windowed batch execution."""
        run_now = False
        with self._events_cond:
            if self._done.is_set():
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback(self)


@dataclass
class WatchSummary:
    """What a gracefully stopped :class:`WatchJob` resolves to."""

    evaluations: int
    """Top-k evaluations actually run (idle wakeups don't count)."""

    changes: int
    """:class:`~repro.events.TopKChanged` events emitted."""

    last_version: int | None
    """Relation version of the last evaluation (``None``: none ran)."""

    last_top_k: tuple | None
    """The last emitted winners — ``(object_id, score)`` pairs."""

    trace: object | None = None
    """Frozen job trace, installed by the job machinery at completion."""


class WatchJob(QueryJob):
    """A long-lived continuous top-k job.

    Scheduled through the same bounded queue and worker machinery as a
    :class:`QueryJob`, but instead of resolving after one query it loops:
    evaluate the top-k, emit a :class:`~repro.events.TopKChanged` event
    whenever the revealed winning set differs from the previous one,
    then sleep until the server signals a mutation (:meth:`notify`), the
    deadline nears, or the watch is ended.

    Two ways to end it:

    * :meth:`stop` — graceful; the loop exits at the next wakeup and the
      job resolves ``DONE`` with a :class:`WatchSummary`;
    * :meth:`cancel` — cooperative abort (also what ``TopKServer.close``
      uses to drain live watches); the job terminates ``CANCELLED``, at
      a round boundary even mid-evaluation.

    ``window`` selects the sliding-insert mode: each evaluation runs
    over the last ``window`` live rows in insertion order instead of the
    whole relation (``k`` is clamped to the window's size).
    """

    def __init__(self, job_id: int, token, config,
                 timeout: float | None = None, window: int | None = None):
        super().__init__(job_id, token, config, timeout)
        self.window = window
        #: Live count of evaluations run so far (monotonic; written by
        #: the watch runner, so a reader may briefly lag — the
        #: :class:`WatchSummary` carries the authoritative final value).
        self.evaluations = 0
        self._wake = threading.Event()
        self._stopped = False
        #: Relation id of the most recent sliding-window encryption
        #: (windowed mode only).  The watch runner re-keys the daemon
        #: registration and drops local per-relation state whenever it
        #: changes, so a long-lived watch holds at most one window
        #: relation's worth of remote and local bookkeeping.
        self._window_relation_key: str | None = None

    def notify(self) -> None:
        """Wake the watch loop (the server calls this on every mutation)."""
        self._wake.set()

    def stop(self) -> None:
        """End the watch gracefully: it resolves with its summary."""
        self._stopped = True
        self._wake.set()

    def cancel(self) -> bool:
        cancelled = super().cancel()
        self._wake.set()
        return cancelled

    def changes(self):
        """Iterate only the :class:`~repro.events.TopKChanged` events,
        live (same semantics as :meth:`QueryJob.events`)."""
        for event in self.events():
            if isinstance(event, TopKChanged):
                yield event

    def summary(self, timeout: float | None = None) -> WatchSummary:
        """Block for the watch's :class:`WatchSummary` (alias of
        :meth:`result` with the watch-shaped return type)."""
        return self.result(timeout)

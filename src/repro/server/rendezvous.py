"""Shared depth-scan coalescing: one round-trip for N concurrent jobs.

The paper's query cost is dominated by per-depth S1↔S2 round-trips.
``RoundBatcher`` already coalesces one *job's* per-depth requests into a
single round; this module coalesces across *jobs*: concurrent scans of
the same relation that reach a round boundary within a small window
rendezvous, put all their request frames in flight together (the
transports' split-phase ``begin_exchange``/``finish_exchange``), and pay
~one physical round-trip instead of N.

Design constraints that shape the implementation:

* **Per-job transcripts must stay bit-identical to solo runs.**  Every
  job keeps its own transport/session, codec, crypto cloud and channel
  accounting; the rendezvous only changes *when* requests go out, never
  what they contain.  Replies demultiplex naturally (queue pair per
  threaded transport, session-tagged frames per socket).
* **Latency is shared, not multiplied.**  A group's leader drives all
  members' ``begin`` phases, then all ``finish`` phases; simulated link
  latency (:class:`~repro.net.transport.LatencyTransport`) is slept
  exactly once per group, at the max of the members' RTTs — a group of
  one therefore costs exactly what a plain exchange costs.
* **Nothing may hang at shutdown.**  :meth:`ScanRendezvous.close` fails
  the unsealed round with :class:`~repro.exceptions.JobCancelled` and
  rejects later exchanges, so a job parked at the barrier surfaces a
  clean cancellation instead of waiting forever.

The window only opens when at least two jobs are *enrolled* (a job
enrolls for the duration of its run): a lone scan never waits.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import JobCancelled
from repro.net.transport import Transport
from repro.obs.metrics import REGISTRY

_GROUP_SIZE = REGISTRY.histogram(
    "repro_coalesce_group_size",
    "Jobs sharing one coalesced round-trip (1 = round went out solo).",
    buckets=(1, 2, 4, 8, 16),
)


class _Member:
    """One job's participation in one coalesced round."""

    __slots__ = ("transport", "messages", "reply", "error")

    def __init__(self, transport, messages):
        self.transport = transport
        self.messages = messages
        self.reply = None
        self.error: BaseException | None = None


class _Round:
    """One rendezvous round: members joining until sealed, then driven
    to completion by its leader (the first arriver)."""

    __slots__ = ("members", "sealed", "seal_event", "done", "group_size")

    def __init__(self):
        self.members: list[_Member] = []
        self.sealed = False
        self.seal_event = threading.Event()
        self.done = threading.Event()
        self.group_size = 1


class ScanRendezvous:
    """Relation-scoped round rendezvous for a :class:`TopKServer`.

    A server holds one relation, so one rendezvous per server is the
    "relation-keyed" rendezvous; ``window_ms`` is how long the first
    arriver of a round holds the door for concurrent jobs (a few ms —
    enough for jobs separated by scheduling jitter, far below an RTT).
    """

    def __init__(self, window_ms: float):
        if window_ms <= 0:
            raise ValueError("rendezvous window must be positive")
        self.window_ms = window_ms
        self._lock = threading.Lock()
        self._enrolled = 0
        self._current: _Round | None = None
        self._closed = False

    # -- enrollment ------------------------------------------------------

    def enroll(self) -> None:
        """A job announces it will be exchanging rounds (run start)."""
        with self._lock:
            self._enrolled += 1

    def withdraw(self) -> None:
        """Undo one :meth:`enroll` (run end, success or failure).

        If the departing job was what a waiting leader counted on, the
        leader's window simply expires — withdrawal never strands a
        round.
        """
        with self._lock:
            self._enrolled -= 1

    # -- the coalesced exchange ------------------------------------------

    def exchange(self, transport: Transport, messages: list) -> tuple[list, bool]:
        """One round-trip through the rendezvous.

        Returns ``(replies, shared)`` where ``shared`` says whether the
        round was coalesced with at least one other job.  With a single
        enrolled job this is a plain ``transport.exchange`` — zero added
        latency, bit-identical transcript.
        """
        with self._lock:
            if self._closed:
                raise JobCancelled("server closed the scan rendezvous")
            if self._enrolled <= 1:
                rnd = None
            else:
                rnd = self._current
                if rnd is None or rnd.sealed:
                    rnd = _Round()
                    self._current = rnd
                    leader = True
                else:
                    leader = False
                member = _Member(transport, messages)
                rnd.members.append(member)
                if len(rnd.members) >= self._enrolled:
                    # Everyone who could arrive has arrived: no reason
                    # to hold the door for the rest of the window.
                    rnd.seal_event.set()
        if rnd is None:
            _GROUP_SIZE.observe(1)
            return transport.exchange(messages), False
        if leader:
            rnd.seal_event.wait(self.window_ms / 1000.0)
            with self._lock:
                rnd.sealed = True
                if self._current is rnd:
                    self._current = None
                failed = self._closed and member.error is not None
            if not failed:
                self._drive(rnd)
        else:
            rnd.done.wait()
        if member.error is not None:
            raise member.error
        return member.reply, rnd.group_size >= 2

    def _drive(self, rnd: _Round) -> None:
        """Leader: run every member's begin phase, then every finish
        phase, then sleep the group's single shared link latency.

        Member failures are isolated — one job's dead session fails that
        job only.  ``done`` is set in a ``finally`` so followers can
        never be stranded by a leader crash.
        """
        try:
            rnd.group_size = len(rnd.members)
            _GROUP_SIZE.observe(rnd.group_size)
            begun: list[tuple[_Member, object]] = []
            for member in rnd.members:
                try:
                    begun.append(
                        (member, member.transport.begin_exchange(member.messages))
                    )
                except BaseException as exc:  # noqa: BLE001 — isolate per member
                    member.error = exc
            for member, state in begun:
                try:
                    member.reply = member.transport.finish_exchange(state)
                except BaseException as exc:  # noqa: BLE001 — isolate per member
                    member.error = exc
            # LatencyTransport skips its sleep on the split phases so the
            # group can share one round-trip's worth of latency here.
            rtt_ms = max(
                (getattr(m.transport, "rtt_ms", 0.0) for m in rnd.members),
                default=0.0,
            )
            if rtt_ms > 0:
                time.sleep(rtt_ms / 1000.0)
        except BaseException as exc:  # noqa: BLE001 — leader must not strand followers
            for member in rnd.members:
                if member.error is None and member.reply is None:
                    member.error = exc
            raise
        finally:
            rnd.done.set()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Fail the open round and refuse new ones (server shutdown).

        Any job parked at the barrier — a leader waiting out its window
        or a follower waiting on the leader — wakes immediately with
        :class:`JobCancelled`; a sealed round already being driven is
        left to finish (its exchanges are in flight and aborting them
        mid-round would desynchronize the sessions).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            rnd, self._current = self._current, None
            if rnd is not None and not rnd.sealed:
                rnd.sealed = True
                failure = JobCancelled(
                    "server closed while the job waited at the scan rendezvous"
                )
                for member in rnd.members:
                    member.error = failure
        if rnd is not None:
            rnd.seal_event.set()
            rnd.done.set()


class CoalescingTransport(Transport):
    """Per-job transport wrapper routing every round through the
    rendezvous and counting how many were actually shared."""

    def __init__(self, inner: Transport, rendezvous: ScanRendezvous):
        self.inner = inner
        self.rendezvous = rendezvous
        self.coalesced_rounds = 0

    def exchange(self, messages: list) -> list:
        replies, shared = self.rendezvous.exchange(self.inner, messages)
        if shared:
            self.coalesced_rounds += 1
        return replies

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name):
        # Transparent wrapper, like LatencyTransport: backend-specific
        # surface stays reachable.
        return getattr(self.inner, name)

"""Leakage-aware cross-query result cache (see ARCHITECTURE.md, reuse
layer).

The paper's L1 leakage profile already makes query repeats public: S1
records ``query_pattern`` (token-fingerprint repeats) and
``halting_depth`` for every query (``core/scheme.py``, Section 9's
``QP``/``HD`` leakage functions).  A server that remembers the
*result* of a query and serves the repeat without touching S2 therefore
reveals nothing beyond the declared leakage — S1 already knew the two
queries were identical, and the adversary model lets S1 see (encrypted)
results.  That is what makes this cache "free": a hit costs zero S2
round-trips and zero modexps and leaks exactly the ``query_pattern``
repeat the fresh run would have leaked anyway.

The cache is **per-server**, bounded LRU, keyed by
``(relation_id, token.fingerprint(), config.cache_key())``:

* ``relation_id`` — the relation's content fingerprint, so a relation
  re-registered with different content can never serve stale results
  (the server invalidates its entries on re-registration as well);
* ``token.fingerprint()`` — exactly the query-pattern leakage handle,
  so the key itself introduces no new leakage;
* ``config.cache_key()`` — every knob that can change the result or its
  transcript (engine, variant, halting rule, …); operational knobs such
  as ``shards`` are excluded because they are transcript-invisible.

**Prefix serving.**  A second index keyed by the token's
``scan_fingerprint()`` — the token *minus* ``k`` — lets a ``k' < k``
repeat be served as the first ``k'`` items of a cached ``k`` result: the
winners are revealed best-first, and under ties any ``k'`` of the
best-scoring objects is a correct top-``k'``, so the slice is exact.
Both fingerprints derive from the same S1-visible token, so prefix hits
introduce no leakage beyond the declared query pattern either.

A hit serves a **deep copy** of the stored :class:`QueryResult` so
callers can never mutate each other's results through the cache.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs.metrics import REGISTRY

# Process-wide cache instruments; the per-instance counters below stay
# the source of `TopKServer.stats` — both tick together, so /metrics
# and stats can only ever differ by which caches they aggregate.
_HITS = REGISTRY.counter("repro_cache_hits_total", "Result-cache hits.")
_MISSES = REGISTRY.counter("repro_cache_misses_total", "Result-cache misses.")
_PREFIX_HITS = REGISTRY.counter(
    "repro_cache_prefix_hits_total",
    "Result-cache hits served as a k' < k prefix slice.",
)
_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total", "Result-cache LRU evictions."
)
_INVALIDATIONS = REGISTRY.counter(
    "repro_cache_invalidations_total",
    "Result-cache entries dropped by invalidation.",
)


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`QueryCache` (frozen snapshot)."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int
    prefix_hits: int = 0
    """Subset of ``hits`` that were served as a ``k' < k`` slice."""

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up yet)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class QueryCache:
    """Bounded, thread-safe LRU of finished :class:`QueryResult`\\ s."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        # scan key -> {stored k -> full cache key}; `_scan_of` is the
        # reverse map so evictions/invalidations can clean the index.
        self._scan_index: dict[tuple, dict[int, tuple]] = {}
        self._scan_of: dict[tuple, tuple[tuple, int]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._prefix_hits = 0
        self._evictions = 0
        self._invalidations = 0

    @staticmethod
    def key(relation_id: str, fingerprint: str, config) -> tuple:
        """The cache key for one query (see module docstring)."""
        return (relation_id, fingerprint, config.cache_key())

    @staticmethod
    def scan_key(relation_id: str, scan_fingerprint: str, config) -> tuple:
        """The ``k``-independent index key for prefix serving."""
        return (relation_id, scan_fingerprint, config.cache_key())

    def get(self, key: tuple):
        """A deep copy of the stored result, or ``None`` on a miss.

        Counts the lookup either way and refreshes the entry's LRU
        position on a hit.  The copy is taken outside the lock — the
        stored result is never mutated, so concurrent copiers are safe.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                _MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        _HITS.inc()
        return copy.deepcopy(result)

    def lookup(self, key: tuple, scan_key: tuple | None = None,
               k: int | None = None):
        """Exact-or-prefix lookup: ``(result_copy, sliced)``.

        Tries ``key`` exactly first; on a miss, when ``scan_key``/``k``
        are given, looks for a stored result of the *same scan* with a
        larger ``k`` (smallest such, to keep the copy cheap).  Returns
        ``(deep copy, False)`` on an exact hit, ``(deep copy, True)``
        when the caller must slice ``items[:k]``, or ``(None, False)``.
        Counts exactly one hit or miss per call.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                _HITS.inc()
                sliced = False
            else:
                full_key = None
                if scan_key is not None and k is not None:
                    by_k = self._scan_index.get(scan_key)
                    if by_k:
                        bigger = [k0 for k0 in by_k if k0 > k]
                        if bigger:
                            full_key = by_k[min(bigger)]
                if full_key is None:
                    self._misses += 1
                    _MISSES.inc()
                    return None, False
                result = self._entries[full_key]
                self._entries.move_to_end(full_key)
                self._hits += 1
                self._prefix_hits += 1
                _HITS.inc()
                _PREFIX_HITS.inc()
                sliced = True
        return copy.deepcopy(result), sliced

    def put(self, key: tuple, result, scan_key: tuple | None = None,
            k: int | None = None) -> None:
        """Store a finished result, evicting the LRU tail if full.

        ``scan_key``/``k`` additionally index the entry for prefix
        serving (see module docstring).
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            if scan_key is not None and k is not None:
                self._scan_index.setdefault(scan_key, {})[k] = key
                self._scan_of[key] = (scan_key, k)
            while len(self._entries) > self.capacity:
                victim, _ = self._entries.popitem(last=False)
                self._unindex_locked(victim)
                self._evictions += 1
                _EVICTIONS.inc()

    def _unindex_locked(self, key: tuple) -> None:
        """Drop one entry's prefix-index registration (lock held)."""
        ref = self._scan_of.pop(key, None)
        if ref is None:
            return
        scan_key, k = ref
        by_k = self._scan_index.get(scan_key)
        if by_k is not None and by_k.get(k) == key:
            del by_k[k]
            if not by_k:
                del self._scan_index[scan_key]

    def invalidate_relation(self, relation_id: str) -> int:
        """Drop every entry of one relation (re-registration hook)."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == relation_id]
            for k in stale:
                del self._entries[k]
                self._unindex_locked(k)
            self._invalidations += len(stale)
        _INVALIDATIONS.inc(len(stale))
        return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._scan_index.clear()
            self._scan_of.clear()
            self._invalidations += dropped
        _INVALIDATIONS.inc(dropped)
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """Frozen snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
                prefix_hits=self._prefix_hits,
            )

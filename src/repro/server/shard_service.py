"""The standalone S1 shard-worker daemon.

Runs one storage shard of a distributed S1 as its own process (or
host)::

    PYTHONPATH=src python -m repro.server.shard_service \\
        --listen tcp://127.0.0.1:9412 [--state-dir /var/lib/repro-shard]

Where :mod:`repro.server.s2_service` is the crypto cloud, this daemon is
a *storage* worker: it holds contiguous row slices of encrypted
relations — ciphertext rows only, never key material — and serves the
per-window depth batches of the sharded scan
(:mod:`repro.server.sharding`).  The conversation, over the same
length-prefixed frame protocol:

1. **HELLO** — strict ``repro-shard/1`` banner check, once per
   connection (shard daemons are not S2 daemons; a client dialing the
   wrong port fails immediately with a clear error).
2. **SLICE/SLICED** — slice registration, keyed ``(relation_id,
   shard_id)``: rows ``[lo, hi)`` of every list of the relation, shipped
   once per id and shared daemon-wide.  Idempotent — racing uploads of
   the same slice install once.  With ``--state-dir`` each slice spills
   atomically to ``<state_dir>/<relation_id>.<shard_id>.slice`` and is
   reloaded on restart, so a bounced worker serves its slices without
   any re-upload.
3. **REQUEST/REPLY** — one :class:`~repro.net.messages.ShardBatch` per
   frame: the weighted ``(depth, items)`` pairs of one check window.
   The token's scalar weights are applied *here* (the per-item modexp
   work the placement distributes) and memoized per ``(names, weights)``,
   so repeated windows of one query weight each row once — exactly the
   once-per-query cost of a local shard worker.  An id the daemon does
   not hold answers ``unknown-relation`` and the client uploads + retries.
4. **MUTATE/MUTATED** — touched-prefix delta-sync after a client-side
   relation mutation: only the re-encrypted prefix rows ship (see
   :func:`repro.server.mutations.mutation_delta`); suffix rows are
   re-used from the predecessor's slices already on this daemon, shifted
   by the mutation's row delta.  A slice whose new bounds cannot be
   filled from local rows is dropped instead of re-keyed — the client
   lazily re-uploads it on the next window — so the daemon never serves
   rows of the wrong version.

Requests are dispatched on a small thread pool, so concurrent shard
workers mapped to one daemon (round-robin placement) interleave instead
of serializing.  A dropped connection never tears down slices — they are
daemon-wide state, like S2 registrations.

Security note: slices hold only what S1 holds anyway (EHLs and
ciphertexts under the owner's keys — Theorem 6.1's view), so a shard
daemon learns nothing an unsharded S1 would not.  The state dir spills
that same ciphertext material.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pickle
import socket
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.crypto import backend
from repro.exceptions import PeerDisconnected, TransportError
from repro.net.socket_transport import (
    ERROR,
    HELLO,
    HELLO_OK,
    MUTATE,
    MUTATED,
    REPLY,
    REQUEST,
    SHARD_BANNER,
    SLICE,
    SLICED,
    UNKNOWN_RELATION,
    VERSION_MISMATCH,
    encode_error,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.net.wire import WireCodec
from repro.obs.exporter import HealthState, MetricsExporter
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.server.sharding import ShardPlan
from repro.structures.items import weight_entries

#: Request-dispatch threads per daemon: enough to keep round-robin
#: placements with several shards per daemon overlapping.
_DISPATCH_WORKERS = 8

#: Weighted-slice memo entries kept per daemon (one per live
#: ``(relation_id, shard_id, names, weights)`` — i.e. per query shape).
_WEIGHTED_CACHE_MAX = 16


class _Connection:
    """One accepted client connection (stateless beyond the socket)."""

    def __init__(self, service: "ShardService", sock: socket.socket):
        self.service = service
        self.sock = sock
        self._write_lock = threading.Lock()

    def send(self, ftype: int, session_id: int, payload: bytes = b"") -> None:
        with self._write_lock:
            send_frame(self.sock, ftype, session_id, payload)

    def send_error(self, session_id: int, kind: str, text: str) -> None:
        with contextlib.suppress(TransportError):
            self.send(ERROR, session_id, encode_error(kind, text))

    def run(self) -> None:
        try:
            self.sock.settimeout(30.0)
            ftype, _, payload = recv_frame(self.sock)
            if ftype != HELLO or payload != SHARD_BANNER:
                self.send_error(0, VERSION_MISMATCH, SHARD_BANNER.decode())
                return
            self.send(HELLO_OK, 0, payload)
            self.sock.settimeout(None)
            while True:
                ftype, session_id, payload = recv_frame(self.sock)
                self._handle(ftype, session_id, payload)
        except PeerDisconnected:
            pass  # normal client departure
        except Exception as exc:  # noqa: BLE001 — last-resort report
            self.send_error(0, type(exc).__name__, str(exc))
        finally:
            with contextlib.suppress(OSError):
                self.sock.close()
            self.service._connection_closed(self)

    def _handle(self, ftype: int, session_id: int, payload: bytes) -> None:
        if ftype == SLICE:
            self.service._install_slice(pickle.loads(payload), payload)
            self.send(SLICED, session_id)
        elif ftype == REQUEST:
            # Window requests carry the modexp work; run them on the
            # dispatch pool so shards mapped to one daemon overlap.
            self.service._executor.submit(self._serve_batch, session_id, payload)
        elif ftype == MUTATE:
            summary = self.service._mutate(pickle.loads(payload))
            self.send(
                MUTATED,
                session_id,
                pickle.dumps(summary, protocol=pickle.HIGHEST_PROTOCOL),
            )
        else:
            self.send_error(session_id, "unknown-frame", str(ftype))

    def _serve_batch(self, session_id: int, payload: bytes) -> None:
        try:
            (msg,) = WireCodec().decode_envelope(payload)
            batch = self.service._depth_batch(msg)
            if batch is None:
                self.send_error(
                    session_id,
                    UNKNOWN_RELATION,
                    f"{msg.relation_id}/{msg.shard_id}",
                )
                return
            self.send(
                REPLY, session_id, WireCodec().encode_replies([batch])
            )
        except PeerDisconnected:
            pass  # client gone mid-reply; the connection loop notices
        except Exception as exc:  # noqa: BLE001 — report, don't die
            self.send_error(session_id, type(exc).__name__, str(exc))


class ShardService:
    """The shard-worker daemon: listener, slice registry, batch serving.

    Parameters
    ----------
    listen:
        ``tcp://host:port`` (port 0 picks a free one) or
        ``unix:///path`` (a stale socket file is replaced).
    state_dir:
        When set, every slice registration spills atomically to
        ``<state_dir>/<relation_id>.<shard_id>.slice`` and reloads on
        :meth:`start` — a restarted worker serves its slices without
        client re-uploads.  Holds ciphertext rows (S1's view).
    metrics_port:
        When set, serve Prometheus text at
        ``http://127.0.0.1:PORT/metrics`` plus ``/healthz`` (``0`` picks
        a free port — read it back from :attr:`metrics_port`).
    """

    def __init__(
        self,
        listen: str = "tcp://127.0.0.1:0",
        state_dir: str | None = None,
        metrics_port: int | None = None,
    ):
        self.listen_spec = listen
        self.state_dir = state_dir
        self.address: str | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._unix_path: str | None = None
        self._lock = threading.Lock()
        self._connections: set[_Connection] = set()
        #: (relation_id, shard_id) -> {lo, hi, n_shards, lists}
        self._slices: dict[tuple[str, int], dict] = {}
        #: (relation_id, shard_id, names, weights) -> [weighted rows per name]
        self._weighted: OrderedDict[tuple, list] = OrderedDict()
        self._executor = ThreadPoolExecutor(
            max_workers=_DISPATCH_WORKERS, thread_name_prefix="shard-dispatch"
        )
        self.registry = MetricsRegistry()
        reg = self.registry
        self._counters = {
            "slices": reg.gauge(
                "repro_shard_slices", "Slices currently registered."
            ),
            "slice_uploads": reg.counter(
                "repro_shard_slice_uploads_total",
                "SLICE frames received (including idempotent repeats).",
            ),
            "slice_bytes": reg.counter(
                "repro_shard_slice_bytes_total",
                "Bytes of SLICE payload received.",
            ),
            "slices_restored": reg.counter(
                "repro_shard_slices_restored_total",
                "Slices reloaded from the state dir at boot.",
            ),
            "slices_rekeyed": reg.counter(
                "repro_shard_slices_rekeyed_total",
                "Slices delta-synced to a successor relation id by MUTATE.",
            ),
            "slices_dropped": reg.counter(
                "repro_shard_slices_dropped_total",
                "Slices dropped by MUTATE (unfillable rebuild or drop-only).",
            ),
            "batches": reg.counter(
                "repro_shard_batches_total", "Depth-batch requests served."
            ),
            "batch_depths": reg.counter(
                "repro_shard_batch_depths_total",
                "Depths served across all batch replies.",
            ),
            "connections_total": reg.counter(
                "repro_shard_connections_total", "Client connections accepted."
            ),
            "connections_active": reg.gauge(
                "repro_shard_connections_active",
                "Client connections currently open.",
            ),
        }
        self._health = HealthState()
        self._metrics_port = metrics_port
        self._exporter: MetricsExporter | None = None
        self._closed = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> str:
        """Bind, listen, and start accepting; returns the bound address."""
        if self.state_dir is not None:
            self._restore_slices()
        family, target = parse_address(self.listen_spec)
        if family == "tcp":
            host, port = target
            listener = socket.create_server((host, port))
            bound_port = listener.getsockname()[1]
            self.address = f"tcp://{host}:{bound_port}"
        else:
            if not hasattr(socket, "AF_UNIX"):
                raise TransportError("Unix-domain sockets unavailable here")
            with contextlib.suppress(OSError):
                os.unlink(target)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(target)
            listener.listen()
            self._unix_path = target
            self.address = f"unix://{target}"
        listener.settimeout(0.1)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="shard-accept", daemon=True
        )
        self._accept_thread.start()
        if self._metrics_port is not None:
            exporter = MetricsExporter(
                port=self._metrics_port,
                registries=[REGISTRY, self.registry],
                health=self._health,
            )
            try:
                exporter.start()
            except BaseException:
                self.close()
                raise
            self._exporter = exporter
        return self.address

    @property
    def metrics_port(self) -> int | None:
        """Bound port of the metrics exporter (``None`` when not mounted)."""
        exporter = self._exporter
        return exporter.port if exporter is not None else None

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed
            sock.settimeout(None)
            if isinstance(sock.getsockname(), tuple):
                with contextlib.suppress(OSError):
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(self, sock)
            with self._lock:
                self._connections.add(connection)
                self._counters["connections_total"].inc()
                self._counters["connections_active"].inc()
            threading.Thread(
                target=connection.run, name="shard-connection", daemon=True
            ).start()

    def serve_forever(self) -> None:
        """Block until :meth:`close` (or the process) ends the service."""
        self._closed.wait()

    def close(self) -> None:
        """Stop accepting, drop every connection, retire the pool."""
        self._health.drain()
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                connection.sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self._unix_path)
        self._executor.shutdown(wait=True)
        exporter, self._exporter = self._exporter, None
        if exporter is not None:
            exporter.close()

    def __enter__(self) -> "ShardService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- slice registry ---------------------------------------------------

    def _install_slice(self, blob: dict, payload: bytes | None) -> None:
        """Install one slice registration (idempotent).

        ``payload`` is the raw SLICE frame body (``None`` when restoring
        from disk) — persisted verbatim so a restart replays exactly
        what the client uploaded.
        """
        key = (str(blob["relation_id"]), int(blob["shard_id"]))
        persist = False
        with self._lock:
            if payload is not None:
                self._counters["slice_uploads"].inc()
                self._counters["slice_bytes"].inc(len(payload))
            if key not in self._slices:
                self._slices[key] = {
                    "lo": int(blob["lo"]),
                    "hi": int(blob["hi"]),
                    "n_shards": int(blob["n_shards"]),
                    "lists": blob["lists"],
                }
                self._counters["slices"].inc()
                if payload is None:
                    self._counters["slices_restored"].inc()
                else:
                    persist = self.state_dir is not None
        if persist:
            self._persist_slice(key, payload)

    def _depth_batch(self, msg) -> list | None:
        """The weighted ``(depth, items)`` pairs of one window request;
        ``None`` when the slice is not registered here."""
        key = (msg.relation_id, msg.shard_id)
        memo_key = (msg.relation_id, msg.shard_id, msg.names, msg.weights)
        with self._lock:
            held = self._slices.get(key)
            if held is None:
                return None
            weighted = self._weighted.get(memo_key)
            if weighted is not None:
                self._weighted.move_to_end(memo_key)
            lo_bound, hi_bound = held["lo"], held["hi"]
            if weighted is None:
                raw = [held["lists"][name] for name in msg.names]
        if weighted is None:
            # The modexp work, outside the lock: weight this slice's
            # rows of the queried lists once per (names, weights) shape.
            # Same construction as the local worker (weight_entries), so
            # the items are value-identical — parity does not depend on
            # where the weighting ran.
            weighted = [
                weight_entries(entries, weight)
                for entries, weight in zip(raw, msg.weights)
            ]
            with self._lock:
                self._weighted[memo_key] = weighted
                self._weighted.move_to_end(memo_key)
                while len(self._weighted) > _WEIGHTED_CACHE_MAX:
                    self._weighted.popitem(last=False)
        lo = max(msg.lo, lo_bound)
        hi = min(msg.hi, hi_bound)
        batch = [
            (depth, [entries[depth - lo_bound] for entries in weighted])
            for depth in range(lo, hi)
        ]
        with self._lock:
            self._counters["batches"].inc()
            self._counters["batch_depths"].inc(len(batch))
        return batch

    # -- mutation delta-sync ----------------------------------------------

    def _mutate(self, delta: dict) -> dict:
        """Re-key this daemon's slices of one relation after a mutation.

        ``delta`` is the payload :func:`repro.server.mutations.mutation_delta`
        builds: the successor id, the row-index ``shift``, the new row
        count and the re-encrypted prefix rows per list.  Every held
        slice of the old id is rebuilt against the successor's shard
        plan: prefix depths come from the shipped rows, suffix depths
        from the predecessor rows already here (sourced from *any* held
        slice of the old id — bounds move when rows are inserted or
        deleted).  A slice that cannot be filled locally is dropped —
        never re-keyed stale — and lazily re-uploaded by the client.
        ``prefixes=None`` is drop-only (wholesale re-encryptions such as
        windowed watches ship no deltas).  Idempotent: an unknown old id
        is a no-op.
        """
        old_id = str(delta["old_id"])
        new_id = delta.get("new_id")
        prefixes = delta.get("prefixes")
        rekeyed = dropped = 0
        with self._lock:
            held = {
                key: self._slices[key]
                for key in list(self._slices)
                if key[0] == old_id
            }
        if not held:
            return {"rekeyed": 0, "dropped": 0}
        new_slices: dict[tuple[str, int], dict] = {}
        if prefixes is not None and new_id:
            shift = int(delta["shift"])
            new_n_rows = int(delta["new_n_rows"])
            old_rows = list(held.values())
            for (_, shard_id), sl in held.items():
                rebuilt = self._rebuild_slice(
                    sl, shard_id, shift, new_n_rows, prefixes, old_rows
                )
                if rebuilt is None:
                    dropped += 1
                else:
                    new_slices[(str(new_id), shard_id)] = rebuilt
                    rekeyed += 1
        else:
            dropped = len(held)
        with self._lock:
            for key in held:
                if self._slices.pop(key, None) is not None:
                    self._counters["slices"].dec()
            for key, sl in new_slices.items():
                if key not in self._slices:
                    self._slices[key] = sl
                    self._counters["slices"].inc()
            self._counters["slices_rekeyed"].inc(rekeyed)
            self._counters["slices_dropped"].inc(dropped)
            # Weighted memos alias the old rows; every entry of either id
            # is stale now.
            for memo_key in list(self._weighted):
                if memo_key[0] in (old_id, new_id):
                    del self._weighted[memo_key]
        if self.state_dir is not None:
            for key in held:
                with contextlib.suppress(OSError, TransportError):
                    os.remove(self._slice_path(key))
            for key, sl in new_slices.items():
                with contextlib.suppress(Exception):
                    self._persist_slice(
                        key,
                        pickle.dumps(
                            {
                                "relation_id": key[0],
                                "shard_id": key[1],
                                "n_shards": sl["n_shards"],
                                "lo": sl["lo"],
                                "hi": sl["hi"],
                                "lists": sl["lists"],
                            },
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                    )
        return {"rekeyed": rekeyed, "dropped": dropped}

    @staticmethod
    def _rebuild_slice(
        sl: dict,
        shard_id: int,
        shift: int,
        new_n_rows: int,
        prefixes: dict,
        old_rows: list,
    ) -> dict | None:
        """One slice's successor under the new shard plan, or ``None``
        when a needed row is on no slice this daemon holds."""
        plan = ShardPlan.for_scan(new_n_rows, sl["n_shards"])
        if shard_id >= plan.n_shards:
            return None
        new_lo, new_hi = plan.bounds[shard_id]
        lists: dict = {}
        for name in sl["lists"]:
            prefix = prefixes.get(name, ())
            rows = []
            for depth in range(new_lo, new_hi):
                if depth < len(prefix):
                    rows.append(prefix[depth])
                    continue
                old_index = depth - shift
                source = next(
                    (
                        other
                        for other in old_rows
                        if other["lo"] <= old_index < other["hi"]
                    ),
                    None,
                )
                if source is None:
                    return None
                rows.append(source["lists"][name][old_index - source["lo"]])
            lists[name] = rows
        return {
            "lo": new_lo,
            "hi": new_hi,
            "n_shards": sl["n_shards"],
            "lists": lists,
        }

    # -- persistence -------------------------------------------------------

    def _slice_path(self, key: tuple[str, int]) -> str:
        relation_id, shard_id = key
        # Relation ids are hex digests (filesystem-safe by construction);
        # reject anything else rather than risk a traversal.
        if not relation_id or not all(c.isalnum() for c in relation_id):
            raise TransportError(f"unsafe relation id: {relation_id!r}")
        return os.path.join(self.state_dir, f"{relation_id}.{int(shard_id)}.slice")

    def _persist_slice(self, key: tuple[str, int], payload: bytes) -> None:
        """Atomically spill one slice payload to the state dir."""
        os.makedirs(self.state_dir, mode=0o700, exist_ok=True)
        path = self._slice_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    def _restore_slices(self) -> None:
        """Reload spilled slices (corrupt files are skipped, not fatal —
        the client re-uploads on demand)."""
        if not os.path.isdir(self.state_dir):
            return
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".slice"):
                continue
            path = os.path.join(self.state_dir, name)
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
                blob = pickle.loads(payload)
                stem = name[: -len(".slice")]
                relation_id, _, shard_id = stem.rpartition(".")
                if (
                    isinstance(blob, dict)
                    and blob.get("relation_id") == relation_id
                    and str(blob.get("shard_id")) == shard_id
                    and isinstance(blob.get("lists"), dict)
                ):
                    self._install_slice(blob, None)
            except Exception:  # noqa: BLE001 — a bad spill must not kill boot
                continue

    # -- bookkeeping -------------------------------------------------------

    def _connection_closed(self, connection: _Connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.discard(connection)
                self._counters["connections_active"].dec()

    def stats(self) -> dict:
        """A consistent point-in-time snapshot of the service counters."""
        with self._lock:
            return {name: int(c.value) for name, c in self._counters.items()}


def launch_daemon(
    listen: str = "tcp://127.0.0.1:0",
    extra_args: tuple[str, ...] = (),
    quiet: bool = False,
    timeout: float = 30.0,
):
    """Start the daemon as a separate OS process; returns (process, address).

    Mirrors :func:`repro.server.s2_service.launch_daemon`: the bound
    address is read from a ready file, and the caller owns the returned
    :class:`subprocess.Popen` (terminate it when done).
    """
    import pathlib
    import subprocess
    import sys
    import tempfile
    import time

    src_root = str(pathlib.Path(__file__).resolve().parent.parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.NamedTemporaryFile(suffix=".addr", delete=False) as handle:
        ready_file = handle.name
    os.unlink(ready_file)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.shard_service",
            "--listen",
            listen,
            "--ready-file",
            ready_file,
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL if quiet else None,
    )
    try:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(ready_file):
                address = pathlib.Path(ready_file).read_text().strip()
                os.unlink(ready_file)
                return process, address
            if process.poll() is not None:
                raise RuntimeError("shard daemon exited before becoming ready")
            time.sleep(0.05)
        raise RuntimeError("shard daemon did not become ready in time")
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(ready_file)
        process.terminate()
        raise


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.server.shard_service``."""
    parser = argparse.ArgumentParser(
        prog="repro.server.shard_service", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "--listen",
        default="tcp://127.0.0.1:0",
        help="tcp://host:port (port 0 = ephemeral) or unix:///path",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="big-int backend (pure / gmpy2 / gmp-kernel / auto; "
        "default: REPRO_BACKEND)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="spill slice registrations here and reload them on restart",
    )
    parser.add_argument(
        "--ready-file",
        default=None,
        help="write the bound address here once listening (CI/scripts)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus text at http://127.0.0.1:PORT/metrics "
        "plus /healthz (0 = ephemeral port; default: no exporter)",
    )
    args = parser.parse_args(argv)

    if args.backend:
        backend.set_backend(args.backend)
    service = ShardService(
        args.listen,
        state_dir=args.state_dir,
        metrics_port=args.metrics_port,
    )
    address = service.start()
    print(f"repro-shard: listening on {address}", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(address)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


if __name__ == "__main__":
    main()

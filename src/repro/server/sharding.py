"""Sharded S1 storage: one relation's sorted lists across shard workers.

The paper's S1 scans per-attribute sorted lists depth by depth; a single
process holding every list is the scalability ceiling once relations
outgrow one worker's memory or one core's weighting throughput.  This
module splits an :class:`~repro.core.relation.EncryptedRelation`'s query
lists into ``n_shards`` *contiguous depth slices* — shard ``s`` stores
rows ``[lo_s, hi_s)`` of **every** queried list — served by per-query
:class:`ShardWorker` objects behind a :class:`ShardedQueryLists` façade
the engines consume exactly like plain lists.

The scan pipeline::

    ShardPlan ──partition──▶ ShardWorker 0  (depths [0, n/N))
                             ShardWorker 1  (depths [n/N, 2n/N))
                             ...
                ──per-window depth batches──▶ fan-in merge ──▶ engine

Per check window (``QueryConfig.check_every()`` depths), every shard
whose slice overlaps the window assembles its depth batch — applying
the token's score weights to its own rows, the real per-item modexp
work — on the server's shard-worker pool, and the batches are merged
depth-ordered by :func:`repro.net.batching.fan_in_batches` *before* the
window's rounds are built.  The merged items are value-identical to the
unsharded lists (scalar weighting draws no randomness) and reach the
engine in scan order, so every message, byte and leakage event of the
S2-visible transcript is bit-identical to the single-worker run — the
repo's core invariant, locked down property-style by
``tests/test_sharding.py``.

Slice storage reuses the relation-store idea of
:mod:`repro.server.topk_server`: the (unweighted) per-shard slices are
cached process-wide per ``(relation_id, lists, n_shards)``, so repeated
queries against a sharded relation never re-slice the ciphertext lists.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import OrderedDict
from collections.abc import Sequence

from repro.core.results import ShardStats
from repro.core.token import Token
from repro.exceptions import (
    PeerDisconnected,
    QueryError,
    RemoteS2Error,
    ShardWorkerError,
    TransportError,
)
from repro.net.batching import fan_in_batches
from repro.structures.items import EncryptedItem, weight_entries

# Process-wide LRU cache of unweighted shard slices, keyed by
# (relation_id, permuted list names, n_shards, list count, row count) —
# the sharded sibling of the topk_server relation store (fork workers
# inherit it for free).  The trailing shape fingerprint guards against
# relation-id reuse: a server registering a *different* relation object
# under a recycled id (e.g. a forced ``_relation_id``) misses instead of
# serving the old rows.  Entries are lists of per-shard, per-list row
# slices sharing the relation's EncryptedItem objects, so the cache
# costs references only; a small LRU bound keeps long-lived
# multi-relation servers in check, and hits refresh recency so a hot
# relation's slices outlive cold ones.
_SLICE_STORE: OrderedDict[tuple, list] = OrderedDict()
_SLICE_STORE_MAX = 32
_SLICE_LOCK = threading.Lock()

#: Seconds a remote shard worker gets to answer one depth-batch request
#: before the scan gives up and surfaces a typed failure (tests shrink
#: this to exercise the no-hang guarantee).
SHARD_REQUEST_TIMEOUT = 30.0


class ShardPlan:
    """Contiguous, balanced partition of ``n_rows`` depths into shards.

    The first ``n_rows % n_shards`` shards take one extra depth, so
    slice sizes differ by at most one and concatenating the slices in
    shard order reproduces ``range(n_rows)`` exactly.
    """

    __slots__ = ("n_rows", "n_shards", "bounds", "_starts")

    def __init__(self, n_rows: int, n_shards: int):
        if n_rows < 1:
            raise QueryError("cannot shard an empty scan")
        if not 1 <= n_shards <= n_rows:
            raise QueryError(
                f"n_shards={n_shards} out of range for n_rows={n_rows}"
            )
        self.n_rows = n_rows
        self.n_shards = n_shards
        base, extra = divmod(n_rows, n_shards)
        bounds = []
        lo = 0
        for shard in range(n_shards):
            hi = lo + base + (1 if shard < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        self.bounds = tuple(bounds)
        self._starts = [b[0] for b in self.bounds]

    @classmethod
    def for_scan(cls, n_rows: int, requested: int) -> "ShardPlan":
        """A plan for ``requested`` shards, clamped to the scan length
        (a 3-row relation cannot occupy more than 3 workers)."""
        return cls(n_rows, max(1, min(requested, n_rows)))

    def owner(self, depth: int) -> int:
        """The shard whose slice holds ``depth``."""
        if not 0 <= depth < self.n_rows:
            raise QueryError(f"depth {depth} outside the scan")
        return bisect.bisect_right(self._starts, depth) - 1

    def overlapping(self, lo: int, hi: int) -> list[int]:
        """Shards whose slices intersect the depth window ``[lo, hi)``."""
        if lo >= hi:
            return []
        return list(range(self.owner(lo), self.owner(hi - 1) + 1))


class ShardWorker:
    """One shard's storage and scan state for a single query.

    Holds row slice ``[lo, hi)`` of every query list, applies the
    token's weights to *its own rows only* (:meth:`prepare` — the
    parallelizable per-item modexp work), and assembles per-window depth
    batches for the fan-in stage.  Workers are per-query (their stats
    are), but the unweighted slices they wrap are shared through the
    process-wide slice store.
    """

    __slots__ = (
        "shard_id",
        "lo",
        "hi",
        "_slices",
        "records_scanned",
        "depth_reached",
        "elapsed",
    )

    def __init__(self, shard_id: int, lo: int, hi: int, slices: list[list[EncryptedItem]]):
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self._slices = slices
        self.records_scanned = 0
        self.depth_reached = 0
        self.elapsed = 0.0

    def prepare(self, weights: tuple[int, ...]) -> "ShardWorker":
        """Apply the token's per-list weights to this shard's rows.

        Scalar multiplication of a Paillier ciphertext is deterministic
        (``c^w mod N²``, no randomness) and the construction is shared
        with the unsharded path (:func:`weight_entries`), so the
        weighted items equal the ones that path builds — the parity
        invariant does not depend on *where* the weighting ran.  Returns
        ``self`` so pool futures resolve to the prepared worker.
        """
        started = time.perf_counter()
        self._slices = [
            weight_entries(entries, weight)
            for entries, weight in zip(self._slices, weights)
        ]
        self.elapsed += time.perf_counter() - started
        return self

    def depth_batch(self, lo: int, hi: int) -> list[tuple[int, list[EncryptedItem]]]:
        """This shard's ``(depth, items-per-list)`` pairs for the window
        ``[lo, hi)`` — empty when the window misses the slice."""
        started = time.perf_counter()
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        batch = [
            (depth, [entries[depth - self.lo] for entries in self._slices])
            for depth in range(lo, hi)
        ]
        if batch:
            self.records_scanned += len(batch) * len(self._slices)
            self.depth_reached = max(self.depth_reached, hi)
        self.elapsed += time.perf_counter() - started
        return batch

    def stats(self) -> ShardStats:
        """This shard's slice of the query's cost profile."""
        return ShardStats(
            shard_id=self.shard_id,
            depth_lo=self.lo,
            depth_hi=self.hi,
            records_scanned=self.records_scanned,
            depth_reached=self.depth_reached,
            elapsed_seconds=self.elapsed,
        )


class RemoteShardWorker:
    """One shard's scan state when its slice lives on a remote daemon.

    Same interface as :class:`ShardWorker`, but the rows sit on a
    :class:`~repro.server.shard_service.ShardService` reached through a
    multiplexed :class:`~repro.net.socket_transport.ShardClient`
    session.  :meth:`prepare` only records the token's weights — the
    per-item modexp work runs on the daemon, per batch, against its
    registered slice.  The slice is uploaded lazily: the first batch
    request against an id the daemon does not hold comes back
    ``unknown-relation``, the worker ships rows ``[lo, hi)`` of every
    relation list once, and retries.  Scalar weighting is deterministic
    and the wire codec round-trips ciphertexts exactly, so the items a
    remote worker returns are value-identical to a local worker's — the
    parity invariant does not depend on where the slice lives.

    Connection-level failures (timeout, peer death, remote error) are
    wrapped in :class:`~repro.exceptions.ShardWorkerError` naming this
    shard and its address, so a worker dying mid-window surfaces as a
    typed job failure instead of a hung fan-in.
    """

    __slots__ = (
        "shard_id",
        "lo",
        "hi",
        "address",
        "records_scanned",
        "depth_reached",
        "elapsed",
        "_relation",
        "_names",
        "_n_shards",
        "_weights",
    )

    def __init__(self, shard_id: int, lo: int, hi: int, relation,
                 names: tuple[int, ...], address: str, n_shards: int):
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.address = address
        self.records_scanned = 0
        self.depth_reached = 0
        self.elapsed = 0.0
        self._relation = relation
        self._names = tuple(names)
        self._n_shards = n_shards
        self._weights: tuple[int, ...] = ()

    def prepare(self, weights: tuple[int, ...]) -> "RemoteShardWorker":
        """Record the token's per-list weights (applied daemon-side)."""
        self._weights = tuple(weights)
        return self

    def _slice_payload(self) -> dict:
        """The one-time slice upload: rows ``[lo, hi)`` of every list."""
        return {
            "relation_id": self._relation.relation_id(),
            "shard_id": self.shard_id,
            "n_shards": self._n_shards,
            "lo": self.lo,
            "hi": self.hi,
            "lists": {
                name: entries[self.lo : self.hi]
                for name, entries in self._relation.lists.items()
            },
        }

    def depth_batch(self, lo: int, hi: int) -> list[tuple[int, list[EncryptedItem]]]:
        """This shard's ``(depth, items-per-list)`` pairs for the window
        ``[lo, hi)``, fetched from the remote daemon."""
        from repro.net.socket_transport import shard_client_for

        started = time.perf_counter()
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        if lo >= hi:
            return []
        try:
            client = shard_client_for(self.address)
            try:
                batch = client.depth_batch(
                    self._relation.relation_id(), self.shard_id,
                    self._names, self._weights, lo, hi,
                    timeout=SHARD_REQUEST_TIMEOUT,
                )
            except RemoteS2Error as exc:
                if exc.kind != "unknown-relation":
                    raise
                client.upload_slice(self._slice_payload())
                batch = client.depth_batch(
                    self._relation.relation_id(), self.shard_id,
                    self._names, self._weights, lo, hi,
                    timeout=SHARD_REQUEST_TIMEOUT,
                )
        except ShardWorkerError:
            raise
        except (PeerDisconnected, TransportError) as exc:
            raise ShardWorkerError(self.shard_id, self.address, str(exc)) from exc
        if batch:
            self.records_scanned += len(batch) * len(self._names)
            self.depth_reached = max(self.depth_reached, hi)
        self.elapsed += time.perf_counter() - started
        return batch

    def stats(self) -> ShardStats:
        """This shard's slice of the query's cost profile (elapsed
        includes the network round-trips to its daemon)."""
        return ShardStats(
            shard_id=self.shard_id,
            depth_lo=self.lo,
            depth_hi=self.hi,
            records_scanned=self.records_scanned,
            depth_reached=self.depth_reached,
            elapsed_seconds=self.elapsed,
        )


class ShardedColumn(Sequence):
    """One query list's view over the shard workers.

    Drop-in for a plain sorted list inside the engines: supports
    ``len``, integer indexing and iteration (what the engines and
    :class:`~repro.structures.items.ListPrefix` use).  Indexing routes
    through the coordinator's window cache; a miss fetches the whole
    check window from the owning shards first.
    """

    __slots__ = ("_coordinator", "_slot")

    def __init__(self, coordinator: "ShardedQueryLists", slot: int):
        self._coordinator = coordinator
        self._slot = slot

    def __len__(self) -> int:
        return self._coordinator.n_rows

    def __getitem__(self, depth: int) -> EncryptedItem:
        if not isinstance(depth, int):
            raise TypeError("sharded lists support integer indices only")
        if depth < 0:
            depth += len(self)
        if not 0 <= depth < len(self):
            raise IndexError("depth outside the scan")
        return self._coordinator.item(self._slot, depth)

    def __iter__(self):
        for depth in range(len(self)):
            yield self[depth]


class ShardedQueryLists(Sequence):
    """The engines' view of a sharded relation: a sequence of columns.

    Construction partitions the query lists by a :class:`ShardPlan` and
    prepares every shard (weight application) — in parallel on the
    provided executor when one is given.  During the scan,
    :meth:`prefetch` (called by the engines at each depth boundary)
    assembles one check window: every overlapping shard builds its depth
    batch — concurrently, on the executor — and
    :func:`~repro.net.batching.fan_in_batches` merges them depth-ordered
    into the cache the columns read from.  Serving cached items draws no
    randomness and sends no message, which is why the construction is
    transcript-invisible.
    """

    def __init__(
        self,
        relation,
        token: Token,
        n_shards: int,
        window: int = 1,
        executor=None,
        placement: tuple[str, ...] | None = None,
    ):
        self.n_rows = relation.n_objects
        self.n_lists = len(token.permuted_lists)
        self.window = max(1, window)
        self.plan = ShardPlan.for_scan(self.n_rows, n_shards)
        self._executor = executor
        self._cache: dict[int, list[EncryptedItem]] = {}
        if placement:
            # Remote placement: shard s lives on daemon s % len(placement)
            # (round-robin, so fewer daemons than shards still works).
            # No local slicing or weighting — the rows ship to the
            # daemons once and the modexp work runs there.
            self._workers = [
                RemoteShardWorker(
                    shard, lo, hi, relation, token.permuted_lists,
                    placement[shard % len(placement)], self.plan.n_shards,
                )
                for shard, (lo, hi) in enumerate(self.plan.bounds)
            ]
        else:
            slices = _shard_slices(relation, token.permuted_lists, self.plan)
            self._workers = [
                ShardWorker(shard, lo, hi, slices[shard])
                for shard, (lo, hi) in enumerate(self.plan.bounds)
            ]
        self._columns = [ShardedColumn(self, j) for j in range(self.n_lists)]
        self._fan_out(
            [(worker.prepare, (token.effective_weights(),)) for worker in self._workers]
        )

    # -- sequence-of-columns façade --------------------------------------

    def __len__(self) -> int:
        return self.n_lists

    def __getitem__(self, slot: int) -> ShardedColumn:
        return self._columns[slot]

    def __iter__(self):
        return iter(self._columns)

    # -- the sharded scan -------------------------------------------------

    def prefetch(self, depth: int) -> None:
        """Make the check window containing ``depth`` servable.

        No-op when the window is already cached; otherwise every shard
        overlapping the window assembles its depth batch (in parallel on
        the executor) and the fan-in stage merges them into scan order.
        """
        if depth in self._cache:
            return
        lo = depth - depth % self.window
        hi = min(lo + self.window, self.n_rows)
        workers = [self._workers[s] for s in self.plan.overlapping(lo, hi)]
        batches = self._fan_out(
            [(worker.depth_batch, (lo, hi)) for worker in workers]
        )
        merged = fan_in_batches(
            batches, lo, hi, shard_ids=[w.shard_id for w in workers]
        )
        for fetched, items in merged:
            self._cache[fetched] = items

    def item(self, slot: int, depth: int) -> EncryptedItem:
        """One list entry, fetching its window on a cache miss (the
        baseline engines iterate without announcing depth boundaries)."""
        self.prefetch(depth)
        return self._cache[depth][slot]

    def shard_stats(self) -> list[ShardStats]:
        """Per-shard cost profile, in depth order."""
        return [worker.stats() for worker in self._workers]

    # -- shard-worker fan-out ---------------------------------------------

    def _fan_out(self, calls: list) -> list:
        """Run ``(fn, args)`` pairs — one per shard — and gather results
        in shard order.  Uses the executor when it can actually overlap
        work (two or more shards participating); inline otherwise.  An
        executor shut down mid-call (a server closing under an in-flight
        session query) degrades to the inline path — same results, no
        overlap — so the scan fails at its own boundaries, not here."""
        if self._executor is not None and len(calls) > 1:
            futures = []
            try:
                for fn, args in calls:
                    futures.append(self._executor.submit(fn, *args))
            except RuntimeError:
                # Tasks already submitted still run to completion; only
                # the remainder moves inline (re-running a submitted
                # prepare() would double-apply its weights).
                return [future.result() for future in futures] + [
                    fn(*args) for fn, args in calls[len(futures):]
                ]
            return [future.result() for future in futures]
        return [fn(*args) for fn, args in calls]


def _shard_slices(relation, names: tuple[int, ...], plan: ShardPlan) -> list:
    """Per-shard, per-list row slices, via the process-wide slice store.

    The slices alias the relation's ``EncryptedItem`` objects (weighting
    replaces items per query, it never mutates them), so cache entries
    are cheap and safe to share across queries, servers and forked
    workers.

    The store is a true LRU under one lock for the whole
    lookup/build/evict path: a hit moves its entry to the recent end, a
    miss evicts from the stale end — a hot relation's slices survive a
    parade of cold ones.  The key carries the relation's shape
    fingerprint (list count + row count) next to its id, so a different
    relation recycled under the same id rebuilds instead of serving the
    predecessor's rows.
    """
    key = (
        relation.relation_id(),
        tuple(names),
        plan.n_shards,
        len(relation.lists),
        relation.n_objects,
    )
    with _SLICE_LOCK:
        slices = _SLICE_STORE.get(key)
        if slices is not None:
            _SLICE_STORE.move_to_end(key)
        else:
            entries_by_list = [relation.list_for(name) for name in names]
            slices = [
                [entries[lo:hi] for entries in entries_by_list]
                for lo, hi in plan.bounds
            ]
            while len(_SLICE_STORE) >= _SLICE_STORE_MAX:
                _SLICE_STORE.popitem(last=False)
            _SLICE_STORE[key] = slices
    return slices


def invalidate_slices(relation_id: str) -> int:
    """Drop every cached shard slice of one relation (mutation hook).

    Slices alias a specific relation's ``EncryptedItem`` objects; after
    a mutation the predecessor's id never recurs (the version is folded
    into ``relation_id``), so its entries would only pin dead
    ciphertexts in the LRU.  Returns how many entries were dropped.
    """
    with _SLICE_LOCK:
        stale = [key for key in _SLICE_STORE if key[0] == relation_id]
        for key in stale:
            del _SLICE_STORE[key]
    return len(stale)

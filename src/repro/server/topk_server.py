"""Multi-query server front-end for one encrypted relation.

A :class:`TopKServer` owns one :class:`~repro.core.relation.EncryptedRelation`
plus the S2 connection recipe, and serves many sequential or concurrent
:class:`QuerySession`\\ s.  Each session gets its own accounting channel,
leakage log, randomness streams and transport — so per-query channel
statistics and leakage records never bleed across queries — while the
relation, key material and the (deliberately cross-query) query-pattern
history stay shared.

Two axes of parallelism:

* ``execute_many(..., mode="process")`` fans whole sessions across a
  persistent worker-process pool, so independent queries use multiple
  cores despite the GIL (thread mode only overlaps link latency).  A
  request's randomness streams are salted by its *request id*, not by
  which worker serves it, so a process-mode batch is replay-identical
  to the same batch run sequentially.
* ``s2_workers > 0`` attaches a :class:`~repro.crypto.parallel.ComputePool`
  to every session's crypto cloud, so a *single* query's coalesced
  per-depth decrypt batches are chunked across processes too.  Pick the
  axis that matches the workload shape (many small queries → process
  mode; few large queries → ``s2_workers``): process-mode worker
  sessions deliberately run without the S2 pool, so the two never
  oversubscribe cores with nested pools.

``rtt_ms`` adds a simulated per-round link latency (the two clouds live
at different providers in the paper's deployment model), which is what
makes concurrency wins measurable on few-core machines.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.core.relation import EncryptedRelation
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.core.token import Token
from repro.crypto import backend
from repro.crypto.parallel import ComputePool, make_pool_executor, pool_start_method
from repro.net.channel import ChannelStats
from repro.net.socket_transport import is_socket_address
from repro.protocols.base import LeakageLog, S1Context

# The relation store: (scheme, relation) pairs keyed by relation id, with
# the blob each spawn-started worker needs pickled at most once.  In the
# parent it is refcounted by the servers that exported into it; in a
# worker it is either *inherited whole* (fork — entries travel with the
# address space, no pickling, no transfer) or filled from the
# initializer's one-time payload (spawn).  Either way repeated batches,
# grown/rebuilt pools, and sibling servers over the same relation all
# reuse the cached entry instead of re-shipping megabytes of ciphertexts.
_RELATION_STORE: dict[str, tuple[SecTopK, EncryptedRelation]] = {}
_RELATION_REFS: dict[str, int] = {}
_RELATION_BLOBS: dict[str, bytes] = {}
_STORE_LOCK = threading.Lock()

# Worker-process query state, installed by the pool initializer.
_QUERY_WORKER: dict = {}


def _export_relation(scheme: SecTopK, relation: EncryptedRelation) -> str:
    """Pin (scheme, relation) in the parent-side store; returns its key."""
    key = relation.relation_id()
    with _STORE_LOCK:
        if key in _RELATION_STORE:
            # A second server over the same relation (possibly holding a
            # pickled copy of the same objects — interchangeable: the id
            # pins identical ciphertexts and key material) shares the
            # existing export.
            _RELATION_REFS[key] += 1
        else:
            _RELATION_STORE[key] = (scheme, relation)
            _RELATION_REFS[key] = 1
    return key


def _release_relation(key: str) -> None:
    with _STORE_LOCK:
        refs = _RELATION_REFS.get(key)
        if refs is None:
            return
        if refs <= 1:
            del _RELATION_REFS[key]
            _RELATION_STORE.pop(key, None)
            _RELATION_BLOBS.pop(key, None)
        else:
            _RELATION_REFS[key] = refs - 1


def _relation_blob(key: str) -> bytes:
    """The pickled (scheme, relation) payload, serialized at most once."""
    with _STORE_LOCK:
        blob = _RELATION_BLOBS.get(key)
        if blob is None:
            blob = pickle.dumps(
                _RELATION_STORE[key], protocol=pickle.HIGHEST_PROTOCOL
            )
            _RELATION_BLOBS[key] = blob
    return blob


def _init_query_worker(relation_key, payload, transport, rtt_ms, backend_name) -> None:
    backend.set_backend(backend_name)
    entry = _RELATION_STORE.get(relation_key)
    if entry is None:
        # Spawn-started worker: install the shipped blob; later pool
        # rebuilds over the same relation find it cached here.
        entry = pickle.loads(payload)
        _RELATION_STORE[relation_key] = entry
    _QUERY_WORKER["scheme"], _QUERY_WORKER["relation"] = entry
    _QUERY_WORKER["transport"] = transport
    _QUERY_WORKER["rtt_ms"] = rtt_ms


def _run_salted_query(
    scheme,
    relation,
    transport: str,
    rtt_ms: float,
    compute,
    salt: str,
    token: Token,
    config: QueryConfig | None,
) -> QueryResult:
    """One salted query with leakage attached — the single body behind
    both the in-process path and the worker path, so the two can never
    drift apart (process-mode replay identity depends on them matching).
    """
    ctx = scheme.make_clouds(
        transport=transport, salt=salt, compute=compute, rtt_ms=rtt_ms,
        relation=relation,
    )
    try:
        result = scheme.query(relation, token, config, ctx=ctx)
        result.leakage_events = list(ctx.leakage.events)
        return result
    finally:
        ctx.close()


def _run_query(
    salt: str,
    token: Token,
    config: QueryConfig | None,
    prior_patterns: frozenset,
) -> QueryResult:
    scheme = _QUERY_WORKER["scheme"]
    # The parent ships exactly the query-pattern history a sequential run
    # would see at this request (server history + earlier batch-mates), so
    # the L1 repeat bit is deterministic no matter which worker serves it.
    scheme.reset_query_history(prior_patterns)
    return _run_salted_query(
        scheme,
        _QUERY_WORKER["relation"],
        _QUERY_WORKER["transport"],
        _QUERY_WORKER["rtt_ms"],
        None,
        salt,
        token,
        config,
    )


class QuerySession:
    """One client's query context on a :class:`TopKServer`."""

    def __init__(self, server: "TopKServer", ctx: S1Context, session_id: int):
        self._server = server
        self._ctx = ctx
        self.session_id = session_id
        self.closed = False

    # -- querying --------------------------------------------------------

    def query(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one secure top-k query inside this session."""
        if self.closed:
            raise RuntimeError("session is closed")
        return self._server.scheme.query(
            self._server.relation, token, config, ctx=self._ctx
        )

    # -- per-session observability ---------------------------------------

    @property
    def leakage(self) -> LeakageLog:
        """This session's leakage log (no cross-session events)."""
        return self._ctx.leakage

    @property
    def channel_stats(self) -> ChannelStats:
        """Cumulative traffic of this session's channel."""
        return self._ctx.channel.snapshot()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the session's transport (idempotent)."""
        if not self.closed:
            self.closed = True
            self._ctx.close()
            self._server._forget(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TopKServer:
    """Serves top-k queries over one encrypted relation.

    Parameters
    ----------
    transport:
        Per-session transport backend (``"inprocess"`` or
        ``"threaded"``) or the address of a standalone S2 daemon
        (``"tcp://host:port"`` / ``"unix:///path"``).  Remote sessions
        multiplex over one shared connection per process; the first
        session registers the relation's key material with the daemon
        and every later one — including process-mode worker sessions —
        opens by relation id alone.
    rtt_ms:
        Simulated link round-trip latency added to every exchange.
    s2_workers:
        When positive, one shared :class:`ComputePool` of that many
        worker processes serves every session's crypto cloud, chunking
        large decrypt batches across cores.  Local transports only: a
        remote daemon configures its own pool (``--s2-workers``).
    """

    def __init__(
        self,
        scheme: SecTopK,
        relation: EncryptedRelation,
        transport: str = "inprocess",
        rtt_ms: float = 0.0,
        s2_workers: int = 0,
    ):
        self.scheme = scheme
        self.relation = relation
        self.transport = transport
        self.rtt_ms = rtt_ms
        # Scheme-wide unique namespace: request salts from different
        # servers sharing one scheme must never collide (a collision
        # would replay blinding/permutation streams across queries).
        self._salt_namespace = scheme.context_namespace()
        if s2_workers > 0 and is_socket_address(transport):
            raise ValueError(
                "s2_workers configures a local compute pool; a remote S2 "
                "daemon owns its own (start it with --s2-workers)"
            )
        self._compute = (
            ComputePool(scheme.keypair, scheme.dj, workers=s2_workers)
            if s2_workers > 0
            else None
        )
        # Pin the relation in the process-wide store: forked query
        # workers inherit it outright, spawn-started ones receive its
        # cached pickle — either way repeated batches and rebuilt pools
        # never re-ship the ciphertexts.
        self._relation_key = _export_relation(scheme, relation)
        self._session_lock = threading.Lock()
        self._session_counter = 0
        self._sessions: list[QuerySession] = []
        self._query_pool: ProcessPoolExecutor | None = None
        self._query_pool_workers = 0
        self._query_pool_active = 0  # in-flight process batches
        self._closed = False

    # -- sessions --------------------------------------------------------

    def _reserve_ids(self, count: int) -> range:
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            start = self._session_counter
            self._session_counter += count
        return range(start, start + count)

    def session(self) -> QuerySession:
        """Open a fresh, isolated query session.

        Session setup is serialized (it draws from the scheme's root
        randomness); the returned session can then run queries
        concurrently with other sessions.
        """
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            session_id = self._session_counter
            self._session_counter += 1
            ctx = self.scheme.make_clouds(
                transport=self.transport,
                label=f":session-{session_id}",
                compute=self._compute,
                rtt_ms=self.rtt_ms,
                relation=self.relation,
            )
            session = QuerySession(self, ctx, session_id)
            self._sessions.append(session)
            return session

    def _forget(self, session: QuerySession) -> None:
        """Drop a closed session so long-lived servers don't accumulate."""
        with self._session_lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    # -- one-shot and bulk execution -------------------------------------

    def execute(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one query in a throwaway session."""
        with self.session() as session:
            return session.query(token, config)

    def _request_salt(self, request_id: int) -> str:
        # The salt is a pure function of (server namespace, request id),
        # so the same batch produces the same randomness streams in every
        # execution mode (sequential, thread pool, process pool) while
        # distinct servers on one scheme draw disjoint streams.
        return f":{self._salt_namespace}-request-{request_id}#"

    def _execute_salted(
        self, token: Token, config: QueryConfig | None, salt: str
    ) -> QueryResult:
        return _run_salted_query(
            self.scheme,
            self.relation,
            self.transport,
            self.rtt_ms,
            self._compute,
            salt,
            token,
            config,
        )

    def execute_many(
        self,
        requests: list[tuple[Token, QueryConfig | None]],
        concurrency: int = 1,
        mode: str = "thread",
    ) -> list[QueryResult]:
        """Run many queries, ``concurrency`` workers at a time.

        ``mode="thread"`` fans sessions over a thread pool: big-int
        crypto holds the GIL, so threads overlap link latency only.
        ``mode="process"`` fans them over a persistent worker-process
        pool — real multi-core execution.  Results come back in request
        order either way, each carrying its session's
        ``leakage_events``; randomness streams are salted per request
        id, so sequential and process modes produce identical results
        and leakage (each worker receives the exact query-pattern
        history a sequential run would see at its request; the parent's
        history is re-synced after the batch).  Thread mode matches on
        results too, but for a batch that *repeats* a token the
        query-pattern bit lands on whichever duplicate the scheduler
        runs first — threads share the live history.

        ``concurrency <= 1`` always runs sequentially in this process
        (no worker pool, the S2 compute pool still applies) — with one
        request at a time there is no parallelism for a worker process
        to add, and the execution is replay-identical by construction.
        """
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown execute_many mode: {mode!r}")
        if not requests:
            return []
        salts = [self._request_salt(i) for i in self._reserve_ids(len(requests))]
        if mode == "process" and concurrency > 1 and len(requests) > 1:
            # Never build a wider pool than there is work to fill it.
            return self._execute_many_process(
                requests, salts, min(concurrency, len(requests))
            )
        if concurrency <= 1 or mode == "process":
            # Sequential (also where a process batch is too small for a
            # pool — never silently downgrade process mode to threads).
            return [
                self._execute_salted(token, config, salt)
                for (token, config), salt in zip(requests, salts)
            ]
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [
                pool.submit(self._execute_salted, token, config, salt)
                for (token, config), salt in zip(requests, salts)
            ]
            return [future.result() for future in futures]

    def _acquire_query_executor(self, workers: int) -> ProcessPoolExecutor:
        """The persistent query-worker pool, grown to ``workers`` when idle.

        Growth replaces the pool, which is only safe with no in-flight
        batch (a shutdown would cancel another thread's futures); while
        batches are active the existing — possibly smaller — pool is
        reused, and the per-batch submission semaphore still enforces the
        caller's concurrency cap either way.  Pool construction (forking
        and warming N workers, pickling the scheme and relation to each)
        happens *outside* the lock so sessions and other batches never
        block on a multi-second spin-up; a racing builder's spare pool is
        discarded.  Callers must pair with :meth:`_release_query_executor`.
        """
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._query_pool is not None:
                if self._query_pool_workers >= workers or self._query_pool_active > 0:
                    self._query_pool_active += 1
                    return self._query_pool
                # Idle and smaller than requested: retire, rebuild below.
                self._query_pool.shutdown(wait=False)
                self._query_pool = None
        # Fork-started workers inherit the relation store with the
        # address space — the initializer payload stays empty; only a
        # spawn platform ships the (cached, pickled-once) blob.
        payload = (
            None
            if pool_start_method() == "fork"
            else _relation_blob(self._relation_key)
        )
        new_pool = make_pool_executor(
            workers,
            _init_query_worker,
            (
                self._relation_key,
                payload,
                self.transport,
                self.rtt_ms,
                backend.get_backend().name,
            ),
        )
        with self._session_lock:
            if self._closed:
                new_pool.shutdown(wait=False, cancel_futures=True)
                raise RuntimeError("server is closed")
            if self._query_pool is None:
                self._query_pool = new_pool
                self._query_pool_workers = workers
            else:
                new_pool.shutdown(wait=False)  # a concurrent builder won
            self._query_pool_active += 1
            return self._query_pool

    def _release_query_executor(self) -> None:
        with self._session_lock:
            self._query_pool_active -= 1

    def _execute_many_process(self, requests, salts, concurrency) -> list[QueryResult]:
        executor = self._acquire_query_executor(concurrency)
        try:
            # Sequential repeat semantics, precomputed: request i's history
            # is the server history plus the fingerprints of requests
            # 0..i-1.
            seen = set(self.scheme.query_pattern_snapshot())
            priors = []
            for token, _ in requests:
                priors.append(frozenset(seen))
                seen.add(token.fingerprint())
            # The semaphore caps *this batch's* parallelism at the
            # requested concurrency even when the shared pool is wider.
            slots = threading.Semaphore(concurrency)
            futures = []
            try:
                for (token, config), salt, prior in zip(requests, salts, priors):
                    slots.acquire()
                    future = executor.submit(_run_query, salt, token, config, prior)
                    future.add_done_callback(lambda _f: slots.release())
                    futures.append(future)
                return [future.result() for future in futures]
            finally:
                # Worker history copies are per-task scratch; fold the
                # batch into the parent's authoritative query-pattern
                # history even when a request fails — sequential execution
                # records each fingerprint at query start, and a submitted
                # task runs to completion in its worker regardless of
                # siblings.  zip() truncates to what was actually
                # submitted (a mid-batch submit failure leaves the rest
                # unsent); cancelled futures (server closed mid-batch)
                # and broken-pool casualties (worker process died — its
                # query may never have started) stay out.  wait() settles
                # stragglers first so exception() never blocks.
                wait(futures)
                self.scheme.record_query_patterns(
                    [
                        token
                        for (token, _), future in zip(requests, futures)
                        if not future.cancelled()
                        and not isinstance(future.exception(), BrokenProcessPool)
                    ]
                )
        finally:
            self._release_query_executor()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close every session and worker pool this server opened.

        Closing while a process batch is in flight cancels its pending
        futures (that batch's ``execute_many`` raises) — an explicit
        shutdown outranks in-flight work.
        """
        with self._session_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions)
            self._sessions.clear()
            pool, self._query_pool = self._query_pool, None
            self._query_pool_workers = 0
            compute, self._compute = self._compute, None
        for session in sessions:
            session.close()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if compute is not None:
            compute.close()
        _release_relation(self._relation_key)

    def __enter__(self) -> "TopKServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

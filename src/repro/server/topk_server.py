"""Multi-query server front-end for one encrypted relation.

A :class:`TopKServer` owns one :class:`~repro.core.relation.EncryptedRelation`
plus the S2 connection recipe, and serves many sequential or concurrent
:class:`QuerySession`\\ s.  Each session gets its own accounting channel,
leakage log, randomness streams and transport — so per-query channel
statistics and leakage records never bleed across queries — while the
relation, key material and the (deliberately cross-query) query-pattern
history stay shared.

This is the deployment shape the ROADMAP's production goal asks for:
S1 as a long-lived query service in front of a crypto-cloud link, with
``execute_many`` fanning sessions over a thread pool.  Pure-Python
big-int crypto holds the GIL, so thread concurrency here buys latency
overlap on the (simulated) link rather than CPU parallelism; the
session isolation is what a multi-process or remote deployment would
reuse unchanged.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.relation import EncryptedRelation
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.core.token import Token
from repro.net.channel import ChannelStats
from repro.protocols.base import LeakageLog, S1Context


class QuerySession:
    """One client's query context on a :class:`TopKServer`."""

    def __init__(self, server: "TopKServer", ctx: S1Context, session_id: int):
        self._server = server
        self._ctx = ctx
        self.session_id = session_id
        self.closed = False

    # -- querying --------------------------------------------------------

    def query(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one secure top-k query inside this session."""
        if self.closed:
            raise RuntimeError("session is closed")
        return self._server.scheme.query(
            self._server.relation, token, config, ctx=self._ctx
        )

    # -- per-session observability ---------------------------------------

    @property
    def leakage(self) -> LeakageLog:
        """This session's leakage log (no cross-session events)."""
        return self._ctx.leakage

    @property
    def channel_stats(self) -> ChannelStats:
        """Cumulative traffic of this session's channel."""
        return self._ctx.channel.snapshot()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the session's transport (idempotent)."""
        if not self.closed:
            self.closed = True
            self._ctx.close()
            self._server._forget(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TopKServer:
    """Serves top-k queries over one encrypted relation."""

    def __init__(
        self,
        scheme: SecTopK,
        relation: EncryptedRelation,
        transport: str = "inprocess",
    ):
        self.scheme = scheme
        self.relation = relation
        self.transport = transport
        self._session_lock = threading.Lock()
        self._session_counter = 0
        self._sessions: list[QuerySession] = []

    # -- sessions --------------------------------------------------------

    def session(self) -> QuerySession:
        """Open a fresh, isolated query session.

        Session setup is serialized (it draws from the scheme's root
        randomness); the returned session can then run queries
        concurrently with other sessions.
        """
        with self._session_lock:
            session_id = self._session_counter
            self._session_counter += 1
            ctx = self.scheme.make_clouds(
                transport=self.transport, label=f":session-{session_id}"
            )
            session = QuerySession(self, ctx, session_id)
            self._sessions.append(session)
            return session

    def _forget(self, session: QuerySession) -> None:
        """Drop a closed session so long-lived servers don't accumulate."""
        with self._session_lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    # -- one-shot and bulk execution -------------------------------------

    def execute(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one query in a throwaway session."""
        with self.session() as session:
            return session.query(token, config)

    def execute_many(
        self,
        requests: list[tuple[Token, QueryConfig | None]],
        concurrency: int = 1,
    ) -> list[QueryResult]:
        """Run many queries, ``concurrency`` sessions at a time.

        Results are returned in request order regardless of completion
        order; every request runs in its own isolated session, opened
        when its worker picks it up and closed when it finishes (at most
        ``concurrency`` sessions are live at once).
        """
        if concurrency <= 1:
            return [self.execute(token, config) for token, config in requests]
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            futures = [
                pool.submit(self.execute, token, config)
                for token, config in requests
            ]
            return [future.result() for future in futures]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close every session this server opened."""
        with self._session_lock:
            sessions = list(self._sessions)
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __enter__(self) -> "TopKServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

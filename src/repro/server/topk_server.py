"""Multi-query server front-end for one encrypted relation.

A :class:`TopKServer` owns one :class:`~repro.core.relation.EncryptedRelation`
plus the S2 connection recipe.  Since the client-API redesign it is a
*job scheduler*: :meth:`TopKServer.submit` places a
:class:`~repro.server.jobs.QueryJob` on a bounded queue serviced by a
small pool of scheduler workers, each job resolving asynchronously with
per-job deadline and cooperative cancellation at round boundaries.
:meth:`TopKServer.execute` and :meth:`TopKServer.execute_many` are thin
compatibility wrappers over the same queue, so within this release
every execution mode — one-shot, submitted, thread-windowed batch,
worker-process batch — produces bit-identical transcripts for the same
request position (request salts are a pure function of the request id;
one-shot ``execute`` previously drew a session-counter salt, so its
randomness stream — not its results — differs from pre-scheduler
releases).

Long-lived interactive callers can still open an isolated
:class:`QuerySession`; sessions bypass the job queue (they hold their
own transport) but share the relation, key material and the
deliberately cross-query query-pattern history.

Two axes of parallelism:

* ``execute_many(..., mode="process")`` fans whole jobs across a
  persistent worker-process pool, so independent queries use multiple
  cores despite the GIL (thread mode only overlaps link latency).  A
  request's randomness streams are salted by its *request id*, not by
  which worker serves it, so a process-mode batch is replay-identical
  to the same batch run sequentially.
* ``s2_workers > 0`` attaches a :class:`~repro.crypto.parallel.ComputePool`
  to every job's crypto cloud, so a *single* query's coalesced
  per-depth decrypt batches are chunked across processes too.  Pick the
  axis that matches the workload shape (many small queries → process
  mode; few large queries → ``s2_workers``): process-mode worker
  jobs deliberately run without the S2 pool, so the two never
  oversubscribe cores with nested pools.

``rtt_ms`` adds a simulated per-round link latency (the two clouds live
at different providers in the paper's deployment model), which is what
makes concurrency wins measurable on few-core machines.
"""

from __future__ import annotations

import contextlib
import copy
import hashlib
import json
import os
import pickle
import queue
import threading
from concurrent.futures import CancelledError, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

from repro.core.relation import EncryptedRelation
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.core.token import Token
from repro.crypto import backend
from repro.crypto.parallel import (
    ComputePool,
    make_pool_executor,
    observe_batches,
    pool_start_method,
)
from repro.events import PoolBatch, TopKChanged
from repro.exceptions import (
    JobCancelled,
    JobTimeout,
    MutationError,
    QueryError,
    StaleRelationError,
    TransportError,
)
from repro.net.channel import ChannelStats
from repro.net.socket_transport import client_for, is_socket_address, shard_client_for
from repro.obs.exporter import HealthState, MetricsExporter
from repro.obs.metrics import REGISTRY
from repro.protocols.base import LeakageEvent, LeakageLog, S1Context, owned_context
from repro.server.jobs import JobStatus, QueryJob, WatchJob, WatchSummary
from repro.server.mutations import MutableRelation, MutationResult, mutation_delta
from repro.server.query_cache import QueryCache
from repro.server.rendezvous import CoalescingTransport, ScanRendezvous
from repro.server.sharding import invalidate_slices

_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_scheduler_queue_depth",
    "Jobs waiting in the bounded scheduler queue (admitted, not started).",
)
_JOBS_ACTIVE = REGISTRY.gauge(
    "repro_scheduler_jobs_active",
    "Jobs admitted and not yet finished (queued + running).",
)
_MUTATIONS = REGISTRY.counter(
    "repro_mutations_total",
    "Encrypted-relation mutations applied, by operation.",
    labelnames=("op",),
)
_WATCHES_ACTIVE = REGISTRY.gauge(
    "repro_watches_active",
    "Continuous top-k watch jobs currently live.",
)
_WATCH_EVALUATIONS = REGISTRY.counter(
    "repro_watch_evaluations_total",
    "Top-k re-evaluations run by watch jobs.",
)
_WATCH_CHANGES = REGISTRY.counter(
    "repro_watch_changes_total",
    "TopKChanged events emitted by watch jobs.",
)

# The relation store: (scheme, relation) pairs keyed by relation id, with
# the blob each spawn-started worker needs pickled at most once.  In the
# parent it is refcounted by the servers that exported into it; in a
# worker it is either *inherited whole* (fork — entries travel with the
# address space, no pickling, no transfer) or filled from the
# initializer's one-time payload (spawn).  Either way repeated batches,
# grown/rebuilt pools, and sibling servers over the same relation all
# reuse the cached entry instead of re-shipping megabytes of ciphertexts.
_RELATION_STORE: dict[str, tuple[SecTopK, EncryptedRelation]] = {}
_RELATION_REFS: dict[str, int] = {}
_RELATION_BLOBS: dict[str, bytes] = {}
_STORE_LOCK = threading.Lock()

# Worker-process query state, installed by the pool initializer.
_QUERY_WORKER: dict = {}


def _export_relation(scheme: SecTopK, relation: EncryptedRelation) -> str:
    """Pin (scheme, relation) in the parent-side store; returns its key."""
    key = relation.relation_id()
    with _STORE_LOCK:
        if key in _RELATION_STORE:
            # A second server over the same relation (possibly holding a
            # pickled copy of the same objects — interchangeable: the id
            # pins identical ciphertexts and key material) shares the
            # existing export.
            _RELATION_REFS[key] += 1
        else:
            _RELATION_STORE[key] = (scheme, relation)
            _RELATION_REFS[key] = 1
    return key


def _release_relation(key: str) -> None:
    with _STORE_LOCK:
        refs = _RELATION_REFS.get(key)
        if refs is None:
            return
        if refs <= 1:
            del _RELATION_REFS[key]
            _RELATION_STORE.pop(key, None)
            _RELATION_BLOBS.pop(key, None)
        else:
            _RELATION_REFS[key] = refs - 1


def _relation_blob(key: str) -> bytes:
    """The pickled (scheme, relation) payload, serialized at most once."""
    with _STORE_LOCK:
        blob = _RELATION_BLOBS.get(key)
        if blob is None:
            blob = pickle.dumps(
                _RELATION_STORE[key], protocol=pickle.HIGHEST_PROTOCOL
            )
            _RELATION_BLOBS[key] = blob
    return blob


def _init_query_worker(relation_key, payload, transport, rtt_ms, backend_name) -> None:
    backend.set_backend(backend_name)
    entry = _RELATION_STORE.get(relation_key)
    if entry is None:
        # Spawn-started worker: install the shipped blob; later pool
        # rebuilds over the same relation find it cached here.
        entry = pickle.loads(payload)
        _RELATION_STORE[relation_key] = entry
    _QUERY_WORKER["scheme"], _QUERY_WORKER["relation"] = entry
    _QUERY_WORKER["transport"] = transport
    _QUERY_WORKER["rtt_ms"] = rtt_ms


def _window_stream(rows, oids) -> str:
    """Randomness-stream label for one sliding-window encryption.

    A pure function of the window's plaintext content, so re-encrypting
    an unchanged window replays the same stream (identical ciphertexts,
    a declared property of windowed watches) while any content change
    lands on an independent stream — never sharing Paillier randomness
    across different plaintexts, and never touching the base relation's
    ``"enc"`` upload stream.
    """
    digest = hashlib.sha256(repr((rows, oids)).encode("utf-8"))
    return f"window-{digest.hexdigest()[:16]}"


def _run_salted_query(
    scheme,
    relation,
    transport: str,
    rtt_ms: float,
    compute,
    salt: str,
    token: Token,
    config: QueryConfig | None,
    on_event=None,
    control=None,
    session_label: str | None = None,
    shard_executor=None,
    transport_wrap=None,
    shard_placement: tuple[str, ...] | None = None,
) -> QueryResult:
    """One salted query with leakage attached — the single body behind
    both the in-process path and the worker path, so the two can never
    drift apart (process-mode replay identity depends on them matching).

    ``on_event`` / ``control`` are the job hooks (progress streaming,
    cooperative cancellation); they are observations only, so a hooked
    run is transcript-identical to a bare one.  ``transport_wrap``
    interposes on the context's link (the scan rendezvous rides here).
    When the query fails, a dead transport's secondary close error is
    suppressed so the original failure surfaces undisturbed.
    """
    ctx = scheme._make_context(
        transport=transport, salt=salt, compute=compute, rtt_ms=rtt_ms,
        relation=relation, on_event=on_event, control=control,
        session_label=session_label, transport_wrap=transport_wrap,
    )
    with owned_context(ctx):
        # scheme._query attaches the per-query leakage slice itself; on
        # this fresh context that slice is the whole session log.
        return scheme.query(
            relation, token, config, ctx=ctx, shard_executor=shard_executor,
            shard_placement=shard_placement,
        )


def _run_query(
    salt: str,
    token: Token,
    config: QueryConfig | None,
    prior_patterns: frozenset,
) -> QueryResult:
    scheme = _QUERY_WORKER["scheme"]
    # The parent ships exactly the query-pattern history a sequential run
    # would see at this request (server history + earlier batch-mates), so
    # the L1 repeat bit is deterministic no matter which worker serves it.
    scheme.reset_query_history(prior_patterns)
    return _run_salted_query(
        scheme,
        _QUERY_WORKER["relation"],
        _QUERY_WORKER["transport"],
        _QUERY_WORKER["rtt_ms"],
        None,
        salt,
        token,
        config,
    )


class QuerySession:
    """One client's query context on a :class:`TopKServer`."""

    def __init__(self, server: "TopKServer", ctx: S1Context, session_id: int):
        self._server = server
        self._ctx = ctx
        self.session_id = session_id
        self.closed = False
        #: Relation version this session pinned at open.  A session's
        #: context captured the relation object (and, for remote
        #: transports, its daemon registration), so queries after a
        #: mutation would silently run against the predecessor — they
        #: raise :class:`~repro.exceptions.StaleRelationError` instead.
        self.version = server.relation.version

    # -- querying --------------------------------------------------------

    def query(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one secure top-k query inside this session."""
        if self.closed:
            raise RuntimeError("session is closed")
        current = self._server.relation.version
        if current != self.version:
            raise StaleRelationError(self.version, current)
        config = self._server._effective_config(config)
        return self._server.scheme.query(
            self._server.relation,
            token,
            config,
            ctx=self._ctx,
            shard_executor=self._server._shard_executor(config),
            shard_placement=self._server.shard_placement,
        )

    # -- per-session observability ---------------------------------------

    @property
    def leakage(self) -> LeakageLog:
        """This session's leakage log (no cross-session events)."""
        return self._ctx.leakage

    @property
    def channel_stats(self) -> ChannelStats:
        """Cumulative traffic of this session's channel."""
        return self._ctx.channel.snapshot()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the session's transport.

        Idempotent, and safe when the daemon connection already died: a
        dead link's secondary :class:`~repro.exceptions.PeerDisconnected`
        is swallowed here so it can never mask the error that killed the
        connection in the first place.  The session is forgotten by the
        server either way.
        """
        if self.closed:
            return
        self.closed = True
        try:
            with contextlib.suppress(TransportError):
                self._ctx.close()
        finally:
            self._server._forget(self)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TopKServer:
    """Serves top-k queries over one encrypted relation.

    Parameters
    ----------
    transport:
        Per-job transport backend (``"inprocess"`` or ``"threaded"``)
        or the address of a standalone S2 daemon (``"tcp://host:port"``
        / ``"unix:///path"``).  Remote sessions multiplex over one
        shared connection per process; the first one registers the
        relation's key material with the daemon and every later one —
        including process-mode worker jobs — opens by relation id alone.
    rtt_ms:
        Simulated link round-trip latency added to every exchange.
    s2_workers:
        When positive, one shared :class:`ComputePool` of that many
        workers serves every job's crypto cloud, chunking large decrypt
        batches across cores.  Local transports only: a remote daemon
        configures its own pool (``--s2-workers``).
    s2_mode:
        Compute-pool flavour: ``"thread"`` (GIL-free kernel threads,
        zero IPC), ``"process"`` (worker processes with shared-memory
        chunk transport), or ``"auto"`` (thread when the compiled
        ``gmp-kernel`` is available, else process).  Ignored when
        ``s2_workers == 0``.
    max_pending:
        Bound of the job queue.  A full queue applies backpressure:
        :meth:`submit` blocks until a scheduler worker frees a slot.
    scheduler_workers:
        Cap on concurrently running scheduler threads.  Workers spawn
        on demand up to this cap and retire when the queue drains;
        ``execute_many`` raises the effective cap to its requested
        concurrency for the duration of a batch.
    shards:
        Default S1 shard-worker count for every query this server runs
        (``QueryConfig(shards=...)`` overrides per query; ``0`` keeps
        the single-worker scan).  With ``shards >= 2`` each query's
        sorted lists are split into contiguous depth slices served by
        shard workers whose slice preparation and window assembly the
        scheduler places on its shard-worker pool; the fan-in merge
        keeps the S2-visible transcript bit-identical to unsharded
        execution (see :mod:`repro.server.sharding`).

        **Placement form**: a sequence of shard-daemon addresses
        (``shards=["tcp://h1:p", "tcp://h2:p"]``) makes the shard
        workers *remote* — the plan's slices are uploaded once to
        :mod:`repro.server.shard_service` daemons (shard ``s`` on
        address ``s % len(addresses)``) and every check window's depth
        batches return over multiplexed shard sessions, converging in
        the same fan-in stage.  The shard count defaults to the number
        of addresses (``QueryConfig(shards=N)`` still overrides the
        count; the placement sticks).  Transcript-identical to local
        threads; mutations delta-sync the remote slices
        (:func:`repro.server.mutations.mutation_delta`).  Note
        ``execute_many(mode="process")`` workers run their shards
        locally — transcript-identical by the same invariant.
    cache:
        Leakage-aware result cache (default on): a repeat of a query the
        server already answered — same relation, token fingerprint and
        config — is served as a deep copy of the stored result with
        **zero** S2 round-trips.  Legal because the repeat itself is
        already L1 leakage (``query_pattern``); see
        :mod:`repro.server.query_cache` for the full argument.
        ``QueryConfig(cache=False)`` opts a single query out both ways
        (never served from, never stored into); ``cache=False`` here
        disables the cache entirely.  Sessions always run fresh — a
        session owns a live protocol context whose per-session
        accounting a cache hit would falsify.
    cache_capacity:
        LRU bound of the result cache (entries).
    coalesce_ms:
        Scan-rendezvous window (default 0 = off): with ``N >= 2``
        concurrent jobs running, a job reaching a round boundary holds
        the door this many milliseconds for the others, and the group's
        S2 requests go out as one combined round-trip (per-job
        transcripts stay bit-identical to solo runs; see
        :mod:`repro.server.rendezvous`).  Pick a couple of milliseconds
        — enough for scheduling jitter, far below an RTT.
    warm_start:
        Make every query warm-start by default (as if
        ``QueryConfig(warm_start=True)``): the engine's first halting
        check is anchored at the earliest halting depth this relation's
        history has shown (itself L1 leakage), skipping rounds that
        history says cannot halt.  Never changes the returned top-k set.
    metrics_port:
        When set, serve the process-wide metrics registry as Prometheus
        text at ``http://127.0.0.1:PORT/metrics`` (``0`` picks a free
        port — read it back from :attr:`metrics_port`), plus a
        ``/healthz`` endpoint that flips to draining on :meth:`drain` /
        :meth:`close`.  ``None`` (default) starts no exporter;
        instrumentation is recorded either way.
    """

    _IDLE_TTL = 0.5  # seconds a scheduler worker waits before retiring

    def __init__(
        self,
        scheme: SecTopK,
        relation: EncryptedRelation | MutableRelation,
        transport: str = "inprocess",
        rtt_ms: float = 0.0,
        s2_workers: int = 0,
        s2_mode: str = "auto",
        max_pending: int = 128,
        scheduler_workers: int = 8,
        shards: int | list[str] | tuple[str, ...] = 0,
        cache: bool = True,
        cache_capacity: int = 256,
        coalesce_ms: float = 0.0,
        warm_start: bool = False,
        metrics_port: int | None = None,
        state_dir: str | None = None,
    ):
        self.scheme = scheme
        # A MutableRelation makes this server writable: insert/update/
        # delete and windowed watches route through the wrapped handle,
        # and `self.relation` always aliases its current successor.
        if isinstance(relation, MutableRelation):
            self._mutable: MutableRelation | None = relation
            relation = relation.relation
        else:
            self._mutable = None
        self.relation = relation
        self.transport = transport
        self.rtt_ms = rtt_ms
        # Validate the cheap parameters before acquiring any resource
        # (compute pool, relation-store pin) — a half-constructed server
        # has no reachable close().
        if s2_workers > 0 and is_socket_address(transport):
            raise ValueError(
                "s2_workers configures a local compute pool; a remote S2 "
                "daemon owns its own (start it with --s2-workers)"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if scheduler_workers < 1:
            raise ValueError("scheduler_workers must be >= 1")
        if isinstance(shards, (list, tuple)):
            # Placement form: remote shard-worker daemons.  The shard
            # count defaults to one shard per daemon (QueryConfig can
            # still raise it; the round-robin placement spreads extras).
            if not shards:
                raise ValueError("shard placement must name at least one address")
            for address in shards:
                if not is_socket_address(address):
                    raise ValueError(
                        f"shard placement entries must be socket addresses "
                        f"(tcp:// or unix://), got {address!r}"
                    )
            self.shard_placement: tuple[str, ...] | None = tuple(shards)
            # A single-daemon placement still shards (the scan only goes
            # remote through the sharded path, which needs >= 2 slices).
            shards = max(2, len(self.shard_placement))
        else:
            if shards < 0:
                raise ValueError("shards must be >= 0")
            self.shard_placement = None
        if coalesce_ms < 0:
            raise ValueError("coalesce_ms must be >= 0")
        if cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        self.shards = shards
        self.warm_start = warm_start
        self.coalesce_ms = coalesce_ms
        # Cross-query reuse layer: result cache + scan rendezvous (see
        # ARCHITECTURE.md, reuse layer).
        self._cache = QueryCache(cache_capacity) if cache else None
        self._rendezvous = ScanRendezvous(coalesce_ms) if coalesce_ms > 0 else None
        # Shard-worker thread pool, created on the first sharded job and
        # shared by every job/session of this server (the scheduler's
        # placement target for shard slice preparation and window
        # assembly).
        self._shard_pool = None
        # Scheme-wide unique namespace: request salts from different
        # servers sharing one scheme must never collide (a collision
        # would replay blinding/permutation streams across queries).
        self._salt_namespace = scheme.context_namespace()
        self._compute = (
            ComputePool(scheme.keypair, scheme.dj, workers=s2_workers, mode=s2_mode)
            if s2_workers > 0
            else None
        )
        # Pin the relation in the process-wide store: forked query
        # workers inherit it outright, spawn-started ones receive its
        # cached pickle — either way repeated batches and rebuilt pools
        # never re-ship the ciphertexts.
        self._relation_key = _export_relation(scheme, relation)
        # Warm-start depth history persistence (``--state-dir`` twin of
        # the daemon's registration spill): load any prior observations
        # for this exact relation content now, spill after fresh results.
        self._state_dir = state_dir
        self._load_depth_spill()
        self._session_lock = threading.Lock()
        self._session_counter = 0
        self._sessions: list[QuerySession] = []
        # -- mutation / watch state --
        self._mutation_lock = threading.Lock()
        self._mutation_count = 0
        self._watches: set[WatchJob] = set()
        self._query_pool: ProcessPoolExecutor | None = None
        self._query_pool_workers = 0
        self._query_pool_active = 0  # in-flight process batches
        self._closed = False
        # -- job scheduler state --
        self._job_queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._scheduler_cap = scheduler_workers
        self._scheduler_lock = threading.Lock()
        self._scheduler_threads = 0
        self._scheduler_thread_objs: set[threading.Thread] = set()
        self._jobs_active = 0
        self._running_jobs: set[QueryJob] = set()
        # -- observability --
        # Exporter last: every other resource is attached, so a port
        # failure here leaves a server that close() can fully unwind.
        self._health = HealthState()
        self._exporter: MetricsExporter | None = None
        if metrics_port is not None:
            exporter = MetricsExporter(port=metrics_port, health=self._health)
            try:
                exporter.start()
            except BaseException:
                self.close()
                raise
            self._exporter = exporter

    # -- sessions --------------------------------------------------------

    def _reserve_ids(self, count: int) -> range:
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            start = self._session_counter
            self._session_counter += count
        return range(start, start + count)

    def session(self) -> QuerySession:
        """Open a fresh, isolated query session.

        Session setup is serialized (it draws from the scheme's root
        randomness); the returned session can then run queries
        concurrently with other sessions.
        """
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            session_id = self._session_counter
            self._session_counter += 1
            ctx = self.scheme._make_context(
                transport=self.transport,
                label=f":session-{session_id}",
                compute=self._compute,
                rtt_ms=self.rtt_ms,
                relation=self.relation,
            )
            session = QuerySession(self, ctx, session_id)
            self._sessions.append(session)
            return session

    def _forget(self, session: QuerySession) -> None:
        """Drop a closed session so long-lived servers don't accumulate."""
        with self._session_lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    # -- sharding --------------------------------------------------------

    def _effective_config(self, config: QueryConfig | None) -> QueryConfig | None:
        """Fill the server's defaults into an unset config.

        ``QueryConfig(shards=...)`` always wins; a config that leaves
        ``shards`` at ``None`` inherits ``TopKServer(shards=N)``, and
        ``TopKServer(warm_start=True)`` turns warm starts on for every
        query that did not ask for them itself.  The resolution happens
        once, at job creation, so every execution path — inline,
        windowed, worker process, session — sees the same effective
        config.
        """
        if self.shards and (config is None or config.shards is None):
            config = replace(config or QueryConfig(), shards=self.shards)
        if self.warm_start and (config is None or not config.warm_start):
            config = replace(config or QueryConfig(), warm_start=True)
        return config

    #: Thread cap of the lazily-created shard-worker pool.  Sized from
    #: the cap alone — not from whichever sharded job arrives first —
    #: so a later, wider job is never silently squeezed; idle
    #: ThreadPoolExecutor threads are spawned on demand, so an
    #: over-provisioned cap costs nothing.
    _SHARD_POOL_MAX = 8

    def _shard_executor(self, config: QueryConfig | None):
        """The shard-worker pool for a sharded job (``None`` otherwise).

        Created lazily on the first sharded job and shared server-wide
        afterwards — shard tasks are short and window-granular, so one
        modest pool serves concurrent jobs without oversubscribing.
        """
        if config is None or config.effective_shards() < 2:
            return None
        with self._session_lock:
            if self._closed:
                # A job caught mid-shutdown falls back to inline shard
                # fan-out (same transcript); its cooperative cancel then
                # lands at the first round boundary.
                return None
            if self._shard_pool is None:
                self._shard_pool = ThreadPoolExecutor(
                    max_workers=self._SHARD_POOL_MAX,
                    thread_name_prefix=f"topk-shard-{self._salt_namespace}",
                )
            return self._shard_pool

    # -- result cache ----------------------------------------------------

    def _cache_enabled(self, config: QueryConfig | None) -> bool:
        return self._cache is not None and (config is None or config.cache)

    def _cache_key(
        self, token: Token, config: QueryConfig | None, relation_key: str | None = None
    ) -> tuple:
        return QueryCache.key(
            relation_key if relation_key is not None else self._relation_key,
            token.fingerprint(),
            config or QueryConfig(),
        )

    def _scan_cache_key(
        self, token: Token, config: QueryConfig | None, relation_key: str | None = None
    ) -> tuple:
        return QueryCache.scan_key(
            relation_key if relation_key is not None else self._relation_key,
            token.scan_fingerprint(),
            config or QueryConfig(),
        )

    def _cache_lookup(
        self,
        token: Token,
        config: QueryConfig | None,
        relation_key: str | None = None,
    ):
        """Serve a repeat query from the cache, or ``None`` on a miss.

        Exact repeats hit directly; a ``k' < k`` repeat of a query whose
        ``k`` result is cached is served as the first ``k'`` items of
        that result — winners are stored best-first, so the slice is an
        exact top-``k'`` (see :mod:`repro.server.query_cache`).  A
        sliced hit reports ``halting_depth`` 0: the source run's depth
        belongs to the deeper ``k`` scan (a fresh ``k'`` run typically
        halts shallower), so serving it would misattribute metadata to
        a query that never ran.  Exact hits keep their depth — an
        identical query really did halt there.

        A hit is reshaped into what it is: zero S2 traffic, zero scanned
        depths, and exactly the ``query_pattern`` bit a fresh run of the
        same token would have leaked — ``True`` for an exact repeat (an
        identical query already ran), the honest history answer for a
        prefix hit (the ``k'`` token may be new even though its answer
        is not).  The scheme's query-pattern history is still updated so
        later queries see the same L1 state a fresh run would have left
        behind.
        """
        if not self._cache_enabled(config):
            return None
        result, sliced = self._cache.lookup(
            self._cache_key(token, config, relation_key),
            self._scan_cache_key(token, config, relation_key),
            token.k,
        )
        if result is None:
            return None
        repeated = self.scheme.observe_query_pattern(token)
        vars(result).pop("stats", None)  # cached_property of the stored run
        if sliced:
            result.items = result.items[: token.k]
            result.halting_depth = 0
        result.channel_stats = ChannelStats()
        result.leakage_events = [
            LeakageEvent("S1", "SecQuery", "query_pattern", repeated)
        ]
        result.depth_seconds = []
        result.shard_stats = None
        result.cache_hit = True
        result.coalesced_rounds = 0
        result.trace = None  # the serving job attaches its own timeline
        return result

    def _cache_store(
        self,
        token: Token,
        config: QueryConfig | None,
        result,
        relation_key: str | None = None,
    ) -> None:
        """Keep a fresh result for future repeats (deep copy: the caller
        owns — and may mutate — the returned object)."""
        if not self._cache_enabled(config):
            return
        self._cache.put(
            self._cache_key(token, config, relation_key),
            copy.deepcopy(result),
            scan_key=self._scan_cache_key(token, config, relation_key),
            k=token.k,
        )

    def invalidate_cache(self) -> int:
        """Drop every cached result (returns how many were dropped)."""
        return self._cache.clear() if self._cache is not None else 0

    def register_relation(self, relation: EncryptedRelation) -> None:
        """Re-register the relation this server serves.

        Swaps the served relation (typically a re-encrypted or updated
        build) and invalidates every cached result of both the old and
        the new relation id — a re-registration declares the previous
        results stale even when the content fingerprint is unchanged.
        In-flight jobs finish against the relation they started with.
        """
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            old_key = self._relation_key
            self._relation_key = _export_relation(self.scheme, relation)
            self.relation = relation
            new_key = self._relation_key
        if self._cache is not None:
            self._cache.invalidate_relation(old_key)
            if new_key != old_key:
                self._cache.invalidate_relation(new_key)
        _release_relation(old_key)

    # -- mutations -------------------------------------------------------

    @property
    def version(self) -> int:
        """Current relation version (0 for a never-mutated relation)."""
        return self.relation.version

    def insert(self, row) -> MutationResult:
        """Insert one row into the served relation (mutable servers)."""
        return self._apply_mutation("insert", row)

    def update(self, object_id: int, row) -> MutationResult:
        """Replace one row's scores (same object id)."""
        return self._apply_mutation("update", object_id, row)

    def delete(self, object_id: int) -> MutationResult:
        """Remove one row from the served relation."""
        return self._apply_mutation("delete", object_id)

    def mutate(self, op: str, *args) -> MutationResult:
        """String-dispatch spelling of :meth:`insert` / :meth:`update` /
        :meth:`delete` (the wire-friendly form clients use)."""
        if op not in ("insert", "update", "delete"):
            raise MutationError(f"unknown mutation op: {op!r}")
        return self._apply_mutation(op, *args)

    def _apply_mutation(self, op: str, *args) -> MutationResult:
        """Apply one mutation and run the invalidation cascade.

        Under the mutation lock: apply the op to the
        :class:`MutableRelation` (incremental sorted-list maintenance,
        version bump) and swap the served relation.  Then, outside it:
        invalidate every consumer keyed by the predecessor's relation id
        — result cache, shard-slice store, warm-start depth history and
        its spill — tell a remote daemon to re-key its registration
        (best-effort; the fallback is the lazy re-register on the next
        session open), and wake every live watch.
        """
        if self._mutable is None:
            raise MutationError(
                "server relation is immutable — construct the server with "
                "a MutableRelation to enable insert/update/delete"
            )
        with self._mutation_lock:
            # Closed check BEFORE touching the MutableRelation: a
            # rejected mutation must leave it in lockstep with the
            # served relation, never one committed version ahead.
            # close() takes the mutation lock first, so it cannot flip
            # _closed between this check and the swap below.
            with self._session_lock:
                if self._closed:
                    raise RuntimeError("server is closed")
            result = getattr(self._mutable, op)(*args)
            new_relation = self._mutable.relation
            with self._session_lock:
                old_key = self._relation_key
                self._relation_key = _export_relation(self.scheme, new_relation)
                self.relation = new_relation
                new_key = self._relation_key
            self._mutation_count += 1
        if self._cache is not None:
            self._cache.invalidate_relation(old_key)
            if new_key != old_key:
                self._cache.invalidate_relation(new_key)
        invalidate_slices(old_key)
        # A halting depth observed on the predecessor means nothing on
        # the successor (content changed) — drop memory and spill.
        self.scheme.drop_depth_history(old_key)
        self._drop_depth_spill(old_key)
        self._notify_daemon_mutation(old_key, new_key)
        self._notify_shard_mutation(old_key, new_relation, result)
        _release_relation(old_key)
        _MUTATIONS.labels(op=op).inc()
        with self._scheduler_lock:
            watches = list(self._watches)
        for watch in watches:
            watch.notify()
        return result

    def _notify_daemon_mutation(self, old_key: str, new_key: str) -> None:
        """Re-key a remote daemon's registration (best-effort).

        A MUTATE frame moves the daemon's key material from the old
        relation id to the new one, so the next session open skips the
        re-upload.  Failures (old daemon without the frame, dead link)
        are suppressed: the daemon then simply answers
        ``UNKNOWN_RELATION`` on the next open and the client re-registers
        — slower, never wrong.
        """
        if not is_socket_address(self.transport):
            return
        with contextlib.suppress(Exception):
            client_for(self.transport).mutate_relation(old_key, new_key)

    def _notify_shard_mutation(
        self, old_key: str, new_relation, result: MutationResult
    ) -> None:
        """Delta-sync remote shard workers across a mutation (best-effort).

        Ships each placement daemon the re-encrypted touched prefixes
        plus the suffix shift so it can rebuild its held slices under
        the successor's id without a full slice re-upload.  Failures are
        suppressed: a daemon that missed the frame answers
        ``UNKNOWN_RELATION`` on the next scan and the worker re-uploads
        its slice — slower, never wrong.
        """
        if not self.shard_placement:
            return
        delta = mutation_delta(new_relation, result, old_key)
        for address in self.shard_placement:
            with contextlib.suppress(Exception):
                shard_client_for(address).mutate(delta)

    def _drop_shard_registration(self, old_key: str) -> None:
        """Drop-only shard MUTATE: purge ``old_key``'s slices remotely.

        Used by the watch/window retirement paths, whose successor
        relations are wholesale re-encryptions — there is no valid
        prefix delta, so the remote slices are simply dropped and the
        next evaluation re-uploads lazily.
        """
        if not self.shard_placement:
            return
        delta = {"old_id": old_key, "new_id": None, "prefixes": None}
        for address in self.shard_placement:
            with contextlib.suppress(Exception):
                shard_client_for(address).mutate(delta)

    # -- continuous top-k (watch jobs) -----------------------------------

    def watch(
        self,
        token: Token,
        config: QueryConfig | None = None,
        *,
        window: int | None = None,
        timeout: float | None = None,
    ) -> WatchJob:
        """Start a continuous top-k watch as a long-lived job.

        The returned :class:`~repro.server.jobs.WatchJob` evaluates the
        query immediately, then re-evaluates after every mutation,
        streaming a :class:`~repro.events.TopKChanged` event whenever
        the revealed winning set actually changes.  ``window=N`` watches
        the last ``N`` inserted (still live) rows instead of the whole
        relation — the sliding-window streaming mode (requires a mutable
        server; ``k`` is clamped to the window's fill).  ``timeout``
        bounds the watch's total lifetime like a job deadline.

        End it with ``job.stop()`` (graceful: resolves ``DONE`` with a
        :class:`~repro.server.jobs.WatchSummary`) or ``job.cancel()``;
        :meth:`close` drains live watches itself.

        Each watch occupies one scheduler slot for its lifetime; the
        dispatch cap is raised past the live-watch count so watches can
        never starve ordinary queries out of the worker pool.
        """
        if window is not None:
            if window < 1:
                raise QueryError("watch window must be >= 1")
            if self._mutable is None:
                raise MutationError(
                    "windowed watches need a mutable relation (the window "
                    "is defined over its insert log)"
                )
        config = self._effective_config(config)
        job_id = self._reserve_ids(1)[0]
        job = WatchJob(job_id, token, config, timeout=timeout, window=window)
        job._runner = self._run_watch
        with self._scheduler_lock:
            self._watches.add(job)
        _WATCHES_ACTIVE.inc()

        def _retire(_job):
            with self._scheduler_lock:
                self._watches.discard(job)
            _WATCHES_ACTIVE.dec()

        job._add_done_callback(_retire)
        self._dispatch(job, cap_hint=self._scheduler_cap + len(self._watches))
        return job

    def _run_watch(self, job: WatchJob) -> WatchSummary:
        """Scheduler runner of one watch job: evaluate on every version
        change, sleep on the wake event between changes."""
        evaluations = 0
        changes = 0
        last_set: frozenset | None = None
        last_pairs: tuple | None = None
        last_version: int | None = None
        seen_version: int | None = None
        sequence = 0
        try:
            while True:
                if job._stopped:
                    break
                job._control.check()
                relation = self.relation  # snapshot: mutations swap atomically
                version = relation.version
                if seen_version is None or version != seen_version:
                    pairs = self._evaluate_watch(job, relation, version, sequence)
                    sequence += 1
                    seen_version = version
                    if pairs is not None:
                        evaluations += 1
                        job.evaluations = evaluations
                        _WATCH_EVALUATIONS.inc()
                        last_version = version
                        current = frozenset(pairs)
                        if last_set is None or current != last_set:
                            changes += 1
                            _WATCH_CHANGES.inc()
                            last_set = current
                            last_pairs = pairs
                            job._record_event(
                                TopKChanged(version=version, top_k=pairs)
                            )
                    continue  # re-check stop/cancel/version before sleeping
                job._wake.wait(timeout=job._control.remaining)
                job._wake.clear()
        finally:
            self._retire_window_registration(job)
        return WatchSummary(
            evaluations=evaluations,
            changes=changes,
            last_version=last_version,
            last_top_k=last_pairs,
        )

    def _evaluate_watch(self, job: WatchJob, relation, version, sequence):
        """One watch evaluation: a full salted query, revealed.

        Full mode queries the served relation; windowed mode encrypts
        the current insert window (same scheme, real object ids) and
        queries that.  The window draws a randomness stream derived
        from its *content* (:func:`_window_stream`): distinct windows
        never share Paillier randomness with each other or with the
        base relation's upload stream — one shared stream would let S1
        divide aligned ciphertexts and brute-force score deltas — while
        under a seeded scheme identical windows still re-encrypt
        identically.  Returns the revealed ``(object_id, score)``
        pairs, or ``None`` when there is nothing to evaluate yet
        (empty window).
        """
        token = job.token
        if job.window is not None:
            rows, oids = self._mutable.window_rows(job.window)
            if not rows:
                return None
            relation = self.scheme.encrypt(
                rows,
                object_ids=oids,
                version=version,
                stream=_window_stream(rows, oids),
            )
            self._swap_window_registration(job, relation.relation_id())
            if token.k > len(rows):
                token = replace(token, k=len(rows))
        elif token.k > relation.n_objects:
            token = replace(token, k=relation.n_objects)
        salt = f":{self._salt_namespace}-watch-{job.job_id}-{sequence}#"
        result = _run_salted_query(
            self.scheme,
            relation,
            self.transport,
            self.rtt_ms,
            self._compute,
            salt,
            token,
            job.config,
            on_event=job._record_event,
            control=job._control,
            session_label=f"watch-{job.job_id}-{sequence}",
            shard_executor=self._shard_executor(job.config),
            shard_placement=self.shard_placement,
        )
        return tuple(self.scheme.reveal(result))

    def _swap_window_registration(self, job: WatchJob, new_key: str) -> None:
        """Retire the previous evaluation's window relation state.

        Every windowed evaluation mints a relation whose id a socket
        transport lazily registers with the S2 daemon (key upload +
        state-dir spill) and whose halting depths the scheme records —
        without cleanup a long-lived watch grows both without bound.
        Re-keying the daemon entry old→new (the same MUTATE frame the
        mutation cascade uses: key material is identical across the
        scheme's relations) keeps the registry at one entry per watch
        and pre-registers the next OPEN, and dropping the predecessor's
        depth history and slice-store entries bounds the local side.
        """
        old_key = job._window_relation_key
        job._window_relation_key = new_key
        if old_key is None or old_key == new_key:
            return
        self.scheme.drop_depth_history(old_key)
        invalidate_slices(old_key)
        self._notify_daemon_mutation(old_key, new_key)
        self._drop_shard_registration(old_key)

    def _retire_window_registration(self, job: WatchJob) -> None:
        """Drop a finished watch's last window relation state.

        The daemon entry is re-keyed onto the served relation's id: if
        that id is already registered the moved entry is simply
        discarded (the daemon never clobbers), otherwise the move
        pre-registers it — bounded either way.
        """
        old_key = job._window_relation_key
        if old_key is None:
            return
        job._window_relation_key = None
        self.scheme.drop_depth_history(old_key)
        invalidate_slices(old_key)
        self._notify_daemon_mutation(old_key, self._relation_key)
        self._drop_shard_registration(old_key)

    # -- warm-start depth persistence ------------------------------------

    def _depth_spill_path(self, relation_key: str) -> str | None:
        if self._state_dir is None:
            return None
        if not relation_key.isalnum():
            return None  # same safety gate as the daemon's spill names
        return os.path.join(self._state_dir, f"{relation_key}.depths")

    def _load_depth_spill(self) -> None:
        """Import a prior run's halting-depth observations, if spilled.

        Keyed by relation id — content fingerprint including the
        version — so history can never leak across different data, and
        a restart over unchanged data warm-starts immediately.
        """
        path = self._depth_spill_path(self._relation_key)
        if path is None:
            return
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            depths = [int(d) for d in payload["depths"]]
        except (OSError, ValueError, KeyError, TypeError):
            return  # absent or corrupt spill: start cold, never fail
        self.scheme.import_depth_history(self._relation_key, depths)

    def _spill_depths(self) -> None:
        """Persist the current depth history (atomic tmp + rename)."""
        path = self._depth_spill_path(self._relation_key)
        if path is None:
            return
        depths = self.scheme.export_depth_history(self._relation_key)
        if not depths:
            return
        try:
            os.makedirs(self._state_dir, mode=0o700, exist_ok=True)
            tmp = f"{path}.tmp-{os.getpid()}"
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {"relation_id": self._relation_key, "depths": depths}, fh
                )
            os.replace(tmp, path)
        except OSError:
            pass  # persistence is an optimization, never a failure mode

    def _drop_depth_spill(self, relation_key: str) -> None:
        path = self._depth_spill_path(relation_key)
        if path is not None:
            with contextlib.suppress(OSError):
                os.remove(path)

    @property
    def stats(self) -> dict:
        """Operational counters: reuse layer + scheduler.

        A consistent point-in-time snapshot: each component's block is
        copied under that component's own lock (the cache's counters
        under the cache lock, the scheduler's under the scheduler lock),
        and the returned dict is plain data the caller owns — it can
        never disagree with what ``/metrics`` scraped at the same
        instant, because both read the same instruments.
        """
        cache_stats = self._cache.stats() if self._cache is not None else None
        with self._scheduler_lock:
            scheduler = {
                "queue_depth": self._job_queue.qsize(),
                "jobs_active": self._jobs_active,
                "workers": self._scheduler_threads,
            }
            watches_active = len(self._watches)
        return {
            "cache": cache_stats,
            "scheduler": scheduler,
            "coalesce_ms": self.coalesce_ms,
            "warm_start": self.warm_start,
            "halting_depth_hint": self.scheme.halting_depth_hint(
                self._relation_key
            ),
            "version": self.relation.version,
            "mutations": self._mutation_count,
            "watches_active": watches_active,
        }

    @property
    def metrics_port(self) -> int | None:
        """Bound port of the metrics exporter (``None`` when not mounted)."""
        exporter = self._exporter
        return exporter.port if exporter is not None else None

    def drain(self) -> None:
        """Flip ``/healthz`` to draining (sticky; idempotent).

        Load balancers stop routing here while in-flight jobs finish;
        :meth:`close` drains implicitly as its first act.
        """
        self._health.drain()

    # -- job submission (the scheduler's front door) ---------------------

    def submit(
        self,
        token: Token,
        config: QueryConfig | None = None,
        *,
        timeout: float | None = None,
        expect_version: int | None = None,
    ) -> QueryJob:
        """Submit one query as an asynchronous :class:`QueryJob`.

        The job enters the bounded queue immediately (blocking for a
        slot when the queue is full) and runs on a scheduler worker;
        ``timeout`` sets a per-job deadline measured from submission,
        enforced cooperatively at round boundaries.  The returned
        handle resolves via ``result()``, cancels via ``cancel()``, and
        streams progress via ``events()``.

        ``expect_version`` pins the query to a relation version: if a
        mutation lands before the job starts, it fails with
        :class:`~repro.exceptions.StaleRelationError` instead of
        silently answering over data the caller never saw.

        A submitted job's transcript (results, rounds, bytes, leakage)
        is bit-identical to the same query through :meth:`execute` or a
        sequential :meth:`execute_many` at the same request position —
        request salts are a pure function of the request id.
        """
        job_id = self._reserve_ids(1)[0]
        job = self._make_job(
            job_id, token, self._effective_config(config), self._run_inline, timeout
        )
        job._expect_version = expect_version
        self._dispatch(job)
        return job

    def _make_job(self, job_id, token, config, runner, timeout=None) -> QueryJob:
        job = QueryJob(job_id, token, config, timeout=timeout)
        job._runner = runner
        return job

    def _dispatch(self, job: QueryJob, cap_hint: int = 0) -> None:
        """Queue a job and make sure a worker exists to serve it.

        The spawn decision is taken *after* the put, under the same lock
        the worker-retire check holds: a worker that retired before our
        put is already reflected in ``_scheduler_threads`` when we
        decide (so we spawn a replacement), and one that checks after
        our put sees a non-empty queue and stays — a queued job can
        never be stranded without a worker.
        """
        cap = max(self._scheduler_cap, cap_hint)
        with self._scheduler_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            self._jobs_active += 1
        _JOBS_ACTIVE.inc()
        job._mark_queued()
        self._job_queue.put(job)
        _QUEUE_DEPTH.inc()
        spawn = False
        with self._scheduler_lock:
            if not self._closed and (
                self._scheduler_threads < cap
                and self._scheduler_threads < self._jobs_active
            ):
                self._scheduler_threads += 1
                spawn = True
        if spawn:
            thread = threading.Thread(
                target=self._scheduler_loop,
                name=f"topk-scheduler-{self._salt_namespace}",
                daemon=True,
            )
            with self._scheduler_lock:
                self._scheduler_thread_objs.add(thread)
            thread.start()
        if self._closed:
            # close() may have drained the queue before our put landed;
            # sweep again so no job is ever stranded.
            self._drain_queue()

    def _drain_queue(self) -> None:
        """Fail every queued job as cancelled (server shutdown path)."""
        while True:
            try:
                item = self._job_queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                _QUEUE_DEPTH.dec()
            if item is not None and not item.done():
                with self._scheduler_lock:
                    self._jobs_active -= 1
                _JOBS_ACTIVE.dec()
                item._finish_error(
                    JobCancelled("server closed before the job started"),
                    JobStatus.CANCELLED,
                )

    def _scheduler_loop(self) -> None:
        try:
            while True:
                try:
                    item = self._job_queue.get(timeout=self._IDLE_TTL)
                except queue.Empty:
                    with self._scheduler_lock:
                        if self._job_queue.empty():
                            self._scheduler_threads -= 1
                            return
                    continue
                if item is None:  # shutdown sentinel
                    with self._scheduler_lock:
                        self._scheduler_threads -= 1
                    return
                _QUEUE_DEPTH.dec()
                self._run_job(item)
        finally:
            with self._scheduler_lock:
                self._scheduler_thread_objs.discard(threading.current_thread())

    def _run_job(self, job: QueryJob) -> None:
        try:
            if self._closed:
                # Popped during shutdown (missed by the close-time queue
                # drain): an explicit shutdown outranks the job.
                job._control.cancel()
            if not job._start():
                return
            with self._scheduler_lock:
                self._running_jobs.add(job)
            if self._closed:
                # close() set the flag before snapshotting _running_jobs;
                # if we were added after that snapshot, this re-check —
                # ordered after the add — guarantees the cancel still
                # lands (at the next round boundary).
                job.cancel()
            try:
                result = job._runner(job)
            except BaseException as exc:  # noqa: BLE001 — resolve the job
                job._finish_error(exc)
            else:
                job._finish_result(result)
        finally:
            with self._scheduler_lock:
                self._running_jobs.discard(job)
                self._jobs_active -= 1
            _JOBS_ACTIVE.dec()

    def _run_inline(self, job: QueryJob) -> QueryResult:
        """Default runner: the job's query in this scheduler thread
        (shard work, if any, placed on the server's shard-worker pool).

        Reuse layer, in order: a cache hit returns immediately (zero
        rounds, no rendezvous enrollment — the job exchanges nothing);
        otherwise the job enrolls in the scan rendezvous (when enabled)
        so its rounds can share round-trips with concurrent jobs, and
        its fresh result feeds the cache on the way out.
        """
        # Snapshot the served relation and its key together: a mutation
        # landing mid-job swaps both atomically, and a job must never
        # compute over one version while caching under another.
        with self._session_lock:
            relation = self.relation
            relation_key = self._relation_key
        expected = getattr(job, "_expect_version", None)
        if expected is not None and expected != relation.version:
            raise StaleRelationError(expected, relation.version)
        cached = self._cache_lookup(job.token, job.config, relation_key)
        if cached is not None:
            return cached
        rendezvous = self._rendezvous
        wrappers: list[CoalescingTransport] = []
        transport_wrap = None
        if rendezvous is not None:

            def transport_wrap(link):
                wrapper = CoalescingTransport(link, rendezvous)
                wrappers.append(wrapper)
                return wrapper

            rendezvous.enroll()

        def on_batch(op, values, seconds):
            # Compute-pool batches run on this job's thread (inprocess
            # transport), so the thread-local observer attributes them
            # to exactly this job's event stream and trace.
            job._record_event(PoolBatch(op=op, values=values, seconds=seconds))

        try:
            with observe_batches(on_batch):
                result = _run_salted_query(
                    self.scheme,
                    relation,
                    self.transport,
                    self.rtt_ms,
                    self._compute,
                    self._request_salt(job.job_id),
                    job.token,
                    job.config,
                    on_event=job._record_event,
                    control=job._control,
                    session_label=f"job-{job.job_id}",
                    shard_executor=self._shard_executor(job.config),
                    transport_wrap=transport_wrap,
                    shard_placement=self.shard_placement,
                )
        finally:
            if rendezvous is not None:
                rendezvous.withdraw()
        if wrappers:
            result.coalesced_rounds = wrappers[0].coalesced_rounds
        self._cache_store(job.token, job.config, result, relation_key)
        # A fresh result observed a halting depth: make the warm-start
        # history durable (no-op without state_dir).
        self._spill_depths()
        return result

    def _make_process_runner(self, executor, salt: str, prior: frozenset):
        """Runner for one ``execute_many(mode="process")`` job: hand the
        query to the persistent worker pool and wait.  Cancellation is
        honoured only while the job is queued (the flag cannot reach the
        child); a deadline abandons the wait (the worker's result is
        dropped)."""

        def run(job: QueryJob) -> QueryResult:
            # The cache lives in the parent: a repeat query never even
            # reaches the pool (the hit itself re-records the pattern).
            cached = self._cache_lookup(job.token, job.config)
            if cached is not None:
                return cached
            future = executor.submit(_run_query, salt, job.token, job.config, prior)
            try:
                result = future.result(timeout=job._control.remaining)
            except TimeoutError:
                raise JobTimeout(
                    "process-mode job deadline exceeded (worker result dropped)"
                ) from None
            self._cache_store(job.token, job.config, result)
            return result

        return run

    # -- one-shot and bulk execution -------------------------------------

    def execute(self, token: Token, config: QueryConfig | None = None) -> QueryResult:
        """Run one query to completion (thin wrapper over :meth:`submit`)."""
        return self.submit(token, config).result()

    def _request_salt(self, request_id: int) -> str:
        # The salt is a pure function of (server namespace, request id),
        # so the same batch produces the same randomness streams in every
        # execution mode (sequential, thread window, process pool) while
        # distinct servers on one scheme draw disjoint streams.
        return f":{self._salt_namespace}-request-{request_id}#"

    def execute_many(
        self,
        requests: list[tuple[Token, QueryConfig | None]],
        concurrency: int = 1,
        mode: str = "thread",
    ) -> list[QueryResult]:
        """Run many queries, ``concurrency`` at a time (wrapper over
        :meth:`submit`: every request rides the job queue).

        ``mode="thread"`` windows inline jobs over the scheduler's
        thread pool: big-int crypto holds the GIL, so threads overlap
        link latency only.  ``mode="process"`` feeds the jobs to a
        persistent worker-process pool — real multi-core execution.
        Results come back in request order either way, each carrying its
        session's ``leakage_events``; randomness streams are salted per
        request id, so sequential and process modes produce identical
        results and leakage (each worker receives the exact
        query-pattern history a sequential run would see at its request;
        the parent's history is re-synced after the batch).  Thread mode
        matches on results too, but for a batch that *repeats* a token
        the query-pattern bit lands on whichever duplicate the scheduler
        runs first — threads share the live history.

        ``concurrency <= 1`` always runs strictly sequentially (one job
        at a time through the queue; the S2 compute pool still applies)
        — with one request at a time there is no parallelism for a
        worker process to add, and the execution is replay-identical by
        construction.
        """
        if mode not in ("thread", "process"):
            raise ValueError(f"unknown execute_many mode: {mode!r}")
        if not requests:
            return []
        # Resolve the server's default shard count once, up front: the
        # jobs (and the pickled configs process-mode workers receive)
        # then all carry the same effective config.
        requests = [
            (token, self._effective_config(config)) for token, config in requests
        ]
        ids = list(self._reserve_ids(len(requests)))
        if mode == "process" and concurrency > 1 and len(requests) > 1:
            # Never build a wider pool than there is work to fill it.
            return self._execute_many_process(
                requests, ids, min(concurrency, len(requests))
            )
        if concurrency <= 1 or mode == "process":
            # Sequential (also where a process batch is too small for a
            # pool — never silently downgrade process mode to threads).
            results = []
            for (token, config), job_id in zip(requests, ids):
                job = self._make_job(job_id, token, config, self._run_inline)
                self._dispatch(job)
                results.append(job.result())
            return results
        return self._collect_windowed(requests, ids, concurrency, self._run_inline)

    def _collect_windowed(
        self, requests, ids, concurrency, runner, jobs_out: list | None = None
    ) -> list:
        """Dispatch jobs with at most ``concurrency`` in flight; gather
        results in request order.  ``runner`` is one callable for the
        batch or a per-request list.  Every dispatched job is waited on
        before returning, even when an early job failed — no stragglers
        outlive the call."""
        slots = threading.Semaphore(concurrency)
        jobs: list[QueryJob] = [] if jobs_out is None else jobs_out
        try:
            for (token, config), job_id in zip(requests, ids):
                slots.acquire()
                job_runner = runner[len(jobs)] if isinstance(runner, list) else runner
                job = self._make_job(job_id, token, config, job_runner)
                job._add_done_callback(lambda _job: slots.release())
                self._dispatch(job, cap_hint=concurrency)
                jobs.append(job)
            return [job.result() for job in jobs]
        finally:
            for job in jobs:
                job._done.wait()

    def _acquire_query_executor(self, workers: int) -> ProcessPoolExecutor:
        """The persistent query-worker pool, grown to ``workers`` when idle.

        Growth replaces the pool, which is only safe with no in-flight
        batch (a shutdown would cancel another thread's futures); while
        batches are active the existing — possibly smaller — pool is
        reused, and the per-batch window semaphore still enforces the
        caller's concurrency cap either way.  Pool construction (forking
        and warming N workers, pickling the scheme and relation to each)
        happens *outside* the lock so jobs and other batches never
        block on a multi-second spin-up; a racing builder's spare pool is
        discarded.  Callers must pair with :meth:`_release_query_executor`.
        """
        with self._session_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._query_pool is not None:
                if self._query_pool_workers >= workers or self._query_pool_active > 0:
                    self._query_pool_active += 1
                    return self._query_pool
                # Idle and smaller than requested: retire, rebuild below.
                self._query_pool.shutdown(wait=False)
                self._query_pool = None
        # Fork-started workers inherit the relation store with the
        # address space — the initializer payload stays empty; only a
        # spawn platform ships the (cached, pickled-once) blob.
        payload = (
            None
            if pool_start_method() == "fork"
            else _relation_blob(self._relation_key)
        )
        new_pool = make_pool_executor(
            workers,
            _init_query_worker,
            (
                self._relation_key,
                payload,
                self.transport,
                self.rtt_ms,
                backend.get_backend().name,
            ),
        )
        with self._session_lock:
            if self._closed:
                new_pool.shutdown(wait=False, cancel_futures=True)
                raise RuntimeError("server is closed")
            if self._query_pool is None:
                self._query_pool = new_pool
                self._query_pool_workers = workers
            else:
                new_pool.shutdown(wait=False)  # a concurrent builder won
            self._query_pool_active += 1
            return self._query_pool

    def _release_query_executor(self) -> None:
        with self._session_lock:
            self._query_pool_active -= 1

    def _execute_many_process(self, requests, ids, concurrency) -> list[QueryResult]:
        executor = self._acquire_query_executor(concurrency)
        jobs: list[QueryJob] = []
        try:
            # Sequential repeat semantics, precomputed: request i's history
            # is the server history plus the fingerprints of requests
            # 0..i-1.
            seen = set(self.scheme.query_pattern_snapshot())
            runners = []
            for (token, _), job_id in zip(requests, ids):
                runners.append(
                    self._make_process_runner(
                        executor, self._request_salt(job_id), frozenset(seen)
                    )
                )
                seen.add(token.fingerprint())
            try:
                return self._collect_windowed(
                    requests, ids, concurrency, runners, jobs_out=jobs
                )
            finally:
                # Worker history copies are per-task scratch; fold the
                # batch into the parent's authoritative query-pattern
                # history even when a request fails — sequential execution
                # records each fingerprint at query start, and a handed-off
                # query runs to completion in its worker regardless of
                # siblings.  Jobs that never started (server closed while
                # queued) and broken-pool/cancelled casualties (their
                # worker query may never have run) stay out.
                # (_collect_windowed settled every dispatched job.)
                self._record_batch_patterns(jobs)
        finally:
            self._release_query_executor()

    def _record_batch_patterns(self, jobs: list[QueryJob]) -> None:
        self.scheme.record_query_patterns(
            [
                job.token
                for job in jobs
                if job._attempted
                and not isinstance(job._error, (BrokenProcessPool, CancelledError))
            ]
        )
        # Worker scheme copies recorded their halting depths into
        # per-task scratch; fold the observations into the parent's
        # warm-start history the same way the patterns fold above.
        # Cache hits stay out — they observed nothing new.
        for job in jobs:
            result = job._result
            if result is not None and not result.cache_hit:
                self.scheme.record_halting_depth(
                    self._relation_key, result.halting_depth
                )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close every job, session and worker pool this server opened.

        Idempotent, and safe when the S2 daemon connection already died
        (dead links are swallowed — they can never mask the error that
        killed them).  Queued jobs are cancelled; running jobs are asked
        to stop at their next round boundary and waited for; a process
        batch in flight has its pending pool futures cancelled (that
        batch's ``execute_many`` raises) — an explicit shutdown outranks
        in-flight work.  Live watch jobs drain with the running jobs:
        ``WatchJob.cancel`` wakes the watch loop, so a watch parked on
        its wake event terminates promptly instead of holding a worker.
        """
        self._spill_depths()
        # Health flips first (sticky, idempotent): /healthz reports
        # draining for the whole teardown window while /metrics stays
        # scrapeable until the very end.
        self._health.drain()
        # Mutation lock before session lock (same order as
        # _apply_mutation): an in-flight mutation commits fully — or its
        # closed pre-check rejects it untouched — before _closed flips,
        # so the MutableRelation can never end up ahead of the served
        # relation, the caches, or the daemon registration.
        with self._mutation_lock, self._session_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions)
            self._sessions.clear()
            pool, self._query_pool = self._query_pool, None
            self._query_pool_workers = 0
            compute, self._compute = self._compute, None
            shard_pool, self._shard_pool = self._shard_pool, None
        # Scheduler teardown: cancel queued jobs, stop running ones at
        # the next round boundary, retire the workers.
        with self._scheduler_lock:
            running = list(self._running_jobs)
            workers = self._scheduler_threads
            threads = list(self._scheduler_thread_objs)
        for job in running:
            job.cancel()
        # Drain the scan rendezvous before joining anything: a job parked
        # at the coalescing barrier must wake with JobCancelled, not hang
        # waiting for peers that will never arrive.
        if self._rendezvous is not None:
            self._rendezvous.close()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._drain_queue()
        # Shutdown sentinels wake workers parked in get(); best-effort
        # only — a worker that misses its sentinel (retired meanwhile, or
        # the bounded queue filled) still exits via the idle-TTL retire
        # path, since the queue is drained and _closed is set.  Never
        # block here: with max_pending < workers a blocking put could
        # wait on consumers that no longer exist.
        for _ in range(workers):
            try:
                self._job_queue.put_nowait(None)
            except queue.Full:
                break
        for thread in threads:
            thread.join()
        self._drain_queue()  # anything that slipped in during teardown
        for session in sessions:
            session.close()
        if compute is not None:
            # Drain rather than cancel: the job threads joined above, but
            # an external caller sharing this pool (a daemon session
            # racing the shutdown) gets its in-flight batch back instead
            # of a mid-protocol cancellation.
            compute.close(wait=True)
        if shard_pool is not None:
            # Running jobs were already stopped/waited above, so no
            # shard task can still be queued behind this shutdown.
            shard_pool.shutdown(wait=True)
        _release_relation(self._relation_key)
        exporter, self._exporter = self._exporter, None
        if exporter is not None:
            exporter.close()

    def __enter__(self) -> "TopKServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Mutable encrypted relations: insert / update / delete against ``ER``.

The paper's ``Enc`` (Algorithm 2) is a one-shot bulk encryption; this
module grows it into a mutation subsystem.  A :class:`MutableRelation`
wraps a scheme-encrypted relation together with the data owner's
plaintext mirror and maintains the per-attribute sorted lists
*incrementally*:

* the owner knows where each new/old ``(score, object_id)`` key lands in
  every sorted list (binary search over a plaintext order mirror), so a
  mutation splices exactly one position per list;
* only the **touched prefix** of each list — everything at or above the
  splice point — is re-encrypted (EHL re-randomized, score/record
  ciphertexts re-randomized); the untouched suffix is *shared by
  reference* with the predecessor relation.  Re-randomizing the prefix
  hides which single entry moved: S1 sees "the first ``p`` entries of
  list ``P_K(i)`` changed", nothing finer.  That per-list prefix length
  is this layer's declared leakage — the **mutation pattern** ``MP``,
  recorded with the same :class:`~repro.protocols.base.LeakageEvent`
  discipline as the query-side ``QP``/``HD`` events;
* every mutation produces a *successor* :class:`EncryptedRelation` with
  ``version + 1``.  The version is folded into ``relation_id()``, so all
  machinery keyed by relation id (daemon registrations, relation/slice
  stores, the query cache, warm-start depth history) misses cleanly
  instead of aliasing stale ciphertexts.

Equivalence invariant (pinned by ``tests/test_mutations.py``): after any
interleaving of mutations, the grown relation holds *exactly* the same
plaintext content in the same sorted order as a relation rebuilt from
scratch at the final state with the same object ids — ties break by
``(-score, object_id)`` on both paths.  Since queries depend only on
plaintext content and order (EHL equality is content-based, ciphertext
serialization is fixed-width, protocol randomness comes from the query
context), query transcripts over the two are bit-identical.

Object ids are monotonic and never reused: ``insert`` allocates
``max(existing) + 1``-and-counting, so a delete followed by an insert
can never resurrect an old id with new content.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

from repro.core.relation import EncryptedRelation
from repro.exceptions import MutationError
from repro.protocols.base import LeakageEvent
from repro.structures.items import EncryptedItem


@dataclass(frozen=True)
class MutationResult:
    """What one applied mutation exposes to the caller.

    ``touched`` is the declared S1-visible effect: for every permuted
    list name, how long the re-encrypted prefix was.  ``leakage_events``
    wraps the same observation as a ``mutation_pattern`` event so audits
    can fold mutations into the query-side leakage ledger.
    """

    op: str
    object_id: int
    version: int
    relation_id: str
    touched: tuple
    """``((permuted_name, prefix_len), ...)`` sorted by list name."""

    leakage_events: tuple
    """:class:`~repro.protocols.base.LeakageEvent` tuple for this op."""


#: Row-index shift of each mutation op: a suffix entry at new global
#: depth ``d`` (``d >= prefix_len``) was at old depth ``d - shift``.
_OP_SHIFT = {"insert": 1, "update": 0, "delete": -1}


def mutation_delta(
    relation: EncryptedRelation, result: MutationResult, old_id: str
) -> dict:
    """The touched-prefix delta-sync payload for remote shard workers.

    After a mutation only the re-encrypted prefix of each list differs
    from the predecessor; everything below the splice point is the same
    ``EncryptedItem`` objects shifted by the op's row delta.  A shard
    daemon holding the predecessor's slices therefore needs just the
    prefix rows (shipped here, straight from the successor relation) to
    rebuild its slices under the successor's id — suffix rows it already
    holds, referenced by the predecessor id ``old_id``
    (:meth:`repro.server.shard_service.ShardService._mutate`).

    ``relation`` must be the successor the mutation produced (its
    ``relation_id`` becomes the delta's ``new_id``).
    """
    prefixes = {
        name: list(relation.lists[name][:prefix_len])
        for name, prefix_len in result.touched
    }
    return {
        "old_id": old_id,
        "new_id": relation.relation_id(),
        "shift": _OP_SHIFT[result.op],
        "new_n_rows": relation.n_objects,
        "prefixes": prefixes,
    }


class MutableRelation:
    """An encrypted relation that supports insert / update / delete.

    Construction encrypts ``rows`` exactly like ``scheme.encrypt`` (it
    delegates to it), then keeps the plaintext mirror needed to maintain
    the sorted lists incrementally.  Thread-safe: mutations serialize on
    an internal lock; :attr:`relation` is replaced atomically, so
    concurrent readers always see a complete (possibly slightly stale)
    relation.
    """

    def __init__(self, scheme, rows, object_ids=None):
        relation = scheme.encrypt(rows, object_ids=object_ids)
        if object_ids is None:
            object_ids = list(range(len(rows)))
        self.scheme = scheme
        self._names = scheme.attribute_list_names()
        self._rows = {
            oid: tuple(row) for oid, row in zip(object_ids, rows)
        }
        self._next_oid = max(object_ids) + 1
        self._orders: dict[int, list[tuple[int, int]]] = {}
        for attribute, name in enumerate(self._names):
            self._orders[name] = sorted(
                (-row[attribute], oid) for oid, row in self._rows.items()
            )
        self._insert_order = list(object_ids)
        self._log: list[tuple] = []
        self._lock = threading.RLock()
        self.relation = relation

    # ------------------------------------------------------------------
    # Pickling (restart persistence: ciphertext randomness is not
    # replayable, so a deployment that wants the same relation id after
    # a restart must reload the pickled relation, not re-encrypt).
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Version of the current successor relation."""
        return self.relation.version

    @property
    def n_objects(self) -> int:
        with self._lock:
            return len(self._rows)

    def snapshot(self) -> tuple[list[list[int]], list[int]]:
        """Current plaintext rows + object ids, in object-id order.

        Exactly what rebuilding from scratch needs:
        ``scheme.encrypt(rows, object_ids=oids)`` on another identically
        seeded scheme reproduces this relation's content and order.
        """
        with self._lock:
            oids = sorted(self._rows)
            return [list(self._rows[o]) for o in oids], oids

    def window_rows(self, window: int) -> tuple[list[list[int]], list[int]]:
        """The sliding insert window: the last ``window`` live rows in
        insertion order (deleted rows drop out, updates keep position)."""
        if window < 1:
            raise MutationError("window must be >= 1")
        with self._lock:
            oids = self._insert_order[-window:]
            return [list(self._rows[o]) for o in oids], list(oids)

    def mutation_log(self) -> tuple:
        """``(op, object_id, row_or_None, version)`` per applied op."""
        with self._lock:
            return tuple(self._log)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, row) -> MutationResult:
        """Insert a new row; allocates and returns a fresh object id."""
        with self._lock:
            row = self._check_row(row)
            oid = self._next_oid
            self._next_oid += 1
            version = self.relation.version + 1
            rng, factory, pk = self._mutation_crypto(version)
            new_lists: dict[int, list[EncryptedItem]] = {}
            touched = []
            for attribute, name in enumerate(self._names):
                order = self._orders[name]
                entries = self.relation.lists[name]
                key = (-row[attribute], oid)
                pos = bisect.bisect_left(order, key)
                order.insert(pos, key)
                fresh = EncryptedItem(
                    ehl=factory.encode(oid),
                    score=pk.encrypt(row[attribute], rng),
                    record=pk.encrypt(oid, rng),
                )
                new_lists[name] = (
                    [self._rerandomized(e, rng) for e in entries[:pos]]
                    + [fresh]
                    + entries[pos:]
                )
                touched.append((name, pos + 1))
            self._rows[oid] = row
            self._insert_order.append(oid)
            return self._commit("insert", oid, row, version, new_lists,
                                touched, n_delta=1)

    def update(self, object_id: int, row) -> MutationResult:
        """Replace an existing row's scores in place (same object id)."""
        with self._lock:
            old_row = self._rows.get(object_id)
            if old_row is None:
                raise MutationError(f"unknown object id {object_id}")
            row = self._check_row(row)
            version = self.relation.version + 1
            rng, factory, pk = self._mutation_crypto(version)
            new_lists: dict[int, list[EncryptedItem]] = {}
            touched = []
            for attribute, name in enumerate(self._names):
                order = self._orders[name]
                entries = self.relation.lists[name]
                old_key = (-old_row[attribute], object_id)
                pos_old = bisect.bisect_left(order, old_key)
                del order[pos_old]
                work = entries[:pos_old] + entries[pos_old + 1 :]
                new_key = (-row[attribute], object_id)
                pos_new = bisect.bisect_left(order, new_key)
                order.insert(pos_new, new_key)
                fresh = EncryptedItem(
                    ehl=factory.encode(object_id),
                    score=pk.encrypt(row[attribute], rng),
                    record=pk.encrypt(object_id, rng),
                )
                assembled = work[:pos_new] + [fresh] + work[pos_new:]
                # Re-encrypt down to wherever the entry left *or* landed,
                # so S1 cannot tell the two positions apart within the
                # prefix (>= pos_new + 1, so the fresh entry is inside).
                prefix_len = max(pos_old, pos_new + 1)
                new_lists[name] = [
                    assembled[i] if i == pos_new
                    else self._rerandomized(assembled[i], rng)
                    for i in range(prefix_len)
                ] + assembled[prefix_len:]
                touched.append((name, prefix_len))
            self._rows[object_id] = row
            return self._commit("update", object_id, row, version,
                                new_lists, touched, n_delta=0)

    def delete(self, object_id: int) -> MutationResult:
        """Remove a row.  The last remaining row cannot be deleted (the
        scheme has no encrypted representation of an empty relation)."""
        with self._lock:
            row = self._rows.get(object_id)
            if row is None:
                raise MutationError(f"unknown object id {object_id}")
            if len(self._rows) == 1:
                raise MutationError("cannot delete the last object")
            version = self.relation.version + 1
            rng, _factory, _pk = self._mutation_crypto(version)
            new_lists: dict[int, list[EncryptedItem]] = {}
            touched = []
            for attribute, name in enumerate(self._names):
                order = self._orders[name]
                entries = self.relation.lists[name]
                key = (-row[attribute], object_id)
                pos = bisect.bisect_left(order, key)
                del order[pos]
                new_lists[name] = (
                    [self._rerandomized(e, rng) for e in entries[:pos]]
                    + entries[pos + 1 :]
                )
                touched.append((name, pos))
            del self._rows[object_id]
            self._insert_order.remove(object_id)
            return self._commit("delete", object_id, None, version,
                                new_lists, touched, n_delta=-1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_row(self, row) -> tuple:
        row = tuple(row)
        if len(row) != self.relation.n_attributes:
            raise MutationError(
                f"row has {len(row)} attributes, relation has "
                f"{self.relation.n_attributes}"
            )
        for value in row:
            self.scheme.encoder.check_score(value)
        return row

    def _mutation_crypto(self, version: int):
        """Fresh randomness for one mutation.

        ``spawn`` is a pure function of the scheme key and the label, so
        drawing mutation randomness never perturbs the encryption or
        query streams — a load-bearing property for the
        mutate-vs-rebuild transcript equivalence.
        """
        rng = self.scheme._rng.spawn(f"mutate-v{version}")
        return rng, self.scheme._ehl_factory(rng), self.scheme.public_key

    @staticmethod
    def _rerandomized(entry: EncryptedItem, rng) -> EncryptedItem:
        pk = entry.score.public_key
        return EncryptedItem(
            ehl=entry.ehl.rerandomized(rng),
            score=pk.rerandomize(entry.score, rng),
            record=(
                pk.rerandomize(entry.record, rng)
                if entry.record is not None
                else None
            ),
        )

    def _commit(self, op, object_id, row, version, new_lists, touched,
                n_delta) -> MutationResult:
        relation = EncryptedRelation(
            lists=new_lists,
            n_objects=self.relation.n_objects + n_delta,
            n_attributes=self.relation.n_attributes,
            ehl_variant=self.relation.ehl_variant,
            version=version,
        )
        self.relation = relation
        self._log.append((op, object_id, row, version))
        touched = tuple(sorted(touched))
        events = (
            LeakageEvent(
                observer="S1",
                protocol="SecMutate",
                kind="mutation_pattern",
                payload=(op, touched),
            ),
        )
        return MutationResult(
            op=op,
            object_id=object_id,
            version=version,
            relation_id=relation.relation_id(),
            touched=touched,
            leakage_events=events,
        )

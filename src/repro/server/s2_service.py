"""The standalone S2 crypto-cloud daemon.

Runs the S2 half of the two-cloud protocol as its own process (or
host)::

    PYTHONPATH=src python -m repro.server.s2_service \\
        --listen tcp://127.0.0.1:9317 [--s2-workers 4] [--s2-mode auto] \\
        [--backend auto] [--state-dir /var/lib/repro-s2]

The daemon owns nothing at start — no keys, no relations.  A client
(the S1 side: :class:`~repro.server.topk_server.TopKServer` or any
``scheme.make_clouds(transport="tcp://...")``) provisions it through
the frame protocol of :mod:`repro.net.socket_transport`:

1. **HELLO** — version banner check, once per connection.
2. **REGISTER** — the data owner's provisioning step (Section 3.1):
   key material (Paillier keypair, DJ instance) stored under a
   *relation id*.  Idempotent, and shared daemon-wide: any later
   connection — another session, another worker process, another
   machine — opens sessions by id alone, so repeated queries against
   a registered relation never re-upload the blob.
3. **OPEN** — one protocol session: its own
   :class:`~repro.protocols.base.CryptoCloud` (seeded with the rng
   stream the client ships, so transcripts match in-process runs),
   :class:`~repro.net.dispatch.S2Dispatcher`, wire codec, leakage log,
   and service thread.  Sessions are multiplexed over the connection by
   the session id tagged on every frame; each runs on its own thread,
   so a large batch in one session never blocks another's round.
4. **REQUEST/REPLY** — one coalesced protocol round per frame, exactly
   the batches :class:`~repro.net.transport.ThreadedTransport` carries
   in-process.  S2-side leakage events ride back inside the REPLY.

``--s2-workers N`` attaches one shared
:class:`~repro.crypto.parallel.ComputePool` that chunks every session's
large decrypt batches across workers — the daemon-side analog of
``TopKServer(s2_workers=...)``.  ``--s2-mode`` picks the pool flavour
(GIL-free kernel threads / worker processes / auto).  The pool starts at
the *first registration* (the earliest moment key material exists),
outside the service lock; ``make_pool_executor`` documents why fork
stays the right start method even with service threads live.

A dropped client connection tears down all of its sessions; a dispatch
failure is reported as an ERROR frame (typed
:class:`~repro.exceptions.RemoteS2Error` on the client) and leaves the
connection usable.

``--state-dir`` makes registrations *persistent*: each REGISTER payload
is spilled (atomically) to ``<state_dir>/<relation_id>.reg`` and
reloaded on restart, so a bounced daemon keeps serving its registered
relation ids without any client re-upload.  The spill holds the secret
key material the client provisioned — protect the directory like the
key itself.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pickle
import queue
import socket
import threading
import time

from repro.crypto import backend
from repro.crypto.parallel import ComputePool
from repro.exceptions import PeerDisconnected, TransportError
from repro.net.dispatch import S2Dispatcher
from repro.net.socket_transport import (
    CLOSE,
    CLOSED,
    ERROR,
    HELLO,
    HELLO_OK,
    MUTATE,
    MUTATED,
    OPEN,
    OPENED,
    PROTOCOL_BANNER,
    PROTOCOL_BANNER_V2,
    REGISTER,
    REGISTERED,
    REPLY,
    REQUEST,
    UNKNOWN_RELATION,
    VERSION_MISMATCH,
    encode_error,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.net.wire import WireCodec
from repro.obs.exporter import HealthState, MetricsExporter
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.protocols.base import CryptoCloud, LeakageLog

#: Banners this daemon speaks, newest first.  Tests shrink this to
#: emulate an old /2-only daemon against a new client.
SUPPORTED_BANNERS = (PROTOCOL_BANNER, PROTOCOL_BANNER_V2)


class _Session:
    """One protocol session: crypto cloud + codec + service thread.

    ``label`` is the client-supplied session label from the OPEN frame
    (a job id like ``job-17``, a server session tag, ...): it names the
    service thread and feeds the daemon's per-job observability.
    """

    def __init__(
        self,
        connection: "_Connection",
        session_id: int,
        cloud: CryptoCloud,
        label: str = "",
    ):
        self.connection = connection
        self.session_id = session_id
        self.cloud = cloud
        self.label = label
        self.dispatcher = S2Dispatcher(cloud)
        self.codec = WireCodec()
        self.requests: queue.SimpleQueue = queue.SimpleQueue()
        self._abort = False
        suffix = f":{label}" if label else ""
        self.thread = threading.Thread(
            target=self._serve, name=f"s2-session-{session_id}{suffix}", daemon=True
        )
        self.thread.start()

    def _serve(self) -> None:
        while True:
            data = self.requests.get()
            if data is None:
                return
            if self._abort:
                # Teardown path: the client is gone, so dispatching the
                # round and writing its reply to a dead socket would be
                # pure waste — but the in-flight gauge still has to come
                # back down for every request this session accepted.
                self.connection.service._request_done()
                continue
            try:
                started = time.perf_counter()
                messages = self.codec.decode_envelope(data)
                replies = [self.dispatcher.dispatch(msg) for msg in messages]
                elapsed = time.perf_counter() - started
                # The session log holds exactly this round's S2
                # observations (drained every round); they ride back in
                # the reply so the client's log interleaves S1 and S2
                # events at the in-process positions.
                events = [
                    (e.observer, e.protocol, e.kind, e.payload)
                    for e in self.cloud.leakage.events
                ]
                self.cloud.leakage.clear()
                out = bytearray()
                if self.connection.protocol_version >= 3:
                    # /3 REPLY piggybacks the round's decrypt progress:
                    # (batches, values, microseconds) int triples — the
                    # wire codec carries no floats, and integers keep
                    # old/new transcripts byte-comparable per version.
                    values = sum(
                        len(r) if isinstance(r, (list, tuple)) else 1
                        for r in replies
                    )
                    progress = ((len(messages), values, int(elapsed * 1e6)),)
                    self.codec.encode_value((replies, events, progress), out)
                else:
                    self.codec.encode_value((replies, events), out)
                self.connection.send(REPLY, self.session_id, bytes(out))
                self.connection.service._observe_request(elapsed)
            except Exception as exc:  # noqa: BLE001 — report, don't die
                # Drop any events the failed round recorded before the
                # error: the client never sees that round's reply, and
                # stale events must not ride the *next* reply at wrong
                # positions.
                self.cloud.leakage.clear()
                self.connection.send_error(
                    self.session_id, type(exc).__name__, str(exc)
                )
            finally:
                self.connection.service._request_done()

    def stop(self, abort: bool = False) -> None:
        """Retire the service thread: finish queued rounds (graceful
        CLOSE), or with ``abort`` drain them unserved (dead connection)
        — either way every accepted request's in-flight accounting is
        settled before the thread joins."""
        self._abort = abort or self._abort
        self.requests.put(None)
        self.thread.join()


class _Connection:
    """One accepted client connection and its session table."""

    def __init__(self, service: "S2Service", sock: socket.socket):
        self.service = service
        self.sock = sock
        self._write_lock = threading.Lock()
        self._sessions: dict[int, _Session] = {}
        #: Major protocol version this connection's HELLO negotiated
        #: (3, or 2 for old clients — their REPLYs carry no progress).
        self.protocol_version = 2

    # -- frame output ----------------------------------------------------

    def send(self, ftype: int, session_id: int, payload: bytes = b"") -> None:
        with self._write_lock:
            send_frame(self.sock, ftype, session_id, payload)

    def send_error(self, session_id: int, kind: str, text: str) -> None:
        with contextlib.suppress(TransportError):
            self.send(ERROR, session_id, encode_error(kind, text))

    # -- frame input -----------------------------------------------------

    def run(self) -> None:
        try:
            # A peer that connects but never greets should not pin a
            # thread forever; after the banner the link blocks freely.
            self.sock.settimeout(30.0)
            ftype, _, payload = recv_frame(self.sock)
            if ftype != HELLO or payload not in SUPPORTED_BANNERS:
                # Name every banner we speak so a newer client can pick
                # one and redial.
                self.send_error(
                    0,
                    VERSION_MISMATCH,
                    " ".join(b.decode() for b in SUPPORTED_BANNERS),
                )
                return
            self.protocol_version = 3 if payload == PROTOCOL_BANNER else 2
            self.send(HELLO_OK, 0, payload)
            self.sock.settimeout(None)
            while True:
                ftype, session_id, payload = recv_frame(self.sock)
                self._handle(ftype, session_id, payload)
        except PeerDisconnected:
            pass  # normal client departure
        except Exception as exc:  # noqa: BLE001 — last-resort report
            self.send_error(0, type(exc).__name__, str(exc))
        finally:
            self._teardown()

    def _handle(self, ftype: int, session_id: int, payload: bytes) -> None:
        if ftype == REGISTER:
            self.service._register(pickle.loads(payload), payload)
            self.send(REGISTERED, session_id)
        elif ftype == OPEN:
            relation_id, _, rest = payload.partition(b"\x00")
            label_bytes, _, blob = rest.partition(b"\x00")
            label = label_bytes.decode("utf-8", "replace")
            entry = self.service._registration(relation_id.decode("utf-8"))
            if entry is None:
                self.send_error(session_id, UNKNOWN_RELATION, relation_id.decode())
                return
            if session_id in self._sessions:
                self.send_error(session_id, "duplicate-session", str(session_id))
                return
            keypair, dj = entry
            cloud = CryptoCloud(
                keypair,
                dj,
                rng=pickle.loads(blob),
                leakage=LeakageLog(),
                compute=self.service.compute,
            )
            self._sessions[session_id] = _Session(self, session_id, cloud, label)
            self.service._session_opened(label)
            self.send(OPENED, session_id)
        elif ftype == REQUEST:
            session = self._sessions.get(session_id)
            if session is None:
                self.send_error(session_id, "unknown-session", str(session_id))
                return
            self.service._request_received()
            session.requests.put(payload)
        elif ftype == CLOSE:
            session = self._sessions.pop(session_id, None)
            if session is not None:
                session.stop()
                self.service._session_closed()
            self.send(CLOSED, session_id)
        elif ftype == MUTATE:
            old_id, _, new_id = payload.partition(b"\x00")
            self.service._mutate_registration(
                old_id.decode("utf-8"), new_id.decode("utf-8")
            )
            # Idempotent by design: MUTATED even for an unknown old id —
            # the client's fallback (lazy re-register on the next OPEN)
            # makes the distinction irrelevant, and retries stay safe.
            self.send(MUTATED, session_id)
        else:
            self.send_error(session_id, "unknown-frame", str(ftype))

    def _teardown(self) -> None:
        for session in self._sessions.values():
            session.stop(abort=True)
            self.service._session_closed()
        self._sessions.clear()
        with contextlib.suppress(OSError):
            self.sock.close()
        self.service._connection_closed(self)


class S2Service:
    """The S2 daemon: listener, registry, and live session bookkeeping.

    Parameters
    ----------
    listen:
        ``tcp://host:port`` (port 0 picks a free one) or
        ``unix:///path`` (a stale socket file is replaced).
    s2_workers:
        When positive, one shared :class:`ComputePool` of that many
        workers chunks every session's large decrypt batches.
    s2_mode:
        Pool flavour — ``"thread"`` / ``"process"`` / ``"auto"`` (see
        :class:`~repro.crypto.parallel.ComputePool`).
    state_dir:
        When set, every relation registration is spilled to
        ``<state_dir>/<relation_id>.reg`` (the raw REGISTER payload,
        written atomically) and reloaded on :meth:`start` — a restarted
        daemon serves its registered relation ids without any client
        re-upload.  The files hold secret key material: protect the
        directory like the key itself.
    metrics_port:
        When set, serve Prometheus text at
        ``http://127.0.0.1:PORT/metrics`` (process-wide instruments plus
        this service's own counters) and a ``/healthz`` endpoint that
        flips to draining on :meth:`drain` / :meth:`close`.  ``0`` picks
        a free port — read it back from :attr:`metrics_port`.
    """

    def __init__(
        self,
        listen: str = "tcp://127.0.0.1:0",
        s2_workers: int = 0,
        s2_mode: str = "auto",
        state_dir: str | None = None,
        metrics_port: int | None = None,
    ):
        self.listen_spec = listen
        self.s2_workers = s2_workers
        self.s2_mode = s2_mode
        self.state_dir = state_dir
        self.address: str | None = None
        self.compute: ComputePool | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._unix_path: str | None = None
        self._lock = threading.Lock()
        self._pool_started = False
        self._connections: set[_Connection] = set()
        self._registry: dict[str, tuple] = {}
        # Per-instance metrics registry: the service counters *are*
        # these instruments (``stats()`` reads them back), so the dict
        # snapshot and a ``/metrics`` scrape can never disagree — one
        # source, two renderings.  A private registry keeps concurrent
        # services (tests run several) from folding into each other.
        self.registry = MetricsRegistry()
        reg = self.registry
        self._counters = {
            "registrations": reg.counter(
                "repro_s2_registrations_total", "Relations registered (uploads)."
            ),
            "registrations_restored": reg.counter(
                "repro_s2_registrations_restored_total",
                "Relations reloaded from the state dir at boot.",
            ),
            "registration_mutations": reg.counter(
                "repro_s2_registration_mutations_total",
                "Registrations re-keyed by MUTATE frames.",
            ),
            "registration_uploads": reg.counter(
                "repro_s2_registration_uploads_total",
                "REGISTER frames received (including idempotent repeats).",
            ),
            "registration_bytes": reg.counter(
                "repro_s2_registration_bytes_total",
                "Bytes of REGISTER payload received.",
            ),
            "connections_total": reg.counter(
                "repro_s2_connections_total", "Client connections accepted."
            ),
            "connections_active": reg.gauge(
                "repro_s2_connections_active", "Client connections currently open."
            ),
            "sessions_opened": reg.counter(
                "repro_s2_sessions_opened_total", "Protocol sessions opened."
            ),
            "sessions_active": reg.gauge(
                "repro_s2_sessions_active", "Protocol sessions currently live."
            ),
            "job_sessions": reg.counter(
                "repro_s2_job_sessions_total",
                "Sessions opened by server jobs (label ``job-*``).",
            ),
            "requests_served": reg.counter(
                "repro_s2_requests_total", "REQUEST frames accepted."
            ),
            "requests_in_flight": reg.gauge(
                "repro_s2_requests_in_flight",
                "Requests accepted and not yet answered.",
            ),
            "requests_in_flight_peak": reg.gauge(
                "repro_s2_requests_in_flight_peak",
                "High-water mark of concurrent in-flight requests.",
            ),
        }
        self._request_seconds = reg.histogram(
            "repro_s2_request_seconds",
            "Per-round dispatch wall-clock inside session service threads.",
        )
        self._health = HealthState()
        self._metrics_port = metrics_port
        self._exporter: MetricsExporter | None = None
        self._closed = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> str:
        """Bind, listen, and start accepting; returns the bound address.

        With a ``state_dir``, previously spilled registrations are
        reloaded first, so clients of the restarted daemon open
        sessions by relation id without re-uploading key material.
        """
        if self.state_dir is not None:
            self._restore_registry()
        family, target = parse_address(self.listen_spec)
        if family == "tcp":
            host, port = target
            listener = socket.create_server((host, port))
            bound_port = listener.getsockname()[1]
            self.address = f"tcp://{host}:{bound_port}"
        else:
            if not hasattr(socket, "AF_UNIX"):
                raise TransportError("Unix-domain sockets unavailable here")
            with contextlib.suppress(OSError):
                os.unlink(target)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(target)
            listener.listen()
            self._unix_path = target
            self.address = f"unix://{target}"
        # A blocking accept() does not reliably wake when another thread
        # closes the listener; a short timeout lets the loop observe the
        # shutdown flag, so close() can join deterministically.
        listener.settimeout(0.1)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="s2-accept", daemon=True
        )
        self._accept_thread.start()
        if self._metrics_port is not None:
            # Serve both the process-wide registry (channel/pool/cache
            # instruments the daemon's own code records into) and this
            # service's private counters on one endpoint.
            exporter = MetricsExporter(
                port=self._metrics_port,
                registries=[REGISTRY, self.registry],
                health=self._health,
            )
            try:
                exporter.start()
            except BaseException:
                self.close()
                raise
            self._exporter = exporter
        return self.address

    @property
    def metrics_port(self) -> int | None:
        """Bound port of the metrics exporter (``None`` when not mounted)."""
        exporter = self._exporter
        return exporter.port if exporter is not None else None

    def drain(self) -> None:
        """Flip ``/healthz`` to draining (sticky; :meth:`close` implies it)."""
        self._health.drain()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed
            sock.settimeout(None)
            if isinstance(sock.getsockname(), tuple):
                with contextlib.suppress(OSError):
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(self, sock)
            with self._lock:
                self._connections.add(connection)
                self._counters["connections_total"].inc()
                self._counters["connections_active"].inc()
            threading.Thread(
                target=connection.run, name="s2-connection", daemon=True
            ).start()

    def serve_forever(self) -> None:
        """Block until :meth:`close` (or the process) ends the service."""
        self._closed.wait()

    def close(self) -> None:
        """Stop accepting, drop every connection, release the pool."""
        self._health.drain()
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            with contextlib.suppress(OSError):
                connection.sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                connection.sock.close()
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._unix_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self._unix_path)
        if self.compute is not None:
            # Connections were torn down above, so the drain is usually
            # instant; wait=True covers a handler that slipped a batch in
            # just before the shutdown flag landed.
            self.compute.close(wait=True)
            self.compute = None
        exporter, self._exporter = self._exporter, None
        if exporter is not None:
            exporter.close()

    def __enter__(self) -> "S2Service":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- registry and bookkeeping (called by connections) ---------------

    def _register(self, blob: dict, payload: bytes | None) -> None:
        """Install one registration.

        ``payload`` is the raw REGISTER frame body (``None`` when
        restoring from disk) — persisted verbatim so a restart replays
        exactly what the client uploaded.
        """
        relation_id = blob["relation_id"]
        build_pool = False
        persist = False
        with self._lock:
            if payload is not None:
                self._counters["registration_uploads"].inc()
                self._counters["registration_bytes"].inc(len(payload))
            if relation_id not in self._registry:
                self._registry[relation_id] = (blob["keypair"], blob["dj"])
                if payload is None:
                    self._counters["registrations_restored"].inc()
                else:
                    self._counters["registrations"].inc()
                    persist = self.state_dir is not None
                # The pool workers hold key material, so the first
                # registration is the earliest the pool can fork.  The
                # multi-second fork+warmup happens *outside* the lock —
                # other connections keep registering and opening sessions
                # meanwhile (their clouds just run pool-less until the
                # pool lands, which is transcript-invisible).
                if self.s2_workers > 0 and not self._pool_started:
                    self._pool_started = True
                    build_pool = True
        if persist:
            self._persist_registration(relation_id, payload)
        if build_pool:
            pool = ComputePool(
                blob["keypair"], blob["dj"], workers=self.s2_workers, mode=self.s2_mode
            )
            with self._lock:
                closed = self._closed.is_set()
                if not closed:
                    self.compute = pool
            if closed:
                pool.close()

    def _mutate_registration(self, old_id: str, new_id: str) -> None:
        """Re-key one registration after a client-side relation mutation.

        The key material is identical across versions of one relation
        (mutations only re-randomize ciphertexts), so the entry moves —
        it is never re-uploaded.  With a ``state_dir`` the spill moves
        too: the payload is re-pickled under the new relation id (the
        restore path validates the id against the file name) and the old
        spill is removed.  Unknown old ids and an identity move are
        no-ops; persistence failures are swallowed (the spill is an
        optimization — the client re-registers on demand either way).
        """
        if not new_id or old_id == new_id:
            return
        with self._lock:
            entry = self._registry.pop(old_id, None)
            if entry is None:
                return
            # Never clobber an existing registration for the new id (a
            # racing client may have re-registered it directly).
            self._registry.setdefault(new_id, entry)
            self._counters["registration_mutations"].inc()
        if self.state_dir is None:
            return
        try:
            keypair, dj = entry
            payload = pickle.dumps(
                {"relation_id": new_id, "keypair": keypair, "dj": dj},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._persist_registration(new_id, payload)
            old_path = self._registration_path(old_id)
            with contextlib.suppress(OSError):
                os.remove(old_path)
        except Exception:  # noqa: BLE001 — spill moves are best-effort
            pass

    def _registration_path(self, relation_id: str) -> str:
        # Relation ids are hex digests (filesystem-safe by construction);
        # reject anything else rather than risk a traversal.
        if not relation_id or not all(c.isalnum() for c in relation_id):
            raise TransportError(f"unsafe relation id: {relation_id!r}")
        return os.path.join(self.state_dir, f"{relation_id}.reg")

    def _persist_registration(self, relation_id: str, payload: bytes) -> None:
        """Atomically spill one registration payload to the state dir.

        The payload holds the provisioned secret key, so the directory
        is created owner-only (0700) and the spill owner-read/write
        (0600) regardless of the process umask.
        """
        os.makedirs(self.state_dir, mode=0o700, exist_ok=True)
        path = self._registration_path(relation_id)
        tmp = f"{path}.tmp.{os.getpid()}"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    def _restore_registry(self) -> None:
        """Reload spilled registrations (corrupt files are skipped, not
        fatal — the client re-registers on demand)."""
        if not os.path.isdir(self.state_dir):
            return
        for name in sorted(os.listdir(self.state_dir)):
            if not name.endswith(".reg"):
                continue
            path = os.path.join(self.state_dir, name)
            try:
                with open(path, "rb") as handle:
                    payload = handle.read()
                blob = pickle.loads(payload)
                # A valid spill is a registration dict for this file's
                # relation id with complete key material; anything else
                # (truncated write, foreign pickle) is skipped whole.
                if (
                    isinstance(blob, dict)
                    and blob.get("relation_id") == name[: -len(".reg")]
                    and "keypair" in blob
                    and "dj" in blob
                ):
                    self._register(blob, None)
            except Exception:  # noqa: BLE001 — a bad spill must not kill boot
                continue

    def _registration(self, relation_id: str) -> tuple | None:
        with self._lock:
            return self._registry.get(relation_id)

    def _session_opened(self, label: str = "") -> None:
        with self._lock:
            self._counters["sessions_opened"].inc()
            self._counters["sessions_active"].inc()
            if label.startswith("job-"):
                self._counters["job_sessions"].inc()

    def _session_closed(self) -> None:
        with self._lock:
            self._counters["sessions_active"].dec()

    def _request_received(self) -> None:
        with self._lock:
            self._counters["requests_served"].inc()
            self._counters["requests_in_flight"].inc()
            in_flight = self._counters["requests_in_flight"].value
            # Peak concurrency is how rendezvous coalescing shows up on
            # the daemon side: a coalesced group of N jobs lands N
            # REQUEST frames near-simultaneously.
            if in_flight > self._counters["requests_in_flight_peak"].value:
                self._counters["requests_in_flight_peak"].set(in_flight)

    def _request_done(self) -> None:
        with self._lock:
            self._counters["requests_in_flight"].dec()

    def _observe_request(self, seconds: float) -> None:
        self._request_seconds.observe(seconds)

    def _connection_closed(self, connection: _Connection) -> None:
        with self._lock:
            if connection in self._connections:
                self._connections.discard(connection)
                self._counters["connections_active"].dec()

    def stats(self) -> dict:
        """A consistent point-in-time snapshot of the service counters.

        Read under the same lock every mutator holds, from the same
        instruments ``/metrics`` renders — the two views are one set of
        numbers and can never disagree.  Values come back as ints.
        """
        with self._lock:
            return {name: int(c.value) for name, c in self._counters.items()}


def launch_daemon(
    listen: str = "tcp://127.0.0.1:0",
    extra_args: tuple[str, ...] = (),
    quiet: bool = False,
    timeout: float = 30.0,
):
    """Start the daemon as a separate OS process; returns (process, address).

    The real deployment shape for examples, benchmarks, and smoke
    scripts: ``python -m repro.server.s2_service`` is spawned with this
    package on its path, the bound address is read from a ready file,
    and the caller owns the returned :class:`subprocess.Popen`
    (terminate it when done).
    """
    import pathlib
    import subprocess
    import sys
    import tempfile
    import time

    src_root = str(pathlib.Path(__file__).resolve().parent.parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.NamedTemporaryFile(suffix=".addr", delete=False) as handle:
        ready_file = handle.name
    os.unlink(ready_file)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.s2_service",
            "--listen",
            listen,
            "--ready-file",
            ready_file,
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL if quiet else None,
    )
    try:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(ready_file):
                address = pathlib.Path(ready_file).read_text().strip()
                os.unlink(ready_file)
                return process, address
            if process.poll() is not None:
                raise RuntimeError("S2 daemon exited before becoming ready")
            time.sleep(0.05)
        raise RuntimeError("S2 daemon did not become ready in time")
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(ready_file)
        process.terminate()
        raise


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.server.s2_service``."""
    parser = argparse.ArgumentParser(
        prog="repro.server.s2_service", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "--listen",
        default="tcp://127.0.0.1:0",
        help="tcp://host:port (port 0 = ephemeral) or unix:///path",
    )
    parser.add_argument(
        "--s2-workers",
        type=int,
        default=0,
        help="compute-pool workers for large decrypt batches",
    )
    parser.add_argument(
        "--s2-mode",
        default="auto",
        choices=("auto", "thread", "process"),
        help="compute-pool flavour: GIL-free kernel threads, worker "
        "processes, or auto-select (default)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="big-int backend (pure / gmpy2 / gmp-kernel / auto; "
        "default: REPRO_BACKEND)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="spill relation registrations here and reload them on "
        "restart (holds secret key material — protect accordingly)",
    )
    parser.add_argument(
        "--ready-file",
        default=None,
        help="write the bound address here once listening (CI/scripts)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus text at http://127.0.0.1:PORT/metrics "
        "plus /healthz (0 = ephemeral port; default: no exporter)",
    )
    args = parser.parse_args(argv)

    if args.backend:
        backend.set_backend(args.backend)
    service = S2Service(
        args.listen,
        s2_workers=args.s2_workers,
        s2_mode=args.s2_mode,
        state_dir=args.state_dir,
        metrics_port=args.metrics_port,
    )
    address = service.start()
    print(f"repro-s2: listening on {address}", flush=True)
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(address)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()


if __name__ == "__main__":
    main()

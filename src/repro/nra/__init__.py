"""Plaintext top-k algorithms (Section 3.4) and baselines.

* :mod:`repro.nra.items` — sorted-access data model (``I_i^d = (o, x)``).
* :mod:`repro.nra.nra` — Fagin–Lotem–Naor No-Random-Access algorithm
  (Algorithm 1), the algorithm ``SecQuery`` executes obliviously.  Used as
  the differential-testing oracle for the secure engine.
* :mod:`repro.nra.ta` — the Threshold Algorithm (random-access variant),
  provided as an additional baseline/extension.
* :mod:`repro.nra.naive` — full-scan top-k, the ground-truth oracle.
"""

from repro.nra.items import DataItem, SortedLists
from repro.nra.nra import NraResult, nra_topk
from repro.nra.ta import ta_topk
from repro.nra.naive import naive_topk

__all__ = [
    "DataItem",
    "SortedLists",
    "NraResult",
    "nra_topk",
    "ta_topk",
    "naive_topk",
]

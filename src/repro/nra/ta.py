"""The Threshold Algorithm (TA) of Fagin, Lotem and Naor.

TA combines sorted access with *random* access: after each depth it looks
up the full score of every newly seen object and halts when the ``k``-th
best exact score reaches the threshold ``Σ bottoms``.  The paper's secure
construction deliberately builds on NRA instead, because random accesses
would leak which rows the query touches (Section 3.4: NRA "leaks minimal
information").  TA is included here as a plaintext baseline so the
halting-depth trade-off can be measured (ablation benchmark).
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.nra.items import SortedLists
from repro.nra.nra import NraResult


def ta_topk(lists: SortedLists, rows: list[list[int]], k: int) -> NraResult:
    """Run TA; ``rows`` provides the random-access score lookups."""
    if k < 1:
        raise QueryError("k must be >= 1")
    attributes = lists.attributes
    n = lists.n_objects

    exact: dict[int, int] = {}
    for d in range(n):
        for item in lists.depth(d):
            if item.object_id not in exact:
                exact[item.object_id] = sum(rows[item.object_id][a] for a in attributes)
        threshold = sum(lists.bottoms(d))
        ranked = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))
        if len(ranked) >= k and ranked[k - 1][1] >= threshold:
            return NraResult(topk=ranked[:k], halting_depth=d + 1)
    ranked = sorted(exact.items(), key=lambda kv: (-kv[1], kv[0]))
    return NraResult(topk=ranked[:k], halting_depth=n)

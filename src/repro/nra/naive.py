"""Full-scan top-k — the ground-truth oracle.

Computes every object's exact aggregate score and returns the ``k``
largest.  Used to validate both the plaintext NRA and the secure engine.
"""

from __future__ import annotations

from repro.exceptions import QueryError


def naive_topk(
    rows: list[list[int]], attributes: list[int], k: int, weights: list[int] | None = None
) -> list[tuple[int, int]]:
    """Return ``k`` ``(object_id, score)`` pairs with the largest weighted
    sums over ``attributes``, ties broken by object id."""
    if k < 1:
        raise QueryError("k must be >= 1")
    if weights is None:
        weights = [1] * len(attributes)
    if len(weights) != len(attributes):
        raise QueryError("weights/attributes length mismatch")
    scored = [
        (o, sum(w * row[a] for w, a in zip(weights, attributes)))
        for o, row in enumerate(rows)
    ]
    scored.sort(key=lambda t: (-t[1], t[0]))
    return scored[:k]

"""The No-Random-Access algorithm (Fagin, Lotem, Naor; Algorithm 1).

NRA performs only sorted accesses: at depth ``d`` it sees the ``d``-th
entry of every list, maintains for every encountered object a lower bound
``W^d(o)`` (sum of seen scores) and an upper bound ``B^d(o)`` (seen scores
plus the current bottom score of every unseen list), and halts when the
``k`` best lower bounds dominate every other candidate's upper bound and
the upper bound ``Σ bottoms`` of entirely-unseen objects.

This plaintext implementation is the semantic specification that
``SecQuery`` (Section 8) executes obliviously; the differential tests in
``tests/test_core_query.py`` check the secure engine against it depth by
depth.

Both halting rules discussed in DESIGN.md are supported:

* ``halting="strict"`` — textbook NRA: check every candidate outside the
  current top-k plus the unseen bound (exact halting depth).
* ``halting="paper"``  — Algorithm 3's check: only the (k+1)-th candidate
  of ``T`` sorted by worst score (plus the unseen-object bound, without
  which the rule is unsound — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import QueryError
from repro.nra.items import SortedLists


@dataclass
class NraResult:
    """Outcome of an NRA run."""

    topk: list[tuple[int, int]]
    """``(object_id, worst_score)`` pairs, best first (worst = exact score
    at halting time for reported objects in most cases)."""

    halting_depth: int
    """1-based depth at which the algorithm stopped."""

    depths_state: list[dict] = field(default_factory=list)
    """Optional per-depth snapshots (populated when ``trace=True``)."""


def nra_topk(
    lists: SortedLists,
    k: int,
    halting: str = "strict",
    trace: bool = False,
) -> NraResult:
    """Run NRA over ``lists`` and return the top-``k`` objects."""
    if k < 1:
        raise QueryError("k must be >= 1")
    if halting not in ("strict", "paper"):
        raise QueryError(f"unknown halting rule: {halting!r}")
    m = lists.n_lists
    n = lists.n_objects

    seen_scores: dict[int, dict[int, int]] = {}
    snapshots: list[dict] = []

    for d in range(n):
        for j, item in enumerate(lists.depth(d)):
            seen_scores.setdefault(item.object_id, {})[j] = item.score
        bottoms = lists.bottoms(d)

        worst: dict[int, int] = {}
        best: dict[int, int] = {}
        for o, per_list in seen_scores.items():
            w = sum(per_list.values())
            b = w + sum(bottoms[j] for j in range(m) if j not in per_list)
            worst[o] = w
            best[o] = b

        ranked = sorted(worst.items(), key=lambda kv: (-kv[1], kv[0]))
        if trace:
            snapshots.append(
                {"depth": d + 1, "worst": dict(worst), "best": dict(best)}
            )

        if len(ranked) >= k:
            mk = ranked[k - 1][1]
            topk_ids = {o for o, _ in ranked[:k]}
            unseen_bound = sum(bottoms)
            if halting == "strict":
                others_ok = all(
                    best[o] <= mk for o in worst if o not in topk_ids
                )
            else:
                if len(ranked) > k:
                    o_next = ranked[k][0]
                    others_ok = best[o_next] <= mk
                else:
                    others_ok = True
            seen_all = len(seen_scores) >= k
            if seen_all and others_ok and (unseen_bound <= mk or len(seen_scores) == n):
                return NraResult(
                    topk=ranked[:k],
                    halting_depth=d + 1,
                    depths_state=snapshots,
                )

    # Full scan: every score is exact now.
    ranked = sorted(worst.items(), key=lambda kv: (-kv[1], kv[0]))
    return NraResult(topk=ranked[:k], halting_depth=n, depths_state=snapshots)

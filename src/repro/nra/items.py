"""Sorted-access data model for the NRA family of algorithms.

A relation with ``M`` numeric attributes is viewed as ``M`` sorted lists
(Section 3.4): list ``L_i`` ranks all ``n`` objects by their ``i``-th
local score, best-first.  ``SortedLists`` materializes that view from a
row-major relation and provides the depth-``d`` sorted access the
algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DataError


@dataclass(frozen=True)
class DataItem:
    """One sorted-list entry ``I_i^d = (o_i^d, x_i^d)``."""

    object_id: int
    score: int


class SortedLists:
    """The sorted-lists view ``S = {L_1, ..., L_M}`` of a relation.

    Parameters
    ----------
    rows:
        ``rows[o]`` is the attribute vector of object ``o``; object ids
        are the row indices.
    attributes:
        Which attribute indices to materialize (default: all).

    Lists are sorted in *descending* score order (best-first sorted
    access, as in Fagin et al. and the paper's worked example in Fig. 3).
    """

    def __init__(self, rows: list[list[int]], attributes: list[int] | None = None):
        if not rows:
            raise DataError("relation is empty")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise DataError("ragged relation")
        self.n_objects = len(rows)
        self.attributes = list(range(width)) if attributes is None else list(attributes)
        for a in self.attributes:
            if not 0 <= a < width:
                raise DataError(f"attribute {a} out of range")
        self.lists: list[list[DataItem]] = []
        for a in self.attributes:
            ranked = sorted(
                (DataItem(o, rows[o][a]) for o in range(self.n_objects)),
                key=lambda item: (-item.score, item.object_id),
            )
            self.lists.append(ranked)

    @property
    def n_lists(self) -> int:
        """Number of sorted lists ``m``."""
        return len(self.lists)

    def depth(self, d: int) -> list[DataItem]:
        """The ``m`` items visible at depth ``d`` (0-based)."""
        if not 0 <= d < self.n_objects:
            raise DataError(f"depth {d} out of range")
        return [lst[d] for lst in self.lists]

    def bottoms(self, d: int) -> list[int]:
        """The last-seen ("bottom") score of each list at depth ``d``."""
        return [lst[d].score for lst in self.lists]

    def prefix(self, list_index: int, d: int) -> list[DataItem]:
        """Items of list ``list_index`` down to depth ``d`` inclusive."""
        return self.lists[list_index][: d + 1]

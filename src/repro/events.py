"""Typed progress events streamed from a running query job.

A :class:`~repro.server.jobs.QueryJob` exposes ``events()``, an iterator
over the events below.  They are emitted from two hooks:

* the scheduler (:mod:`repro.server.topk_server`) marks the job
  lifecycle — :class:`JobQueued`, :class:`JobStarted`,
  :class:`JobFinished`;
* the S1 context (:mod:`repro.protocols.base`) and the NRA engine loop
  (:mod:`repro.core.engine`) mark query progress — one
  :class:`RoundTrip` per coalesced round (with the channel's cumulative
  byte/round counters), one :class:`DepthAdvanced` per scanned depth,
  and one :class:`CandidateFinalized` per winner once the halting rule
  fixes the top-k.

Events are observations, never protocol state: emitting them consumes
no randomness and touches no ciphertext, so a job run with a listener
is bit-identical (results, rounds, bytes, leakage) to one without.

This module is a leaf — it may be imported from any layer.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressEvent:
    """Base class of every event a query job streams."""


@dataclass(frozen=True)
class JobQueued(ProgressEvent):
    """The job entered the server's bounded job queue."""

    job_id: int


@dataclass(frozen=True)
class JobStarted(ProgressEvent):
    """A scheduler worker picked the job up and began executing it."""

    job_id: int


@dataclass(frozen=True)
class RoundTrip(ProgressEvent):
    """One coalesced communication round completed.

    Counters are *cumulative* for the job's channel, so a consumer can
    render live totals without summing.
    """

    rounds: int
    bytes_s1_to_s2: int
    bytes_s2_to_s1: int


@dataclass(frozen=True)
class DepthAdvanced(ProgressEvent):
    """The NRA engine finished scanning one depth of the sorted lists."""

    depth: int
    """1-based depth just completed."""

    candidates: int
    """Size of the candidate list ``T`` after this depth."""


@dataclass(frozen=True)
class CandidateFinalized(ProgressEvent):
    """The halting rule fixed one winner (emitted once per rank)."""

    rank: int
    """1-based position in the top-k, best first."""

    depth: int
    """1-based depth at which the query halted."""


@dataclass(frozen=True)
class S2Progress(ProgressEvent):
    """S2-side decrypt-batch progress, piggybacked on a REPLY frame.

    Remote daemons (protocol ``repro-s2/3``) report how much crypto
    work each round carried; local transports derive the same
    information from :class:`PoolBatch` instead.  Counters are
    per-round, not cumulative.
    """

    batches: int
    """How many dispatched requests this round's REPLY covered."""

    values: int
    """Total payload values (ciphertexts and friends) across them."""

    seconds: float
    """S2-side wall-clock spent serving the round."""


@dataclass(frozen=True)
class PoolBatch(ProgressEvent):
    """One compute-pool batch finished (local S2 with a pool attached)."""

    op: str
    """The pool operation (``"decrypt"`` / ``"strip"``)."""

    values: int
    """How many values the batch carried."""

    seconds: float
    """Wall-clock the batch took, fan-out included."""


@dataclass(frozen=True)
class SpanClosed(ProgressEvent):
    """A :class:`~repro.obs.trace.Span` of the job's trace closed.

    Streams the trace live (per-round laps, pool/S2 sub-spans); the
    full timeline lands on ``result.stats.trace`` at the end.
    """

    name: str
    seconds: float


@dataclass(frozen=True)
class TopKChanged(ProgressEvent):
    """A continuous top-k watch observed a new winning set.

    Emitted by a :class:`~repro.server.jobs.WatchJob` once per
    *distinct* top-k set: the first evaluation always emits (the watch's
    initial view), later re-evaluations emit only when the revealed
    ``(object_id, score)`` set actually changed — an insert that lands
    outside the top-k produces no event.
    """

    version: int
    """Relation version the evaluation ran against."""

    top_k: tuple
    """The revealed winners — ``(object_id, score)`` pairs, best first."""


@dataclass(frozen=True)
class JobFinished(ProgressEvent):
    """Terminal event: the job reached ``done``/``cancelled``/``failed``.

    Always the last event of a job's stream.
    """

    job_id: int
    status: str

"""Party objects for the two-cloud architecture (Section 3.2).

* :class:`CryptoCloud` is S2: it holds the Paillier secret key and exposes
  exactly the operations the sub-protocols require.  Every piece of
  information S2 legitimately learns during a protocol (equality bits,
  duplicate-group structure, comparison signs of blinded values, ...) is
  recorded in a :class:`LeakageLog`, which the security test-suite audits
  against the declared leakage profiles ``L2_Query = {EP_d}`` etc.

* :class:`S1Context` bundles what the S1-side protocol code needs: the
  public keys, the Damgård–Jurik instance, the signed encoder, the
  channel, a randomness source, and a :class:`~repro.net.transport.Transport`
  to S2.  S1-side code never holds an S2 object: every interaction is a
  typed message submitted through the transport and serviced by the
  :class:`~repro.net.dispatch.S2Dispatcher`.

S1 never holds the secret key; tests enforce this by auditing that no
``PaillierSecretKey`` is reachable from an :class:`S1Context`.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field

from repro.crypto.damgard_jurik import DamgardJurik, LayeredCiphertext
from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import (
    Ciphertext,
    PaillierKeypair,
    PaillierPublicKey,
    to_signed,
)
from repro.crypto.rng import SecureRandom
from repro.events import RoundTrip
from repro.net.batching import RoundBatcher
from repro.net.channel import Channel
from repro.net.dispatch import S2Dispatcher
from repro.net.transport import Transport, make_transport
from repro.exceptions import KeyMismatchError, ProtocolError, TransportError


@dataclass
class LeakageEvent:
    """One observation made by a server during a protocol run."""

    observer: str     # "S1" or "S2"
    protocol: str     # which sub-protocol produced the observation
    kind: str         # e.g. "eq_bit", "dedup_groups", "cmp_sign"
    payload: object   # the observed value (a bit, a list of group sizes, ...)


class LeakageLog:
    """Chronological record of everything the servers learned.

    The CQA security argument (Section 9) says the servers learn nothing
    beyond the declared leakage functions.  This log is the mechanism that
    lets tests *check* that claim empirically: after a query we assert the
    event stream is a deterministic function of the declared profile.
    """

    def __init__(self):
        self.events: list[LeakageEvent] = []

    def record(self, observer: str, protocol: str, kind: str, payload) -> None:
        """Append one observation."""
        self.events.append(LeakageEvent(observer, protocol, kind, payload))

    def by_kind(self, kind: str) -> list[LeakageEvent]:
        """All events of one kind."""
        return [e for e in self.events if e.kind == kind]

    def by_observer(self, observer: str) -> list[LeakageEvent]:
        """All events one server made."""
        return [e for e in self.events if e.observer == observer]

    def clear(self) -> None:
        """Forget everything (between queries)."""
        self.events.clear()


class CryptoCloud:
    """S2 — the crypto cloud holding the secret key (Section 3.2).

    The methods below are the *only* ways any S1-side code can touch
    plaintexts.  Each method corresponds to S2's role in one of the
    paper's sub-protocols and records its legitimate observations in the
    leakage log.
    """

    def __init__(
        self,
        keypair: PaillierKeypair,
        dj: DamgardJurik,
        rng: SecureRandom | None = None,
        leakage: LeakageLog | None = None,
        compute=None,
    ):
        self._keypair = keypair
        self.public_key = keypair.public_key
        self.dj = dj
        self.rng = rng or SecureRandom()
        self.leakage = leakage or LeakageLog()
        #: Optional :class:`~repro.crypto.parallel.ComputePool`: large
        #: decrypt batches are chunked across worker processes.  Decryption
        #: consumes no randomness, so the fan-out is transcript-invisible.
        self.compute = compute

    # ------------------------------------------------------------------
    # Batched secret-key primitives.  All bulk decryption funnels through
    # these two helpers, which use the backend's vectorized CRT path and,
    # when a compute pool is attached, fan chunks out to worker processes.
    # ------------------------------------------------------------------

    def _decrypt_values(self, cts: list[Ciphertext]) -> list[int]:
        for ct in cts:
            if ct.public_key != self.public_key:
                raise KeyMismatchError(
                    "ciphertext was produced under a different key"
                )
        values = [ct.value for ct in cts]
        if self.compute is not None:
            return self.compute.decrypt_values(values)
        return self._keypair.secret_key.raw_decrypt_batch(values)

    def _strip_values(self, lcs: list[LayeredCiphertext]) -> list[Ciphertext]:
        if self.compute is not None:
            # Same mismatch error as the plain path below; the workers
            # rebuild the values under their own DJ copy and run the
            # ordinary decrypt path (same unit validation, same errors),
            # so only the inner wrapping differs here.
            for lc in lcs:
                if lc.scheme != self.dj:
                    raise KeyMismatchError("ciphertext from a different DJ instance")
            return [
                self.dj.wrap_inner_value(value)
                for value in self.compute.strip_values([lc.value for lc in lcs])
            ]
        return self.dj.decrypt_inner_batch(lcs, self._keypair)

    # ------------------------------------------------------------------
    # Equality testing (S2's side of SecWorst / SecBest / SecUpdate).
    # ------------------------------------------------------------------

    def test_zero_batch(
        self, cts: list[Ciphertext], protocol: str
    ) -> list[LayeredCiphertext]:
        """Decrypt each ``Enc(b)`` and return ``E2(t)`` with ``t=(b==0)``.

        This is S2's loop in Algorithms 4/6/9: the incoming values are
        outputs of the ``⊖`` operator on randomly permuted items, so each
        decrypted value is either 0 (same object) or uniformly random.
        S2 legitimately learns the multiset of equality bits — exactly the
        equality-pattern leakage ``EP_d`` of Section 9 — and nothing else.
        """
        bits = [1 if b == 0 else 0 for b in self._decrypt_values(cts)]
        # Re-encryption stays on this process's rng so the reply stream is
        # identical with or without a compute pool.
        replies = [self.dj.encrypt(t, self.rng) for t in bits]
        self.leakage.record("S2", protocol, "eq_bits", bits)
        return replies

    # ------------------------------------------------------------------
    # RecoverEnc (Algorithm 5), S2's side.
    # ------------------------------------------------------------------

    def strip_layer_batch(
        self, lcs: list[LayeredCiphertext], protocol: str
    ) -> list[Ciphertext]:
        """Decrypt the outer DJ layer of each ``E2(Enc(c + r))``.

        The inner plaintexts are additively blinded by S1, so S2 observes
        only uniformly random Paillier ciphertext *values* — no leakage
        event is recorded beyond the batch size.
        """
        self.leakage.record("S2", protocol, "recover_batch", len(lcs))
        return self._strip_values(lcs)

    # ------------------------------------------------------------------
    # Comparison helpers (EncCompare constructions).
    # ------------------------------------------------------------------

    def blinded_sign(self, ct: Ciphertext, protocol: str) -> bool:
        """Return whether the (blinded) signed plaintext is positive.

        Used by the multiplicative-blind ``EncCompare``: the plaintext is
        ``r * (2(b - a) + 1)`` for random ``r``, so the sign S2 learns is
        the comparison of a coin-flipped pair — a uniform bit.  The
        magnitude class is extra (documented) leakage of this fast
        construction; the DGK construction avoids it.
        """
        value = self._keypair.secret_key.decrypt_signed(ct)
        sign = value > 0
        self.leakage.record("S2", protocol, "cmp_sign", sign)
        return sign

    def decrypt_masked_bit(self, ct: Ciphertext, protocol: str) -> int:
        """Decrypt a ciphertext known to hold a coin-masked bit."""
        bit = self._keypair.secret_key.decrypt(ct)
        if bit not in (0, 1):
            raise ProtocolError("masked-bit ciphertext held a non-bit value")
        self.leakage.record("S2", protocol, "masked_bit", bit)
        return bit

    def dgk_decompose(
        self, ct: Ciphertext, ell: int, protocol: str
    ) -> tuple[list[Ciphertext], Ciphertext]:
        """S2's first step of the DGK comparison.

        Decrypts the additively-blinded value ``c = z + r`` (uniform given
        the blinding), and returns encryptions of the low ``ell`` bits of
        ``c`` plus an encryption of ``floor(c / 2**ell)``.
        """
        c = self._keypair.secret_key.decrypt(ct)
        low = c % (1 << ell)
        high = c >> ell
        bit_cts = self.public_key.encrypt_batch(
            [(low >> i) & 1 for i in range(ell)], self.rng
        )
        self.leakage.record("S2", protocol, "dgk_blinded", None)
        return bit_cts, self.public_key.encrypt(high, self.rng)

    def dgk_any_zero(self, cts: list[Ciphertext], protocol: str) -> bool:
        """Whether any of the (randomized, permuted) values decrypts to 0."""
        if self.compute is None:
            # Inline path keeps the short-circuit: stop at the first zero.
            sk = self._keypair.secret_key
            found = any(sk.decrypt(ct) == 0 for ct in cts)
        else:
            found = any(value == 0 for value in self._decrypt_values(cts))
        self.leakage.record("S2", protocol, "dgk_any_zero", found)
        return found

    # ------------------------------------------------------------------
    # Sorting (EncSort), deduplication (SecDedup / SecDupElim) and
    # filtering (SecFilter) are bulk operations: their S2 sides live in
    # the respective protocol modules as functions taking the CryptoCloud,
    # but the primitive they share is below.
    # ------------------------------------------------------------------

    def decrypt_for_protocol(self, ct: Ciphertext, protocol: str, kind: str) -> int:
        """Decrypt one blinded value and log the observation kind.

        Centralized so the leakage audit can enumerate every decryption
        S2 ever performed and classify it.
        """
        value = self._keypair.secret_key.decrypt(ct)
        self.leakage.record("S2", protocol, kind, None)
        return value

    def decrypt_signed_for_protocol(
        self, ct: Ciphertext, protocol: str, kind: str
    ) -> int:
        """Signed variant of :meth:`decrypt_for_protocol`."""
        value = self._keypair.secret_key.decrypt_signed(ct)
        self.leakage.record("S2", protocol, kind, None)
        return value

    def decrypt_batch_for_protocol(
        self, cts: list[Ciphertext], protocol: str, kind: str
    ) -> list[int]:
        """Batch variant of :meth:`decrypt_for_protocol`: one leakage event
        per decryption (same audit granularity as the loop it replaces)."""
        values = self._decrypt_values(cts)
        for _ in values:
            self.leakage.record("S2", protocol, kind, None)
        return values

    def decrypt_signed_batch_for_protocol(
        self, cts: list[Ciphertext], protocol: str, kind: str
    ) -> list[int]:
        """Signed variant of :meth:`decrypt_batch_for_protocol`."""
        return to_signed(
            self.public_key.n, self.decrypt_batch_for_protocol(cts, protocol, kind)
        )

    def fresh_encrypt(self, value: int) -> Ciphertext:
        """A fresh Paillier encryption (S2 re-encrypting after a bulk op)."""
        return self.public_key.encrypt(value, self.rng)

    # ------------------------------------------------------------------
    # Baseline engines (engine registry: "plaintext" / "sknn").  These
    # reproduce the *cost structure* of the paper's comparison points —
    # full-relation shipment, no oblivious machinery — so S2 legitimately
    # learns everything it decrypts; the leakage log records that
    # wholesale reveal explicitly.
    # ------------------------------------------------------------------

    def _aggregate_records(
        self, scores: list[Ciphertext], records: list[Ciphertext]
    ) -> dict[int, int]:
        """Decrypt all (score, record-id) pairs and sum scores per object."""
        values = to_signed(self.public_key.n, self._decrypt_values(scores))
        rids = self._decrypt_values(records)
        totals: dict[int, int] = {}
        for rid, value in zip(rids, values):
            totals[rid] = totals.get(rid, 0) + value
        return totals

    def naive_topk(
        self, scores: list[Ciphertext], records: list[Ciphertext], k: int, protocol: str
    ) -> list[tuple[Ciphertext, Ciphertext]]:
        """Full-shipment strawman: decrypt everything, return the top-k.

        The reply is ``k`` fresh ``(Enc(record_id), Enc(total))`` pairs,
        best first (ties by record id, matching the plaintext oracle).
        """
        totals = self._aggregate_records(scores, records)
        ranked = sorted(totals.items(), key=lambda t: (-t[1], t[0]))[:k]
        self.leakage.record(
            "S2", protocol, "full_reveal", (len(scores), len(totals))
        )
        self.leakage.record(
            "S2", protocol, "naive_topk_ids", tuple(rid for rid, _ in ranked)
        )
        return [
            (self.fresh_encrypt(rid), self.fresh_encrypt(total % self.public_key.n))
            for rid, total in ranked
        ]

    def aggregate_by_record(
        self, scores: list[Ciphertext], records: list[Ciphertext], protocol: str
    ) -> tuple[list[int], list[Ciphertext]]:
        """SkNN-style phase 1: per-object aggregate scores, re-encrypted.

        Returns the (plaintext) record ids in ascending order alongside
        fresh encryptions of each object's total — the input to the
        baseline's secure-maximum selection scan.
        """
        totals = self._aggregate_records(scores, records)
        self.leakage.record(
            "S2", protocol, "full_reveal", (len(scores), len(totals))
        )
        rids = sorted(totals)
        return rids, [
            self.fresh_encrypt(totals[rid] % self.public_key.n) for rid in rids
        ]


@dataclass
class S1Context:
    """Everything the S1-side protocol code needs.

    S1 holds only public key material; :attr:`transport` stands in for
    the network connection to S2 — every value that crosses it is a
    typed message accounted through :attr:`channel`, submitted either
    one-per-round (:meth:`call`) or coalesced across many independent
    protocol flows (:meth:`run_flows`).
    """

    public_key: PaillierPublicKey
    dj: DamgardJurik
    encoder: SignedEncoder
    channel: Channel
    transport: Transport
    rng: SecureRandom = field(default_factory=SecureRandom)
    leakage: LeakageLog = field(default_factory=LeakageLog)
    on_event: object = None
    """Optional callable receiving :mod:`repro.events` progress events
    (one :class:`~repro.events.RoundTrip` per coalesced round, plus
    whatever the engine loop emits).  Pure observation — never consulted
    by protocol code."""
    control: object = None
    """Optional job control (anything with a ``check()`` method raising
    to abort).  Checked at every round boundary, which is what makes
    cooperative cancellation and per-job deadlines possible without a
    single mid-round interruption point."""

    def __post_init__(self):
        self._batcher = RoundBatcher(
            self.channel,
            self.transport,
            before_round=self.checkpoint,
            after_round=self._emit_round,
        )
        # One shared record of broken observation hooks: the batcher
        # guards its after-round hook, notify() guards the engine-loop
        # events — either way the query keeps running and the error is
        # kept for inspection instead of corrupting the round loop.
        self.hook_errors = self._batcher.hook_errors

    # -- job control and progress hooks ----------------------------------

    def checkpoint(self) -> None:
        """Honour a cancellation/deadline request at a safe boundary."""
        control = self.control
        if control is not None:
            control.check()

    def notify(self, event) -> None:
        """Deliver one progress event to the listener, if any.

        Listener exceptions are swallowed and recorded in
        :attr:`hook_errors` — progress delivery is observation only, so
        a broken listener must never abort the protocol run it watches.
        """
        on_event = self.on_event
        if on_event is None:
            return
        try:
            on_event(event)
        except Exception as exc:
            self._batcher.record_hook_error(exc)

    def _emit_round(self) -> None:
        if self.on_event is not None:
            stats = self.channel.stats
            self.on_event(
                RoundTrip(
                    rounds=stats.rounds,
                    bytes_s1_to_s2=stats.bytes_s1_to_s2,
                    bytes_s2_to_s1=stats.bytes_s2_to_s1,
                )
            )

    # -- S2 interaction --------------------------------------------------

    def call(self, msg):
        """Submit one request message to S2; one communication round."""
        return self._batcher.call(msg)

    def run_flows(self, flows: list) -> list:
        """Run protocol flows lock-step, coalescing each stage's requests
        into a single round-trip (see :mod:`repro.net.batching`)."""
        return self._batcher.run_flows(flows)

    def close(self) -> None:
        """Release the transport (threaded backends own a service thread)."""
        self.transport.close()

    # -- local helpers ---------------------------------------------------

    def encrypt(self, value: int) -> Ciphertext:
        """Encrypt a (signed) constant under the shared public key."""
        return self.public_key.encrypt_signed(value, self.rng)

    def zero(self) -> Ciphertext:
        """A fresh ``Enc(0)``."""
        return self.public_key.encrypt(0, self.rng)


@contextlib.contextmanager
def owned_context(ctx: S1Context):
    """Run a block that owns ``ctx``, then close it.

    The single home of the dead-link teardown rule: when the block
    *fails*, a secondary transport-close error is suppressed so the
    original exception surfaces undisturbed; on success the close runs
    normally (and may raise).  Used by every path that creates a
    throwaway context (``SecTopK.query``, the server's job runner).
    """
    try:
        yield ctx
    except BaseException:
        with contextlib.suppress(TransportError):
            ctx.close()
        raise
    else:
        ctx.close()


def wire_clouds(
    keypair: PaillierKeypair,
    dj: DamgardJurik,
    encoder: SignedEncoder,
    transport: str,
    s1_rng: SecureRandom,
    s2_rng: SecureRandom,
    leakage: LeakageLog | None = None,
    compute=None,
    rtt_ms: float = 0.0,
    relation_id: str | None = None,
) -> S1Context:
    """Deprecated public spelling of the two-cloud wiring.

    Prefer :func:`repro.connect` (the :class:`~repro.client.TopKClient`
    façade) — it owns context lifecycles, job scheduling and progress
    streaming; this low-level constructor remains for existing callers.
    """
    warnings.warn(
        "wire_clouds() is a legacy entry point; use repro.connect(...) / "
        "TopKClient for the supported client surface",
        DeprecationWarning,
        stacklevel=2,
    )
    return _wire_clouds(
        keypair,
        dj,
        encoder,
        transport,
        s1_rng,
        s2_rng,
        leakage=leakage,
        compute=compute,
        rtt_ms=rtt_ms,
        relation_id=relation_id,
    )


def _wire_clouds(
    keypair: PaillierKeypair,
    dj: DamgardJurik,
    encoder: SignedEncoder,
    transport: str,
    s1_rng: SecureRandom,
    s2_rng: SecureRandom,
    leakage: LeakageLog | None = None,
    compute=None,
    rtt_ms: float = 0.0,
    relation_id: str | None = None,
    session_label: str = "",
    on_event=None,
    control=None,
    transport_wrap=None,
) -> S1Context:
    """Assemble the two-cloud wiring: crypto cloud behind a dispatcher
    behind a ``transport``, and an S1 context in front of it.

    ``transport`` is either a local backend name (``"inprocess"`` /
    ``"threaded"``) or a remote S2 daemon address (``"tcp://host:port"``
    / ``"unix:///path"``).  The remote path opens one multiplexed
    session against the daemon — registering the deployment's key
    material under ``relation_id`` on first contact — and ships the S2
    randomness stream with the session, so the remote run is
    bit-identical (results, rounds, bytes, leakage) to the local one.

    ``compute`` optionally attaches a
    :class:`~repro.crypto.parallel.ComputePool` so S2's large decrypt
    batches fan out across processes (local backends only: a remote
    daemon configures its own pool via ``--s2-workers``); ``rtt_ms``
    adds a simulated round-trip latency to the link.  Single point of
    truth for context construction — every scheme's ``make_clouds`` and
    :func:`make_parties` delegate here.

    ``session_label`` rides the remote OPEN frame so the daemon can
    attribute sessions to the jobs that opened them; ``on_event`` /
    ``control`` are the context's progress and job-control hooks (see
    :class:`S1Context`).

    ``transport_wrap`` (optional) is applied to the fully-built link —
    latency shim included — before the context is assembled; the server's
    scan rendezvous interposes its per-job
    :class:`~repro.server.rendezvous.CoalescingTransport` here, at the
    exact point :class:`~repro.net.batching.RoundBatcher` flushes rounds.
    """
    from repro.net.socket_transport import is_socket_address, open_remote_session
    from repro.net.transport import LatencyTransport

    leakage = leakage or LeakageLog()
    if is_socket_address(transport):
        if compute is not None:
            raise ProtocolError(
                "a local compute pool cannot serve a remote S2; "
                "start the daemon with --s2-workers instead"
            )
        on_progress = None
        if on_event is not None:
            from repro.events import S2Progress

            listener = on_event

            def on_progress(batches, values, seconds):
                # Daemon-side decrypt progress (/3 REPLY piggyback) →
                # the job's event stream.  Observation only: a broken
                # listener must never abort the round that carried it.
                try:
                    listener(
                        S2Progress(batches=batches, values=values, seconds=seconds)
                    )
                except Exception:
                    pass

        link: Transport = open_remote_session(
            transport,
            keypair,
            dj,
            s2_rng,
            leakage,
            relation_id=relation_id,
            label=session_label,
            on_progress=on_progress,
        )
        if rtt_ms > 0:
            link = LatencyTransport(link, rtt_ms)
    else:
        cloud = CryptoCloud(keypair, dj, s2_rng, leakage, compute=compute)
        link = make_transport(transport, S2Dispatcher(cloud), rtt_ms=rtt_ms)
    if transport_wrap is not None:
        link = transport_wrap(link)
    return S1Context(
        public_key=keypair.public_key,
        dj=dj,
        encoder=encoder,
        channel=Channel(),
        transport=link,
        rng=s1_rng,
        leakage=leakage,
        on_event=on_event,
        control=control,
    )


def make_parties(
    keypair: PaillierKeypair,
    encoder: SignedEncoder | None = None,
    rng: SecureRandom | None = None,
    transport: str = "inprocess",
) -> S1Context:
    """Wire up an S1 context talking to a fresh S2 over a fresh channel.

    ``transport`` selects the backend (``"inprocess"`` or ``"threaded"``).
    Convenience for tests and examples; the full scheme in
    :mod:`repro.core` builds the parties itself.
    """
    rng = rng or SecureRandom()
    dj = DamgardJurik(keypair.public_key, s=2)
    encoder = encoder or SignedEncoder(keypair.public_key.n)
    return _wire_clouds(
        keypair, dj, encoder, transport, rng.spawn("s1"), rng.spawn("s2")
    )

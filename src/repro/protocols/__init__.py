"""The two-cloud secure sub-protocols of Sections 8, 10 and 12.

Every protocol is written from S1's point of view as a function taking an
:class:`~repro.protocols.base.S1Context` (public key material, the
communication channel, and a transport to S2).  The interactive protocols
also expose a ``*_flow`` generator form that yields typed request
messages — the engines run many flows lock-step so each stage crosses
the link as one coalesced round (see :mod:`repro.net.batching`).  S2's
side of each protocol is a :class:`~repro.protocols.base.CryptoCloud`
method or an ``s2_*`` function in the protocol module, reached only
through the :class:`~repro.net.dispatch.S2Dispatcher`; S2 only ever sees
blinded or permuted data and records every bit it *does* learn in the
leakage log, which the security tests audit.

Protocol inventory
------------------

===============  =====================================================
``recover_enc``  Algorithm 5 — strip one Damgård–Jurik layer
``enc_compare``  EncCompare [11] — two constructions (blinded / DGK)
``enc_sort``     EncSort [7] — two constructions (affine / network)
``sec_worst``    Algorithm 4 — per-depth encrypted worst score
``sec_best``     Algorithm 6 — encrypted best score
``sec_dedup``    Algorithm 7 — duplicate burial (full privacy)
``sec_dup_elim`` Section 10.1 — duplicate elimination (optimized)
``sec_update``   Algorithm 9 — merge depth results into ``T``
``sec_filter``   Algorithm 12 — drop non-joining tuples
``sec_join``     Algorithm 11 — the secure top-k join core
===============  =====================================================
"""

from repro.protocols.base import CryptoCloud, S1Context
from repro.protocols.recover_enc import recover_enc, recover_enc_batch, recover_enc_flow
from repro.protocols.enc_compare import enc_compare, enc_compare_flow
from repro.protocols.enc_sort import enc_sort
from repro.protocols.sec_worst import sec_worst, sec_worst_flow
from repro.protocols.sec_best import sec_best, sec_best_flow
from repro.protocols.sec_dedup import sec_dedup
from repro.protocols.sec_dup_elim import sec_dup_elim
from repro.protocols.sec_update import sec_update

__all__ = [
    "CryptoCloud",
    "S1Context",
    "recover_enc",
    "recover_enc_batch",
    "recover_enc_flow",
    "enc_compare",
    "enc_compare_flow",
    "enc_sort",
    "sec_worst",
    "sec_worst_flow",
    "sec_best",
    "sec_best_flow",
    "sec_dedup",
    "sec_dup_elim",
    "sec_update",
]

"""``SecDupElim`` — the optimized duplicate *elimination* of Section 10.1.

Identical to :mod:`repro.protocols.sec_dedup` except that S2 drops the
non-surviving members of each duplicate group instead of replacing them
with junk, so the returned list shrinks.  The extra price is leakage of
the *uniqueness pattern* ``UP_d`` — the number of distinct objects in the
batch — to S1 (who sees the shorter list) and S2; the paper trades this
for a 5–7x query speed-up (Section 11.2.3) because the costly ``EncSort``
then runs on far fewer items.
"""

from __future__ import annotations

from repro.crypto.paillier import PaillierKeypair
from repro.exceptions import ProtocolError
from repro.net.messages import DedupBatch
from repro.protocols.base import S1Context
from repro.protocols.sec_dedup import _prepare
from repro.structures.items import ScoredItem

PROTOCOL = "SecDupElim"


def sec_dup_elim(
    ctx: S1Context,
    items: list[ScoredItem],
    own_keypair: PaillierKeypair,
    ranks: list[int] | None = None,
    protocol: str = PROTOCOL,
) -> list[ScoredItem]:
    """Return a duplicate-free (shorter) list of re-encrypted items."""
    if len(items) <= 1:
        return list(items)
    ranks = ranks if ranks is not None else [0] * len(items)
    if len(ranks) != len(items):
        raise ProtocolError("ranks/items length mismatch")

    blinder, matrix, blinded, companions, permuted_ranks = _prepare(
        ctx, items, ranks, own_keypair
    )
    items_out, comps_out = ctx.call(
        DedupBatch(
            protocol=protocol,
            matrix=matrix,
            items=blinded,
            companions=companions,
            ranks=permuted_ranks,
            own_public=own_keypair.public_key,
            sentinel=-ctx.encoder.sentinel,
            eliminate=True,
        )
    )
    ctx.leakage.record("S1", protocol, "unique_count", len(items_out))
    return [
        blinder.unblind(item, blinder.decrypt_seeds(own_keypair, list(comp)))
        for item, comp in zip(items_out, comps_out)
    ]

"""``SecBest`` — encrypted best score at the current depth (Algorithm 6).

For an item ``E(I) = ⟨EHL(o), Enc(x)⟩`` drawn from list ``L_i`` at depth
``d``, the NRA upper bound is

.. math::

   B^d(o) = x + \\sum_{j \\ne i} \\begin{cases}
       x_j(o)       & \\text{if } o \\text{ appeared in } L_j
                      \\text{ at some depth } e \\le d \\\\
       \\underline{x}_j^d & \\text{otherwise (the list's bottom score)}
   \\end{cases}

S1 cannot branch on the (encrypted) appearance indicator, so for each
other list ``L_j`` it runs the equality test against every prefix item,
obtains ``E2(t_{j,e})`` from S2, and evaluates both branches
homomorphically:

* seen contribution   ``Σ_e E2(t_{j,e})^{Enc(x_j^e)}``
* bottom contribution ``(E2(1) · E2(Σ_e t_{j,e})^{-1})^{Enc(x_j^d)}``

(the inner sums have at most one non-zero Paillier summand because an
object occurs at most once per list, so ``RecoverEnc`` yields a valid
ciphertext).  Complexity is ``O(m·d)`` equality tests, matching the
paper's Section 10.3 analysis.
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import layered_one_hot_select, layered_select
from repro.crypto.paillier import Ciphertext
from repro.net.messages import ZeroTestBatch
from repro.protocols.base import S1Context
from repro.protocols.recover_enc import recover_enc_flow
from repro.structures.items import EncryptedItem

PROTOCOL = "SecBest"


def sec_best_flow(
    ctx: S1Context,
    item: EncryptedItem,
    other_prefixes,
    protocol: str = PROTOCOL,
):
    """Flow form: one equality stage, one recover stage (coalescible).

    ``other_prefixes`` entries may be lists or zero-copy
    :class:`~repro.structures.items.ListPrefix` views.
    """
    best = item.score
    if not other_prefixes:
        return ctx.public_key.rerandomize(best, ctx.rng)

    # One equality batch covering all (list, depth) pairs, permuted
    # per-list so S2 cannot align replies with depths.
    batches: list[tuple[list[EncryptedItem], list[int]]] = []
    flat_cts: list[Ciphertext] = []
    for prefix in other_prefixes:
        order = ctx.rng.permutation(len(prefix))
        permuted = [prefix[i] for i in order]
        start = len(flat_cts)
        for entry in permuted:
            flat_cts.append(item.ehl.minus(entry.ehl, ctx.rng))
        batches.append((permuted, list(range(start, len(flat_cts)))))

    bits = yield ZeroTestBatch(protocol=protocol, cts=flat_cts)

    zero = ctx.zero()
    layered_terms = []
    for (permuted, indices), prefix in zip(batches, other_prefixes):
        bottom = prefix[-1].score
        seen_sum = None
        for entry, idx in zip(permuted, indices):
            bit = bits[idx]
            layered_terms.append(layered_select(ctx.dj, bit, entry.score, zero))
            seen_sum = bit if seen_sum is None else seen_sum + bit
        # seen somewhere in the prefix -> Enc(0), else the bottom score.
        layered_terms.append(
            layered_one_hot_select(ctx.dj, [seen_sum], [zero], bottom)
        )

    contributions = yield from recover_enc_flow(ctx, layered_terms, protocol)
    for contribution in contributions:
        best = best + contribution
    return ctx.public_key.rerandomize(best, ctx.rng)


def sec_best(
    ctx: S1Context,
    item: EncryptedItem,
    other_prefixes,
    protocol: str = PROTOCOL,
) -> Ciphertext:
    """Return ``Enc(B)`` for ``item``.

    ``other_prefixes[j]`` is the full prefix (depths ``1..d``) of the
    ``j``-th *other* sorted list; its last element is the bottom item
    whose score is the list's current bottom value.
    """
    return ctx.run_flows([sec_best_flow(ctx, item, other_prefixes, protocol)])[0]

"""``SecDedup`` — oblivious duplicate burial (Algorithm 7 + ``Rand``).

The same object can surface in several sorted lists at the same depth; S1
cannot detect this because everything is probabilistically encrypted.
``SecDedup`` lets S2 find the duplicate groups from a *permuted* pairwise
equality matrix and neutralize all but one member of each group, without
S1 learning which items were touched:

1. S1 fills the upper triangle of the symmetric matrix
   ``B_{ij} = EHL(o_i) ⊖ EHL(o_j)``, blinds every item component with a
   per-item seed, encrypts the seed under S1's own key ``pk'`` into the
   companion ciphertext ``H_i``, applies a random permutation ``π`` to
   matrix, items and companions, and ships everything.
2. S2 decrypts the matrix entries (learning the equality pattern ``EP_d``
   of a permuted list — the declared ``L2`` leakage), groups duplicates by
   union-find, keeps the lowest-``rank`` member of each group and replaces
   the rest with *junk*: fresh random identity, worst/best pinned to the
   huge-negative sentinel so they sort last and never block halting.
   Every outgoing item (kept or junk) is re-blinded with a fresh seed and
   its companion extended to the uniform shape ``(H_a, H_b)``, so S1
   cannot distinguish replaced items.  S2 permutes with its own ``π'`` and
   returns.
3. S1 decrypts both companion seeds per item and unblinds.

``ranks`` bias which group member survives; ``SecUpdate`` uses them to
make sure the accumulated candidate (not the freshly appended duplicate)
is the copy that is kept.  The ranks are sent in the clear, which reveals
to S2 how duplicate groups split between old and new items — leakage of
the same granularity as ``EP_d`` (recorded in the leakage log and
documented in DESIGN.md).
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.exceptions import ProtocolError
from repro.net.messages import DedupBatch
from repro.protocols.base import CryptoCloud, S1Context
from repro.protocols.blinding import ItemBlinder, junk_item
from repro.structures.items import ScoredItem

PROTOCOL = "SecDedup"


class _UnionFind:
    """Union-find over ``range(n)`` for duplicate grouping."""

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def groups(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {}
        for i in range(len(self.parent)):
            out.setdefault(self.find(i), []).append(i)
        return out


def _prepare(
    ctx: S1Context,
    items: list[ScoredItem],
    ranks: list[int],
    own_keypair: PaillierKeypair,
):
    """S1's blinding + permutation stage shared with ``SecDupElim``."""
    blinder = ItemBlinder(ctx.public_key, ctx.dj)
    l = len(items)
    order = ctx.rng.permutation(l)
    permuted = [items[i] for i in order]
    permuted_ranks = [ranks[i] for i in order]

    matrix: list[Ciphertext] = []
    for i in range(l):
        for j in range(i + 1, l):
            matrix.append(permuted[i].ehl.minus(permuted[j].ehl, ctx.rng))

    blinded: list[ScoredItem] = []
    companions: list[Ciphertext] = []
    for item in permuted:
        seed = blinder.fresh_seed(ctx.rng)
        blinded.append(blinder.blind(item, seed, ctx.rng))
        companions.append(blinder.encrypt_seed(own_keypair.public_key, seed, ctx.rng))
    return blinder, matrix, blinded, companions, permuted_ranks


def sec_dedup(
    ctx: S1Context,
    items: list[ScoredItem],
    own_keypair: PaillierKeypair,
    ranks: list[int] | None = None,
    protocol: str = PROTOCOL,
) -> list[ScoredItem]:
    """Return a same-length list with duplicate objects buried as junk."""
    if len(items) <= 1:
        return list(items)
    ranks = ranks if ranks is not None else [0] * len(items)
    if len(ranks) != len(items):
        raise ProtocolError("ranks/items length mismatch")

    blinder, matrix, blinded, companions, permuted_ranks = _prepare(
        ctx, items, ranks, own_keypair
    )
    items_out, comps_out = ctx.call(
        DedupBatch(
            protocol=protocol,
            matrix=matrix,
            items=blinded,
            companions=companions,
            ranks=permuted_ranks,
            own_public=own_keypair.public_key,
            sentinel=-ctx.encoder.sentinel,
            eliminate=False,
        )
    )
    return [
        blinder.unblind(item, blinder.decrypt_seeds(own_keypair, list(comp)))
        for item, comp in zip(items_out, comps_out)
    ]


def s2_dedup(
    s2: CryptoCloud,
    own_public,
    matrix: list[Ciphertext],
    blinded: list[ScoredItem],
    companions: list[Ciphertext],
    ranks: list[int],
    sentinel: int,
    eliminate: bool,
    protocol: str,
):
    """S2's side, shared by ``SecDedup`` (bury) and ``SecDupElim`` (drop)."""
    blinder = ItemBlinder(s2.public_key, s2.dj)
    l = len(blinded)
    uf = _UnionFind(l)
    entries = s2.decrypt_batch_for_protocol(matrix, protocol, "dedup_matrix")
    idx = 0
    for i in range(l):
        for j in range(i + 1, l):
            if entries[idx] == 0:
                uf.union(i, j)
            idx += 1

    groups = uf.groups()
    s2.leakage.record(
        "S2", protocol, "dedup_groups", sorted(len(g) for g in groups.values())
    )

    survivors: set[int] = set()
    for members in groups.values():
        keeper = min(members, key=lambda i: (ranks[i], i))
        survivors.add(keeper)

    items_out: list[ScoredItem] = []
    comps_out: list[tuple[Ciphertext, Ciphertext]] = []
    for i in range(l):
        if i in survivors:
            seed2 = blinder.fresh_seed(s2.rng)
            items_out.append(blinder.blind(blinded[i], seed2, s2.rng))
            comps_out.append(
                (companions[i], blinder.encrypt_seed(own_public, seed2, s2.rng))
            )
        elif not eliminate:
            junk = junk_item(s2.public_key, s2.dj, blinded[i], sentinel, s2.rng)
            seed_a = blinder.fresh_seed(s2.rng)
            seed_b = blinder.fresh_seed(s2.rng)
            junk = blinder.blind(junk, seed_a, s2.rng)
            junk = blinder.blind(junk, seed_b, s2.rng)
            items_out.append(junk)
            comps_out.append(
                (
                    blinder.encrypt_seed(own_public, seed_a, s2.rng),
                    blinder.encrypt_seed(own_public, seed_b, s2.rng),
                )
            )
        # eliminate=True simply drops the duplicate.

    if eliminate:
        s2.leakage.record("S2", protocol, "unique_count", len(items_out))

    order = s2.rng.permutation(len(items_out))
    return [items_out[i] for i in order], [comps_out[i] for i in order]

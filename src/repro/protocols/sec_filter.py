"""``SecFilter`` — drop non-joining tuples obliviously (Algorithm 12).

After ``SecJoin``, S1 holds every cross-pair of the two relations; pairs
that failed the equi-join condition carry ``Enc(0)`` as their score and
all-zero joined attributes.  ``SecFilter`` removes them without revealing
to S1 *which* pairs joined:

1. S1 blinds each tuple's score *multiplicatively* (``Enc(s)^{r_i}``,
   which preserves exactly the zero/non-zero distinction) and the
   attribute vector additively, ships the blinded tuples together with
   ``pk_s``-encrypted unblinding material, all randomly permuted.
2. S2 decrypts each blinded score; zero means "did not join" and the
   tuple is dropped — S2 learns only the *join cardinality*, the declared
   Section 12 leakage.  Surviving tuples are re-blinded (multiplicative
   ``γ_i`` on the score, additive ``Γ_i`` on attributes) and the
   unblinding material is homomorphically extended under ``pk_s``.
3. S1 decrypts the combined unblinding values and recovers fresh
   encryptions of the surviving joined tuples (the algebra of
   Section 12.4: ``Enc(s_j) ~ Enc(r^{-1} γ^{-1} · s · r · γ)``).
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.net.messages import FilterBatch
from repro.protocols.base import CryptoCloud, S1Context
from repro.structures.items import JoinedTuple

__all__ = ["JoinedTuple", "sec_filter", "s2_filter"]

PROTOCOL = "SecFilter"


def sec_filter(
    ctx: S1Context,
    tuples: list[JoinedTuple],
    own_keypair: PaillierKeypair,
    protocol: str = PROTOCOL,
) -> list[JoinedTuple]:
    """Return fresh encryptions of the tuples whose score is non-zero."""
    if not tuples:
        return []
    n = ctx.public_key.n
    own_pk = own_keypair.public_key

    blinded: list[JoinedTuple] = []
    keys_material: list[list[Ciphertext]] = []
    for t in tuples:
        r = ctx.rng.rand_unit(n)
        shifts = [ctx.rng.randint_below(n) for _ in t.attributes]
        blinded.append(
            JoinedTuple(
                score=ctx.public_key.rerandomize(t.score * r, ctx.rng),
                attributes=[
                    ctx.public_key.rerandomize(a + s, ctx.rng)
                    for a, s in zip(t.attributes, shifts)
                ],
            )
        )
        material = [own_pk.encrypt(pow(r, -1, n), ctx.rng)]
        material += [own_pk.encrypt(s, ctx.rng) for s in shifts]
        keys_material.append(material)

    order = ctx.rng.permutation(len(blinded))
    blinded = [blinded[i] for i in order]
    keys_material = [keys_material[i] for i in order]

    tuples_out, material_out = ctx.call(
        FilterBatch(
            protocol=protocol,
            tuples=blinded,
            material=keys_material,
            own_public=own_pk,
        )
    )

    result: list[JoinedTuple] = []
    for t, material in zip(tuples_out, material_out):
        r_combined = own_keypair.secret_key.decrypt(material[0]) % n
        shifts = [own_keypair.secret_key.decrypt(m) % n for m in material[1:]]
        result.append(
            JoinedTuple(
                score=t.score * r_combined,
                attributes=[a - s for a, s in zip(t.attributes, shifts)],
            )
        )
    return result


def s2_filter(
    s2: CryptoCloud,
    own_pk,
    blinded: list[JoinedTuple],
    keys_material: list[list[Ciphertext]],
    protocol: str,
):
    """S2's side: drop zero-score tuples, re-blind the rest."""
    n = s2.public_key.n
    survivors: list[JoinedTuple] = []
    material_out: list[list[Ciphertext]] = []
    for t, material in zip(blinded, keys_material):
        value = s2.decrypt_for_protocol(t.score, protocol, "filter_flag")
        if value == 0:
            continue
        gamma = s2.rng.rand_unit(n)
        shifts = [s2.rng.randint_below(n) for _ in t.attributes]
        survivors.append(
            JoinedTuple(
                score=s2.public_key.rerandomize(t.score * gamma, s2.rng),
                attributes=[
                    s2.public_key.rerandomize(a + sh, s2.rng)
                    for a, sh in zip(t.attributes, shifts)
                ],
            )
        )
        # Extend the pk_s unblinding material homomorphically:
        # r^{-1} -> r^{-1} γ^{-1} (scalar mult), shift -> shift + sh (add).
        combined = [material[0] * pow(gamma, -1, n)]
        combined += [m + sh for m, sh in zip(material[1:], shifts)]
        material_out.append(combined)
    s2.leakage.record("S2", protocol, "filter_flag", len(survivors))

    order = s2.rng.permutation(len(survivors))
    return (
        [survivors[i] for i in order],
        [material_out[i] for i in order],
    )

"""``SecUpdate`` — merge a depth's results into the candidate list
(Algorithm 9).

``T`` is the running encrypted candidate list with global worst/best
scores; ``Γ^d`` holds the current depth's items with their *per-depth*
worst scores (from ``SecWorst``) and fresh best scores (from ``SecBest``).
For every pair ``(Γ_i, T_j)`` the clouds run the equality test; with the
resulting ``E2(t_ij)`` S1 updates homomorphically:

* ``W_j += Σ_i t_ij · W_i``   — accumulate the matched depth contribution;
* ``B_j  = Σ_i t_ij · B_i + (1 − Σ_i t_ij) · B_j``  — refresh the upper
  bound when the object resurfaced (line 8);
* ``W'_i = (1 − Σ_j t_ij) · W_i`` and the same for ``B'_i`` — neutralize
  the Γ copy that was merged into an existing candidate (our reading of
  the line-10 typo; DESIGN.md discusses the deviation).

All neutralized Γ items are appended anyway (S1 cannot branch on the
encrypted match bit) and the trailing ``SecDedup``/``SecDupElim`` pass
buries or removes them, with ranks biased so the accumulated ``T`` copy
survives (Algorithm 9, line 13).
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import (
    LayeredCiphertext,
    layered_one_hot_select,
)
from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.net.messages import ZeroTestBatch
from repro.protocols.base import S1Context
from repro.protocols.recover_enc import recover_enc_batch
from repro.protocols.sec_dedup import sec_dedup
from repro.protocols.sec_dup_elim import sec_dup_elim
from repro.structures.items import ScoredItem

PROTOCOL = "SecUpdate"


def sec_update(
    ctx: S1Context,
    t_list: list[ScoredItem],
    gamma: list[ScoredItem],
    own_keypair: PaillierKeypair,
    eliminate: bool = False,
    protocol: str = PROTOCOL,
) -> list[ScoredItem]:
    """Merge ``gamma`` into ``t_list`` and return the new candidate list."""
    if not t_list:
        merged = [g.clone_shallow() for g in gamma]
        return _final_dedup(ctx, merged, [1] * len(merged), own_keypair, eliminate, protocol)
    if not gamma:
        return list(t_list)

    order = ctx.rng.permutation(len(gamma))
    permuted_gamma = [gamma[i] for i in order]

    # One equality round for the full |Γ| x |T| grid.
    flat: list[Ciphertext] = []
    for g_item in permuted_gamma:
        for t_item in t_list:
            flat.append(g_item.ehl.minus(t_item.ehl, ctx.rng))
    bits_flat = ctx.call(ZeroTestBatch(protocol=protocol, cts=flat))

    n_t = len(t_list)
    bits: list[list[LayeredCiphertext]] = [
        bits_flat[i * n_t : (i + 1) * n_t] for i in range(len(permuted_gamma))
    ]

    dj = ctx.dj
    zero_ct = ctx.zero()

    # --- update T entries -------------------------------------------------
    layered_batch: list = []
    plans: list[tuple[str, int]] = []
    for j, t_item in enumerate(t_list):
        column = [bits[i][j] for i in range(len(permuted_gamma))]
        # Worst increment: the matched Γ item's depth-worst, else 0.
        layered_batch.append(
            layered_one_hot_select(
                dj, column, [g.worst for g in permuted_gamma], zero_ct
            )
        )
        plans.append(("w_inc", j))
        # Best refresh: matched -> Γ's best, else keep the old best.
        layered_batch.append(
            layered_one_hot_select(
                dj, column, [g.best for g in permuted_gamma], t_item.best
            )
        )
        plans.append(("b_new", j))

    # --- neutralize merged Γ copies ---------------------------------------
    for i, g_item in enumerate(permuted_gamma):
        matched = None
        for j in range(n_t):
            bit = bits[i][j]
            matched = bit if matched is None else matched + bit
        # matched -> Enc(0), unmatched -> keep own worst/best.
        layered_batch.append(
            layered_one_hot_select(dj, [matched], [zero_ct], g_item.worst)
        )
        plans.append(("g_w", i))
        layered_batch.append(
            layered_one_hot_select(dj, [matched], [zero_ct], g_item.best)
        )
        plans.append(("g_b", i))

    recovered = recover_enc_batch(ctx, layered_batch, protocol)

    new_t: list[ScoredItem] = [t.clone_shallow() for t in t_list]
    new_gamma: list[ScoredItem] = [g.clone_shallow() for g in permuted_gamma]
    for (kind, idx), ct in zip(plans, recovered):
        if kind == "w_inc":
            new_t[idx].worst = new_t[idx].worst + ct
        elif kind == "b_new":
            new_t[idx].best = ct
        elif kind == "g_w":
            new_gamma[idx].worst = ct
        else:
            new_gamma[idx].best = ct

    merged = new_t + new_gamma
    ranks = [0] * len(new_t) + [1] * len(new_gamma)
    return _final_dedup(ctx, merged, ranks, own_keypair, eliminate, protocol)


def _final_dedup(
    ctx: S1Context,
    merged: list[ScoredItem],
    ranks: list[int],
    own_keypair: PaillierKeypair,
    eliminate: bool,
    protocol: str,
) -> list[ScoredItem]:
    with ctx.channel.protocol(protocol):
        if eliminate:
            return sec_dup_elim(ctx, merged, own_keypair, ranks)
        return sec_dedup(ctx, merged, own_keypair, ranks)

"""``SecWorst`` — encrypted per-depth worst score (Algorithm 4).

S1 holds one encrypted item ``E(I) = ⟨EHL(o), Enc(x)⟩`` and the set ``H``
of the other lists' items at the *current depth*.  The protocol gives S1
``Enc(W)`` where ``W = x + Σ { x_j : o_j = o }`` — the sum of this
object's scores over every list where it appears at this depth.

Accumulated over depths by ``SecUpdate``, these per-depth partial sums
reproduce the NRA lower bound ``W^d(o)`` (the sum of all *seen* scores),
because each object occurs exactly once per sorted list.

Flow (one equality round + one ``RecoverEnc`` round, batched):

1. S1 permutes ``H``, computes ``Enc(b_j) = EHL(o) ⊖ EHL(o_j)`` and sends
   the batch to S2.
2. S2 decrypts each ``b_j`` and returns ``E2(t_j)`` with
   ``t_j = (b_j == 0)`` — the equality-pattern leakage ``EP_d``.
3. S1 selects scores homomorphically,
   ``E2(Enc(x'_j)) = E2(t_j)^{Enc(x_j)} · (E2(1) E2(t_j)^{-1})^{Enc(0)}``,
   strips the layer with ``RecoverEnc`` and sums:
   ``Enc(W) = Enc(x) · Π_j Enc(x'_j)``.
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import layered_select
from repro.crypto.paillier import Ciphertext
from repro.net.messages import ZeroTestBatch
from repro.protocols.base import S1Context
from repro.protocols.recover_enc import recover_enc_flow
from repro.structures.items import EncryptedItem

PROTOCOL = "SecWorst"


def sec_worst_flow(
    ctx: S1Context,
    item: EncryptedItem,
    others: list[EncryptedItem],
    protocol: str = PROTOCOL,
):
    """Flow form: equality stage, then recover stage (coalescible)."""
    if not others:
        return ctx.public_key.rerandomize(item.score, ctx.rng)

    order = ctx.rng.permutation(len(others))
    permuted = [others[i] for i in order]

    equality_cts = [item.ehl.minus(other.ehl, ctx.rng) for other in permuted]
    bits = yield ZeroTestBatch(protocol=protocol, cts=equality_cts)

    zero = ctx.zero()
    selected = [
        layered_select(ctx.dj, bit, other.score, zero)
        for bit, other in zip(bits, permuted)
    ]
    scores = yield from recover_enc_flow(ctx, selected, protocol)

    worst = item.score
    for score in scores:
        worst = worst + score
    return ctx.public_key.rerandomize(worst, ctx.rng)


def sec_worst(
    ctx: S1Context,
    item: EncryptedItem,
    others: list[EncryptedItem],
    protocol: str = PROTOCOL,
) -> Ciphertext:
    """Return ``Enc(W)`` for ``item`` given the depth's other items."""
    return ctx.run_flows([sec_worst_flow(ctx, item, others, protocol)])[0]

"""Item blinding shared by ``EncSort``, ``SecDedup`` and ``SecDupElim``.

Algorithm 7 has S1 blind every component of an item with random values,
encrypt those values under S1's *own* key ``pk'`` into a companion
ciphertext ``H``, and let S2 add its own blinding on top (homomorphically
extending ``H``); S1 finally decrypts ``H`` and removes the combined blind
without ever learning which items S2 touched.

Shipping one ``pk'`` ciphertext *per blinded component* would be wasteful,
so we apply a standard optimization: each party draws one 128-bit seed per
item, derives all component blinds from the seed with a PRF, and ships
only ``Enc_pk'(seed)``.  The combined blind on a component is the sum of
the per-party PRF outputs, which S1 reconstructs after decrypting both
seeds.  (Uniformity of the blinds now rests on the PRF, which is the same
assumption EHL already makes.)

The blinder understands every field a :class:`ScoredItem` may carry:
EHL cells, the worst/best Paillier ciphertexts, and the eager-mode
per-list score ciphertexts and ``E2`` seen-bits (blinded modulo ``N^2``).
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import DamgardJurik, LayeredCiphertext
from repro.crypto.paillier import Ciphertext, PaillierKeypair, PaillierPublicKey
from repro.crypto.prf import Prf
from repro.crypto.rng import SecureRandom
from repro.exceptions import ProtocolError
from repro.structures.items import ScoredItem

# 96-bit seeds: comfortably inside every supported Paillier modulus (the
# smallest test preset uses 128-bit moduli) while leaving blind-derivation
# security far above the statistical parameters used elsewhere.
SEED_BYTES = 12


class ItemBlinder:
    """Blind/unblind :class:`ScoredItem` objects with seed-derived masks."""

    def __init__(self, public_key: PaillierPublicKey, dj: DamgardJurik):
        self.public_key = public_key
        self.dj = dj

    # -- blind streams ---------------------------------------------------

    def _stream(self, seed: bytes, index: int, modulus: int) -> int:
        return Prf(seed).to_range(index.to_bytes(4, "big"), modulus)

    def blind(self, item: ScoredItem, seed: bytes, rng: SecureRandom) -> ScoredItem:
        """Additively blind every component; rerandomize so nothing links."""
        return self._apply(item, seed, sign=+1, rng=rng)

    def unblind(self, item: ScoredItem, seeds: list[bytes]) -> ScoredItem:
        """Remove the blinds of all ``seeds`` (order-independent)."""
        result = item
        for seed in seeds:
            result = self._apply(result, seed, sign=-1, rng=None)
        return result

    def _apply(
        self, item: ScoredItem, seed: bytes, sign: int, rng: SecureRandom | None
    ) -> ScoredItem:
        n = self.public_key.n
        n2 = self.dj.n_s
        idx = 0

        def mask_ct(ct: Ciphertext) -> Ciphertext:
            nonlocal idx
            blind = self._stream(seed, idx, n) * sign
            idx += 1
            out = ct + blind
            return self.public_key.rerandomize(out, rng) if rng is not None else out

        def mask_lc(lc: LayeredCiphertext) -> LayeredCiphertext:
            nonlocal idx
            blind = self._stream(seed, idx, n2) * sign
            idx += 1
            return lc + self.dj.encrypt(blind % n2, rng or SecureRandom())

        cells = [mask_ct(c) for c in item.ehl.cells]
        ehl = type(item.ehl)(cells)
        worst = mask_ct(item.worst)
        best = mask_ct(item.best)
        list_scores = (
            [mask_ct(c) for c in item.list_scores]
            if item.list_scores is not None
            else None
        )
        seen_bits = (
            [mask_lc(c) for c in item.seen_bits]
            if item.seen_bits is not None
            else None
        )
        record = mask_ct(item.record) if item.record is not None else None
        return ScoredItem(
            ehl=ehl,
            worst=worst,
            best=best,
            list_scores=list_scores,
            seen_bits=seen_bits,
            record=record,
            uid=item.uid,
        )

    # -- seed transport under S1's own key pk' ---------------------------

    @staticmethod
    def seed_to_int(seed: bytes) -> int:
        return int.from_bytes(seed, "big")

    @staticmethod
    def int_to_seed(value: int) -> bytes:
        return value.to_bytes(SEED_BYTES, "big")

    def encrypt_seed(
        self, own_public: PaillierPublicKey, seed: bytes, rng: SecureRandom
    ) -> Ciphertext:
        """``Enc_pk'(seed)`` — the companion ``H`` ciphertext."""
        return own_public.encrypt(self.seed_to_int(seed), rng)

    def decrypt_seeds(
        self, own_keypair: PaillierKeypair, h_list: list[Ciphertext]
    ) -> list[bytes]:
        """Recover the seed list from companion ciphertexts."""
        seeds = []
        for h in h_list:
            value = own_keypair.secret_key.decrypt(h)
            if value >= 1 << (8 * SEED_BYTES):
                raise ProtocolError("companion ciphertext held a non-seed value")
            seeds.append(self.int_to_seed(value))
        return seeds

    def fresh_seed(self, rng: SecureRandom) -> bytes:
        """A fresh per-item blinding seed."""
        return rng.randbytes(SEED_BYTES)


def junk_item(
    public_key: PaillierPublicKey,
    dj: DamgardJurik,
    template: ScoredItem,
    sentinel: int,
    rng: SecureRandom,
) -> ScoredItem:
    """A replacement item for a buried duplicate (Algorithm 7, lines 22-25).

    Random object identity, worst/best pinned to the huge-negative
    ``sentinel`` so it sorts after every legitimate candidate and never
    blocks the halting check.  The eager-mode state is constructed so a
    later worst/best *recomputation* also lands on the sentinel: every
    list is marked seen (no bottom-score contribution to the upper bound)
    and the first list slot carries the sentinel itself.
    """
    n = public_key.n
    cells = [public_key.encrypt(rng.randint_below(n), rng) for _ in template.ehl.cells]
    worst = public_key.encrypt_signed(sentinel, rng)
    best = public_key.encrypt_signed(sentinel, rng)
    list_scores = None
    if template.list_scores is not None:
        list_scores = [public_key.encrypt_signed(sentinel, rng)]
        list_scores += [public_key.encrypt(0, rng) for _ in template.list_scores[1:]]
    seen_bits = (
        [dj.encrypt(1, rng) for _ in template.seen_bits]
        if template.seen_bits is not None
        else None
    )
    record = (
        public_key.encrypt(rng.randint_below(n), rng)
        if template.record is not None
        else None
    )
    return ScoredItem(
        ehl=type(template.ehl)(cells),
        worst=worst,
        best=best,
        list_scores=list_scores,
        seen_bits=seen_bits,
        record=record,
        uid=-1,
    )

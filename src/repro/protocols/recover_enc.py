"""``RecoverEnc`` — strip one layer of Damgård–Jurik encryption
(Algorithm 5).

S1 holds ``E2(Enc(c))`` and wants ``Enc(c)`` without S2 learning ``c``:

1. S1 draws ``r`` uniform in ``Z_N`` and computes
   ``E2(Enc(c + r)) = E2(Enc(c))^{Enc(r)}`` using the layered
   homomorphism, then sends it to S2.
2. S2 decrypts the outer layer and returns ``Enc(c + r)``.
3. S1 removes the blind: ``Enc(c) = Enc(c + r) * Enc(r)^{-1}``.

S2 only ever sees a uniformly-blinded inner plaintext.  The batched
variant amortizes the communication round — every caller in this codebase
strips whole batches per depth, which is also how the paper counts
messages per depth (Section 11.2.5).
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import LayeredCiphertext
from repro.crypto.paillier import Ciphertext
from repro.net.messages import StripLayerBatch
from repro.protocols.base import S1Context

PROTOCOL = "RecoverEnc"


def recover_enc_flow(
    ctx: S1Context, layered: list[LayeredCiphertext], protocol: str = PROTOCOL
):
    """Flow form: yields one ``StripLayerBatch``, returns the stripped cts.

    Written as a generator so the engines can coalesce many independent
    recoveries into one round (:meth:`S1Context.run_flows`).
    """
    if not layered:
        return []
    n = ctx.public_key.n
    blinds = [ctx.rng.randint_below(n) for _ in layered]
    blinded = [
        lc.scalar_ct(ctx.public_key.encrypt(r, ctx.rng))
        for lc, r in zip(layered, blinds)
    ]
    replies = yield StripLayerBatch(protocol=protocol, cts=blinded)
    return [reply - r for reply, r in zip(replies, blinds)]


def recover_enc_batch(
    ctx: S1Context, layered: list[LayeredCiphertext], protocol: str = PROTOCOL
) -> list[Ciphertext]:
    """Strip the outer layer of each ciphertext in one round."""
    return ctx.run_flows([recover_enc_flow(ctx, layered, protocol)])[0]


def recover_enc(
    ctx: S1Context, layered: LayeredCiphertext, protocol: str = PROTOCOL
) -> Ciphertext:
    """Single-ciphertext convenience wrapper around the batch protocol."""
    return recover_enc_batch(ctx, [layered], protocol)[0]

"""``EncSort`` — sort encrypted items by an encrypted key with S2's help.

The paper imports this building block from Baldimtsi–Ohrimenko (FC 2014):
S1 holds encrypted key/value pairs, S2 holds the secret key, and S1 ends
up with a *freshly encrypted* list sorted by key, learning nothing about
the order of the original items.  Two constructions are provided (see
DESIGN.md, substitutions table):

``method="affine"`` (default)
    One round, O(n) communication.  S1 order-preservingly blinds every
    sort key with a shared secret affine map ``k -> r*k + s`` (``r > 0``),
    blinds all other components with per-item seeds, randomly permutes the
    list, and ships it.  S2 decrypts the blinded keys, sorts, re-encrypts
    the keys freshly, adds its own seed-blinding to the payloads (so S1
    cannot link output positions back to inputs), and returns the sorted
    list.  S2's leakage: the multiset of affinely-scaled key values of a
    randomly permuted list.

``method="network"``
    A Batcher odd-even merge sorting network; each compare-exchange gate
    sends a coin-pre-swapped, per-gate affine-blinded pair to S2, which
    returns the pair ordered and re-blinded.  Gates in the same network
    layer share a communication round.  S2's per-gate leakage is a single
    uniformly-distributed order bit.

Both return fresh, unlinkable encryptions, which is the only property
``SecQuery`` relies on (Section 8.1).
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.exceptions import ProtocolError
from repro.net.messages import SortAffine, SortGateBatch
from repro.protocols.base import CryptoCloud, S1Context
from repro.protocols.blinding import ItemBlinder
from repro.structures.items import ScoredItem

PROTOCOL = "EncSort"


def enc_sort(
    ctx: S1Context,
    items: list[ScoredItem],
    own_keypair: PaillierKeypair,
    descending: bool = True,
    method: str = "affine",
    key: str = "worst",
    protocol: str = PROTOCOL,
) -> list[ScoredItem]:
    """Sort ``items`` by the encrypted ``key`` attribute.

    ``own_keypair`` is S1's private key pair ``(pk', sk')`` used only to
    transport blinding seeds (Algorithm 7 uses the same device).
    """
    if key not in ("worst", "best"):
        raise ProtocolError(f"unsupported sort key: {key!r}")
    if len(items) <= 1:
        return list(items)
    if method == "affine":
        return _sort_affine(ctx, items, own_keypair, descending, key, protocol)
    if method == "network":
        return _sort_network(ctx, items, own_keypair, descending, key, protocol)
    raise ProtocolError(f"unknown EncSort method: {method!r}")


# ----------------------------------------------------------------------
# Helpers shared by both constructions.
# ----------------------------------------------------------------------


def _affine_params(ctx: S1Context) -> tuple[int, int]:
    """An order-preserving blinding map ``k -> r*k + s`` that cannot wrap.

    Keys are signed values bounded by the sentinel magnitude
    ``2**(score_bits + blind_bits)``; with ``r`` of ``blind_bits`` bits and
    ``s`` of similar size the image stays well inside ``(-N/2, N/2)``.
    """
    kappa = ctx.encoder.blind_bits
    r = ctx.rng.randint(1 << (kappa - 1), (1 << kappa) - 1)
    s = ctx.rng.randint_below(1 << kappa)
    magnitude_bits = ctx.encoder.score_bits + ctx.encoder.blind_bits + 1 + kappa + 2
    if magnitude_bits >= ctx.public_key.n.bit_length():
        raise ProtocolError("modulus too small for affine key blinding")
    return r, s


def _get_key(item: ScoredItem, key: str) -> Ciphertext:
    return item.worst if key == "worst" else item.best


# ----------------------------------------------------------------------
# Construction 1: affine blind-and-permute (1 round).
# ----------------------------------------------------------------------


def _sort_affine(
    ctx: S1Context,
    items: list[ScoredItem],
    own_keypair: PaillierKeypair,
    descending: bool,
    key: str,
    protocol: str,
) -> list[ScoredItem]:
    blinder = ItemBlinder(ctx.public_key, ctx.dj)
    r, s = _affine_params(ctx)

    blinded_keys: list[Ciphertext] = []
    blinded_items: list[ScoredItem] = []
    companions: list[Ciphertext] = []
    for item in items:
        blinded_keys.append(
            ctx.public_key.rerandomize(_get_key(item, key) * r + s, ctx.rng)
        )
        seed = blinder.fresh_seed(ctx.rng)
        blinded_items.append(blinder.blind(item, seed, ctx.rng))
        companions.append(blinder.encrypt_seed(own_keypair.public_key, seed, ctx.rng))

    order = ctx.rng.permutation(len(items))
    blinded_keys = [blinded_keys[i] for i in order]
    blinded_items = [blinded_items[i] for i in order]
    companions = [companions[i] for i in order]

    keys_out, items_out, comps_out = ctx.call(
        SortAffine(
            protocol=protocol,
            keys=blinded_keys,
            items=blinded_items,
            companions=companions,
            own_public=own_keypair.public_key,
            descending=descending,
        )
    )

    result: list[ScoredItem] = []
    for key_ct, item, comp_pair in zip(keys_out, items_out, comps_out):
        seeds = blinder.decrypt_seeds(own_keypair, list(comp_pair))
        clean = blinder.unblind(item, seeds)
        # Recover the sort key from the affine transport: (k' - s) / r.
        r_inv = pow(r, -1, ctx.public_key.n)
        recovered = (key_ct - s) * r_inv
        if key == "worst":
            clean.worst = recovered
        else:
            clean.best = recovered
        result.append(clean)
    return result


def s2_sort_affine(
    s2: CryptoCloud,
    own_public,
    blinded_keys: list[Ciphertext],
    blinded_items: list[ScoredItem],
    companions: list[Ciphertext],
    descending: bool,
    protocol: str,
):
    """S2's side of the affine construction."""
    blinder = ItemBlinder(s2.public_key, s2.dj)
    values = s2.decrypt_signed_batch_for_protocol(
        blinded_keys, protocol, "sort_key_blinded"
    )
    decorated = list(zip(values, blinded_items, companions))
    decorated.sort(key=lambda t: t[0], reverse=descending)
    s2.leakage.record("S2", protocol, "sort_size", len(decorated))

    keys_out: list[Ciphertext] = []
    items_out: list[ScoredItem] = []
    comps_out: list[tuple[Ciphertext, Ciphertext]] = []
    for value, item, comp in decorated:
        keys_out.append(s2.fresh_encrypt(value % s2.public_key.n))
        seed2 = blinder.fresh_seed(s2.rng)
        items_out.append(blinder.blind(item, seed2, s2.rng))
        comps_out.append((comp, blinder.encrypt_seed(own_public, seed2, s2.rng)))
    return keys_out, items_out, comps_out


# ----------------------------------------------------------------------
# Construction 2: Batcher odd-even merge network.
# ----------------------------------------------------------------------


def batcher_network(n: int) -> list[list[tuple[int, int]]]:
    """Comparator layers of a Batcher odd-even merge sort for ``n`` inputs.

    Returns a list of layers; each layer is a list of ``(i, j)`` index
    pairs with ``i < j`` that can be compared in parallel (one
    communication round per layer).
    """
    gates: list[tuple[int, int]] = []

    def oddeven_merge(lo: int, m: int, step: int) -> None:
        double = step * 2
        if double < m:
            oddeven_merge(lo, m, double)
            oddeven_merge(lo + step, m, double)
            for i in range(lo + step, lo + m - step, double):
                gates.append((i, i + step))
        else:
            gates.append((lo, lo + step))

    def oddeven_sort(lo: int, m: int) -> None:
        if m > 1:
            half = m // 2
            oddeven_sort(lo, half)
            oddeven_sort(lo + half, half)
            oddeven_merge(lo, m, 1)

    padded = 1
    while padded < n:
        padded *= 2
    oddeven_sort(0, padded)

    # Drop gates touching padding slots, then greedily pack into layers of
    # disjoint indices (preserving gate order dependencies).
    layers: list[list[tuple[int, int]]] = []
    busy: list[set[int]] = []
    for (i, j) in gates:
        if j >= n:
            continue
        placed = False
        for depth in range(len(layers) - 1, -1, -1):
            if i in busy[depth] or j in busy[depth]:
                target = depth + 1
                if target == len(layers):
                    layers.append([])
                    busy.append(set())
                layers[target].append((i, j))
                busy[target].update((i, j))
                placed = True
                break
        if not placed:
            if not layers:
                layers.append([])
                busy.append(set())
            layers[0].append((i, j))
            busy[0].update((i, j))
    return layers


def _sort_network(
    ctx: S1Context,
    items: list[ScoredItem],
    own_keypair: PaillierKeypair,
    descending: bool,
    key: str,
    protocol: str,
) -> list[ScoredItem]:
    working = [item.clone_shallow() for item in items]
    blinder = ItemBlinder(ctx.public_key, ctx.dj)

    for layer in batcher_network(len(working)):
        plan = []
        payload = []
        for (i, j) in layer:
            r, s = _affine_params(ctx)
            swap = bool(ctx.rng.randbits(1))
            a, b = (j, i) if swap else (i, j)
            pair_keys = []
            pair_items = []
            pair_comps = []
            for idx in (a, b):
                pair_keys.append(
                    ctx.public_key.rerandomize(
                        _get_key(working[idx], key) * r + s, ctx.rng
                    )
                )
                seed = blinder.fresh_seed(ctx.rng)
                pair_items.append(blinder.blind(working[idx], seed, ctx.rng))
                pair_comps.append(
                    blinder.encrypt_seed(own_keypair.public_key, seed, ctx.rng)
                )
            plan.append((i, j, r, s, swap))
            payload.append((pair_keys, pair_items, pair_comps))
        replies = ctx.call(
            SortGateBatch(
                protocol=protocol,
                gates=payload,
                own_public=own_keypair.public_key,
                descending=descending,
            )
        )
        for (i, j, r, s, swap), reply in zip(plan, replies):
            keys_out, items_out, comps_out = reply
            r_inv = pow(r, -1, ctx.public_key.n)
            cleaned = []
            for key_ct, item, comp_pair in zip(keys_out, items_out, comps_out):
                clean = blinder.unblind(item, blinder.decrypt_seeds(own_keypair, list(comp_pair)))
                recovered = (key_ct - s) * r_inv
                if key == "worst":
                    clean.worst = recovered
                else:
                    clean.best = recovered
                cleaned.append(clean)
            working[i], working[j] = cleaned[0], cleaned[1]
    return working


def s2_gates(
    s2: CryptoCloud,
    own_public,
    gates: list,
    descending: bool,
    protocol: str,
) -> list:
    """S2's side of one *layer* of compare-exchange gates.

    All the layer's blinded pair keys are decrypted in a single batch
    (one backend setup, and one compute-pool fan-out when attached)
    before the per-gate ordering/re-blinding logic runs.
    """
    blinder = ItemBlinder(s2.public_key, s2.dj)
    all_keys = [k for pair_keys, _, _ in gates for k in pair_keys]
    all_values = s2.decrypt_signed_batch_for_protocol(
        all_keys, protocol, "gate_key_blinded"
    )

    replies = []
    for gate_index, (pair_keys, pair_items, pair_comps) in enumerate(gates):
        values = all_values[2 * gate_index : 2 * gate_index + 2]
        order = [0, 1]
        if (values[0] < values[1]) == descending:
            order = [1, 0]
        s2.leakage.record("S2", protocol, "gate_bit", order[0])

        keys_out, items_out, comps_out = [], [], []
        for idx in order:
            keys_out.append(s2.fresh_encrypt(values[idx] % s2.public_key.n))
            seed2 = blinder.fresh_seed(s2.rng)
            items_out.append(blinder.blind(pair_items[idx], seed2, s2.rng))
            comps_out.append(
                (pair_comps[idx], blinder.encrypt_seed(own_public, seed2, s2.rng))
            )
        replies.append((keys_out, items_out, comps_out))
    return replies

"""``EncCompare`` — S1 learns ``f := (a <= b)`` from ``Enc(a), Enc(b)``.

The paper imports this functionality from Bost et al. [11].  Two
constructions are provided (see DESIGN.md, substitutions table):

``method="blinded"`` (default for benchmarks)
    One round.  S1 computes ``d = 2(b - a) + 1`` homomorphically (never
    zero, sign encodes the answer), flips a private coin ``sigma`` to
    randomize the sign, multiplies by a random positive scalar, and sends
    the result; S2 returns the sign of the decrypted value.  S2 learns a
    uniformly distributed sign bit plus the *magnitude* of the scaled
    difference — documented extra leakage traded for speed.

``method="dgk"`` (faithful to the cited construction)
    The Veugen/DGK-style bitwise protocol: S1 additively blinds
    ``z = 2^ell + b - a`` and the two parties privately compute the
    borrow bit of ``(c mod 2^ell) - (r mod 2^ell)`` via the DGK trick
    (randomized, permuted difference terms, one of which is zero iff the
    comparison holds).  S2 sees only uniformly blinded values, a coin-
    masked any-zero bit, and a coin-masked output bit.

Both constructions accept *signed* inputs in
``[-2**(ell-1), 2**(ell-1))`` — callers pass values offset-shifted into
non-negative range internally, so the huge negative sentinel that
``SecDedup`` assigns to buried duplicates compares correctly.
"""

from __future__ import annotations

from repro.crypto.paillier import Ciphertext
from repro.net.messages import BlindedSign, DecryptMaskedBit, DgkAnyZero, DgkDecompose
from repro.protocols.base import S1Context
from repro.exceptions import ProtocolError

PROTOCOL = "EncCompare"


def comparison_bits(ctx: S1Context) -> int:
    """Bit-width ``ell`` used for comparisons.

    Must cover legitimate aggregated scores *and* the duplicate-burial
    sentinel ``±2**(score_bits + blind_bits)``.
    """
    return ctx.encoder.score_bits + ctx.encoder.blind_bits + 2


def enc_compare_flow(
    ctx: S1Context,
    enc_a: Ciphertext,
    enc_b: Ciphertext,
    method: str = "blinded",
    protocol: str = PROTOCOL,
):
    """Flow form of :func:`enc_compare` (coalescible across candidates)."""
    if method == "blinded":
        return (yield from _compare_blinded_flow(ctx, enc_a, enc_b, protocol))
    if method == "dgk":
        return (yield from _compare_dgk_flow(ctx, enc_a, enc_b, protocol))
    raise ProtocolError(f"unknown EncCompare method: {method!r}")


def enc_compare(
    ctx: S1Context,
    enc_a: Ciphertext,
    enc_b: Ciphertext,
    method: str = "blinded",
    protocol: str = PROTOCOL,
) -> bool:
    """Return ``a <= b`` to S1 without revealing ``a`` or ``b``."""
    return ctx.run_flows([enc_compare_flow(ctx, enc_a, enc_b, method, protocol)])[0]


# ----------------------------------------------------------------------
# Construction 1: multiplicative blinding (1 round).
# ----------------------------------------------------------------------


def _compare_blinded_flow(
    ctx: S1Context, enc_a: Ciphertext, enc_b: Ciphertext, protocol: str
):
    ell = comparison_bits(ctx)
    kappa = ctx.encoder.blind_bits
    if ell + 1 + kappa + 2 >= ctx.public_key.n.bit_length():
        raise ProtocolError("modulus too small for blinded comparison range")
    # d = 2(b - a) + 1: strictly positive iff a <= b, never zero.
    diff = (enc_b - enc_a) * 2 + 1
    sigma = ctx.rng.randbits(1)
    if sigma:
        diff = -diff
    scale = ctx.rng.randint(1, (1 << kappa) - 1)
    masked = ctx.public_key.rerandomize(diff * scale, ctx.rng)
    positive = yield BlindedSign(protocol=protocol, ct=masked)
    # S2 reported sign of (-1)^sigma * scale * (2(b-a)+1).
    return positive != bool(sigma)


# ----------------------------------------------------------------------
# Construction 2: DGK-style bitwise comparison (3 rounds).
# ----------------------------------------------------------------------


def _compare_dgk_flow(
    ctx: S1Context, enc_a: Ciphertext, enc_b: Ciphertext, protocol: str
):
    ell = comparison_bits(ctx)
    kappa = ctx.encoder.blind_bits
    n_bits = ctx.public_key.n.bit_length()
    if ell + kappa + 2 >= n_bits:
        raise ProtocolError("modulus too small for DGK comparison range")
    offset = 1 << (ell - 1)
    # Shift both operands into [0, 2^ell); then z = 2^ell + b - a is in
    # [1, 2^(ell+1)) and bit ell of z equals (a <= b).
    # z = 2^ell + (b + offset) - (a + offset) = 2^ell + b - a.
    enc_z = (enc_b - enc_a) + (1 << ell)
    # Additively blind so S2's decryption is statistically uniform.
    r = ctx.rng.randint_below(1 << (ell + kappa))
    enc_c = ctx.public_key.rerandomize(enc_z + r, ctx.rng)

    bit_cts, enc_high = yield DgkDecompose(protocol=protocol, ct=enc_c, ell=ell)

    # DGK core: decide borrow = ((c mod 2^ell) < (r mod 2^ell)) where S1
    # knows r-hat = r mod 2^ell and S2 supplied encrypted bits of
    # c-hat = c mod 2^ell.
    r_hat = r % (1 << ell)
    delta = ctx.rng.randbits(1)
    terms = _dgk_terms(ctx, bit_cts, r_hat, ell, delta)
    ctx.rng.shuffle(terms)
    any_zero = yield DgkAnyZero(protocol=protocol, cts=terms)
    if delta == 0:
        borrow = 1 if any_zero else 0          # any_zero <=> c-hat < r-hat
    else:
        borrow = 0 if any_zero else 1          # any_zero <=> r-hat <= c-hat

    # Bit ell of z equals high(c) - high(r) - borrow, a value in {0, 1}.
    r_high = r >> ell
    enc_f = enc_high - r_high - borrow
    # Reveal f to S1 via a coin-masked decryption by S2.
    gamma = ctx.rng.randbits(1)
    if gamma:
        enc_f = ctx.encrypt(1) - enc_f
    enc_f = ctx.public_key.rerandomize(enc_f, ctx.rng)
    masked_bit = yield DecryptMaskedBit(protocol=protocol, ct=enc_f)
    return bool(masked_bit ^ gamma)


def _dgk_terms(
    ctx: S1Context,
    bit_cts: list[Ciphertext],
    r_hat: int,
    ell: int,
    delta: int,
) -> list[Ciphertext]:
    """Build the randomized DGK difference terms.

    With ``delta = 0`` some term is zero iff ``c_hat < r_hat``;
    with ``delta = 1`` some term is zero iff ``r_hat <= c_hat`` (the extra
    all-bits-equal term covers equality).
    """
    n = ctx.public_key.n
    terms: list[Ciphertext] = []
    # xor_i = c_i XOR r_i, homomorphically: c_i + r_i - 2 r_i c_i.
    xors: list[Ciphertext] = []
    for i in range(ell):
        r_i = (r_hat >> i) & 1
        if r_i == 0:
            xors.append(bit_cts[i])
        else:
            xors.append(ctx.encrypt(1) - bit_cts[i])

    # suffix_sum[i] = sum_{j > i} xor_j
    suffix = ctx.zero()
    suffix_sums: list[Ciphertext] = [None] * ell
    for i in range(ell - 1, -1, -1):
        suffix_sums[i] = suffix
        suffix = suffix + xors[i]
    total_xor = suffix  # sum over all bit positions

    for i in range(ell):
        r_i = (r_hat >> i) & 1
        if delta == 0:
            # zero iff c_i = 0, r_i = 1 and all higher bits equal.
            core = bit_cts[i] - r_i + 1
        else:
            # zero iff r_i = 0, c_i = 1 and all higher bits equal.
            core = (-bit_cts[i]) + r_i + 1
        term = core + suffix_sums[i] * 3
        scale = ctx.rng.rand_nonzero(n)
        terms.append(ctx.public_key.rerandomize(term * scale, ctx.rng))

    if delta == 1:
        # Equality term: zero iff all bits equal (c_hat == r_hat).
        scale = ctx.rng.rand_nonzero(n)
        terms.append(ctx.public_key.rerandomize(total_xor * scale, ctx.rng))
    return terms

"""``SecJoin`` — the oblivious equi-join core of ``⋈_sec`` (Algorithm 11).

For every cross pair ``(o_i ∈ R1, o_j ∈ R2)`` — visited in random order —
the clouds evaluate the join condition homomorphically and produce a
combined tuple whose score and attributes are zeroed out when the
condition fails::

    Enc(b_ij)  = EHL(x_i[t1]) ⊖ EHL(x_j[t2])        (S1)
    E2(t_ij)   = S2's zero test of b_ij
    Enc(s_ij)  = RecoverEnc( E2(t_ij)^{Enc(x_i[t3]) * Enc(x_j[t4])} )
               ~ Enc( t_ij * (x_i[t3] + x_j[t4]) )
    Enc(x'_l)  = RecoverEnc( E2(t_ij)^{Enc(x_l)} )  for each carried attr

Neither cloud learns which pairs joined: the equality bits S2 sees belong
to randomly ordered pairs, and S1 only ever handles ciphertexts.  The
follow-up :mod:`repro.protocols.sec_filter` removes the zeroed tuples and
:func:`repro.protocols.enc_sort.enc_sort` ranks the survivors.
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import LayeredCiphertext, layered_select
from repro.crypto.paillier import Ciphertext
from repro.net.messages import ZeroTestBatch
from repro.protocols.base import S1Context
from repro.protocols.recover_enc import recover_enc_batch
from repro.structures.items import JoinedTuple

PROTOCOL = "SecJoin"

#: Joined scores are stored with this additive offset so that a
#: *successful* join can never produce the literal zero that ``SecFilter``
#: uses as its drop marker (a legitimate pair could otherwise score 0).
#: Callers subtract it homomorphically after filtering.
SCORE_OFFSET = 1


def sec_join(
    ctx: S1Context,
    left: list[dict],
    right: list[dict],
    join_attrs: tuple[int, int],
    score_attrs: tuple[int, int],
    carry_attrs: tuple[list[int], list[int]] | None = None,
    protocol: str = PROTOCOL,
) -> list[JoinedTuple]:
    """Produce all combined tuples (zeroed when the join condition fails).

    ``left``/``right`` entries are dicts with keys ``"ehl"`` (list of
    per-attribute EHL structures), ``"scores"`` (list of per-attribute
    Paillier ciphertexts) and optionally ``"record"``.

    ``carry_attrs`` selects which attributes of each side ride along into
    the joined tuple (default: the two score attributes plus records).
    """
    t1, t2 = join_attrs
    t3, t4 = score_attrs
    carry_left, carry_right = carry_attrs if carry_attrs else ([t3], [t4])

    pairs = [(i, j) for i in range(len(left)) for j in range(len(right))]
    ctx.rng.shuffle(pairs)

    eq_cts: list[Ciphertext] = []
    for i, j in pairs:
        eq_cts.append(left[i]["ehl"][t1].minus(right[j]["ehl"][t2], ctx.rng))
    bits: list[LayeredCiphertext] = ctx.call(
        ZeroTestBatch(protocol=protocol, cts=eq_cts)
    )

    # Homomorphic combination: score and carried attributes, gated by t
    # (the select keeps the inner value a valid ciphertext — Enc(0) — when
    # the join condition failed).
    zero = ctx.zero()
    layered = []
    for (i, j), bit in zip(pairs, bits):
        combined_score = left[i]["scores"][t3] + right[j]["scores"][t4] + SCORE_OFFSET
        layered.append(layered_select(ctx.dj, bit, combined_score, zero))
        for a in carry_left:
            layered.append(layered_select(ctx.dj, bit, left[i]["scores"][a], zero))
        for a in carry_right:
            layered.append(layered_select(ctx.dj, bit, right[j]["scores"][a], zero))
        if "record" in left[i]:
            layered.append(layered_select(ctx.dj, bit, left[i]["record"], zero))
        if "record" in right[j]:
            layered.append(layered_select(ctx.dj, bit, right[j]["record"], zero))

    recovered = recover_enc_batch(ctx, layered, protocol)

    per_tuple = 1 + len(carry_left) + len(carry_right)
    has_records = "record" in left[0] and "record" in right[0]
    if has_records:
        per_tuple += 2

    tuples: list[JoinedTuple] = []
    for idx in range(len(pairs)):
        base = idx * per_tuple
        tuples.append(
            JoinedTuple(
                score=recovered[base],
                attributes=recovered[base + 1 : base + per_tuple],
            )
        )
    return tuples

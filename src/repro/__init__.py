"""repro — reproduction of Meng, Zhu & Kollios, *Top-k Query Processing on
Encrypted Databases with Strong Security Guarantees* (ICDE 2018).

The package implements the complete system described in the paper:

* a from-scratch cryptographic substrate (Paillier, Damgård–Jurik, HMAC
  PRFs, pseudo-random permutations) in :mod:`repro.crypto`;
* the encrypted hash list structures EHL / EHL+ in :mod:`repro.structures`;
* the two-cloud secure sub-protocols (``RecoverEnc``, ``EncCompare``,
  ``EncSort``, ``SecWorst``, ``SecBest``, ``SecDedup``, ``SecDupElim``,
  ``SecUpdate``, ``SecFilter``, ``SecJoin``) in :mod:`repro.protocols`;
* the plaintext No-Random-Access algorithm and baselines in
  :mod:`repro.nra`;
* the top-level ``SecTopK = (Enc, Token, SecQuery)`` scheme in
  :mod:`repro.core`;
* the secure top-k join operator of Section 12 in :mod:`repro.join`;
* the secure-kNN comparator of Section 11.3 in :mod:`repro.baselines`;
* dataset generators mirroring the paper's evaluation data in
  :mod:`repro.data`;
* the experiment harness regenerating every table and figure in
  :mod:`repro.bench`.

Quickstart
----------

>>> from repro import SecTopK, SystemParams
>>> from repro.data import gaussian_relation
>>> relation = gaussian_relation(n_objects=40, n_attributes=4, seed=7)
>>> scheme = SecTopK(SystemParams.insecure_demo())
>>> encrypted = scheme.encrypt(relation)
>>> token = scheme.token(attributes=[0, 1, 2], k=3)
>>> result = scheme.query(encrypted, token)
>>> len(scheme.reveal(result))
3
"""

from repro._version import __version__
from repro.exceptions import (
    ReproError,
    KeyMismatchError,
    EncodingRangeError,
    PeerDisconnected,
    ProtocolError,
    QueryError,
    RemoteS2Error,
    TransportError,
)

__all__ = [
    "__version__",
    "SecTopK",
    "SystemParams",
    "ReproError",
    "KeyMismatchError",
    "EncodingRangeError",
    "PeerDisconnected",
    "ProtocolError",
    "QueryError",
    "RemoteS2Error",
    "TransportError",
]

_LAZY = {
    "SecTopK": ("repro.core.scheme", "SecTopK"),
    "SystemParams": ("repro.core.params", "SystemParams"),
}


def __getattr__(name):
    """Lazily resolve the heavyweight top-level exports.

    Keeps ``import repro`` cheap and avoids import cycles between the
    sub-packages during interpreter start-up.
    """
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""repro — reproduction of Meng, Zhu & Kollios, *Top-k Query Processing on
Encrypted Databases with Strong Security Guarantees* (ICDE 2018).

The package implements the complete system described in the paper:

* a from-scratch cryptographic substrate (Paillier, Damgård–Jurik, HMAC
  PRFs, pseudo-random permutations) in :mod:`repro.crypto`;
* the encrypted hash list structures EHL / EHL+ in :mod:`repro.structures`;
* the two-cloud secure sub-protocols (``RecoverEnc``, ``EncCompare``,
  ``EncSort``, ``SecWorst``, ``SecBest``, ``SecDedup``, ``SecDupElim``,
  ``SecUpdate``, ``SecFilter``, ``SecJoin``) in :mod:`repro.protocols`;
* the plaintext No-Random-Access algorithm and baselines in
  :mod:`repro.nra`;
* the top-level ``SecTopK = (Enc, Token, SecQuery)`` scheme in
  :mod:`repro.core`;
* the job-oriented client API — :func:`connect` / :class:`TopKClient`,
  asynchronous :class:`QueryJob` handles with streaming progress events
  — in :mod:`repro.client`, in front of the scheduling server of
  :mod:`repro.server` and the deployable S2 daemon;
* the secure top-k join operator of Section 12 in :mod:`repro.join`;
* the secure-kNN comparator of Section 11.3 in :mod:`repro.baselines`;
* dataset generators mirroring the paper's evaluation data in
  :mod:`repro.data`;
* the experiment harness regenerating every table and figure in
  :mod:`repro.bench`.

Quickstart
----------

>>> import repro
>>> from repro.data import gaussian_relation
>>> relation = gaussian_relation(n_objects=40, n_attributes=4, seed=7)
>>> scheme = repro.SecTopK(repro.SystemParams.insecure_demo())
>>> encrypted = scheme.encrypt(relation.rows)
>>> with repro.connect(scheme, encrypted) as client:
...     job = client.submit(client.token([0, 1, 2], k=3))
...     result = job.result()
>>> len(scheme.reveal(result))
3
"""

from repro._version import __version__
from repro.exceptions import (
    ReproError,
    JobCancelled,
    JobError,
    JobTimeout,
    KeyMismatchError,
    EncodingRangeError,
    MutationError,
    PeerDisconnected,
    ProtocolError,
    QueryError,
    RemoteS2Error,
    StaleRelationError,
    TransportError,
)

#: Curated public surface, client façade first: ``repro.connect`` is the
#: supported entry point; the scheme types follow for the data-owner
#: role; the exception hierarchy closes the list.
__all__ = [
    # client façade
    "connect",
    "TopKClient",
    "QueryJob",
    "WatchJob",
    "JobStatus",
    # mutations and streaming
    "MutableRelation",
    "MutationResult",
    "TopKChanged",
    # data-owner scheme and query types
    "SecTopK",
    "SystemParams",
    "Token",
    "QueryConfig",
    "QueryResult",
    "QueryStats",
    "ShardStats",
    # metadata
    "__version__",
    # exceptions
    "ReproError",
    "JobError",
    "JobCancelled",
    "JobTimeout",
    "KeyMismatchError",
    "EncodingRangeError",
    "MutationError",
    "PeerDisconnected",
    "ProtocolError",
    "QueryError",
    "RemoteS2Error",
    "StaleRelationError",
    "TransportError",
]

_LAZY = {
    "connect": ("repro.client", "connect"),
    "TopKClient": ("repro.client", "TopKClient"),
    "QueryJob": ("repro.server.jobs", "QueryJob"),
    "WatchJob": ("repro.server.jobs", "WatchJob"),
    "JobStatus": ("repro.server.jobs", "JobStatus"),
    "MutableRelation": ("repro.server.mutations", "MutableRelation"),
    "MutationResult": ("repro.server.mutations", "MutationResult"),
    "TopKChanged": ("repro.events", "TopKChanged"),
    "SecTopK": ("repro.core.scheme", "SecTopK"),
    "SystemParams": ("repro.core.params", "SystemParams"),
    "Token": ("repro.core.token", "Token"),
    "QueryConfig": ("repro.core.results", "QueryConfig"),
    "QueryResult": ("repro.core.results", "QueryResult"),
    "QueryStats": ("repro.core.results", "QueryStats"),
    "ShardStats": ("repro.core.results", "ShardStats"),
}


def __getattr__(name):
    """Lazily resolve the heavyweight top-level exports.

    Keeps ``import repro`` cheap and avoids import cycles between the
    sub-packages during interpreter start-up.
    """
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

"""Secure top-k join over multiple encrypted relations (Section 12).

:class:`repro.join.scheme.SecTopKJoin` encrypts a pair of relations with
per-*attribute-value* EHLs (Algorithm 10), mints join tokens
(Section 12.3) and executes the secure join operator ``⋈_sec``
(Section 12.4): ``SecJoin`` over all cross pairs, ``SecFilter`` to drop
non-joining tuples, and ``EncSort`` to rank the survivors.
"""

from repro.join.scheme import EncryptedJoinRelation, JoinToken, SecTopKJoin

__all__ = ["SecTopKJoin", "JoinToken", "EncryptedJoinRelation"]

"""The secure top-k join scheme (Section 12).

Differences from the single-relation scheme:

* there is no global object identifier shared across relations, so the
  *attribute values* themselves are EHL-encoded (Algorithm 10) — the join
  condition compares values, not ids;
* every attribute of every tuple is stored as
  ``E(s_k) = ⟨EHL(x_k), Enc(x_k)⟩`` and attribute positions are permuted
  per relation with the PRP;
* queries are equi-joins ``R1.A = R2.B ORDER BY R1.C + R2.D STOP AFTER k``
  (Section 12.3's token shape), executed by ``SecJoin`` → ``SecFilter`` →
  ``EncSort``.

The operator is *oblivious*: both clouds learn only the number of tuples
that satisfied the join condition (Section 12.4's declared leakage; the
paper notes this too can be padded away with SecDedup-style dummies).
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass

from repro.crypto.damgard_jurik import DamgardJurik
from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import PaillierKeypair
from repro.crypto.prf import random_key
from repro.crypto.prp import Prp
from repro.crypto.rng import SecureRandom
from repro.exceptions import DataError, QueryError
from repro.protocols.base import S1Context, _wire_clouds
from repro.protocols.enc_sort import enc_sort
from repro.protocols.sec_filter import JoinedTuple, sec_filter
from repro.protocols.sec_join import SCORE_OFFSET, sec_join
from repro.core.params import SystemParams
from repro.structures.ehl_plus import EhlPlus, EhlPlusFactory
from repro.structures.items import ScoredItem


@dataclass
class EncryptedJoinRelation:
    """One relation encrypted for joining (Algorithm 10)."""

    tuples: list[dict]
    """Per tuple: ``{"ehl": [EHL(x_k)], "scores": [Enc(x_k)], "record": Enc(row)}``
    with attribute positions permuted by the relation's PRP."""

    n_tuples: int
    n_attributes: int

    def serialized_size(self) -> int:
        """Total encrypted size in bytes."""
        total = 0
        for t in self.tuples:
            total += sum(e.serialized_size() for e in t["ehl"])
            total += sum(c.serialized_size() for c in t["scores"])
            total += t["record"].serialized_size()
        return total


@dataclass(frozen=True)
class JoinToken:
    """``SELECT * FROM ER1, ER2 WHERE ER1.t1 = ER2.t2 ORDER BY
    ER1.t3 + ER2.t4 STOP AFTER k`` (Section 12.3)."""

    t1: int
    t2: int
    t3: int
    t4: int
    k: int

    def __post_init__(self):
        if self.k < 1:
            raise QueryError("k must be >= 1")


@dataclass
class JoinResult:
    """Outcome of one secure top-k join."""

    tuples: list[JoinedTuple]
    join_cardinality: int
    channel_stats: object


class SecTopKJoin:
    """Data-owner/client API for secure top-k joins."""

    def __init__(self, params: SystemParams | None = None, seed: int | None = None):
        self.params = params or SystemParams.paper()
        self._rng = SecureRandom(seed)
        self.keypair = PaillierKeypair.generate(
            self.params.key_bits, self._rng.spawn("keygen")
        )
        self.public_key = self.keypair.public_key
        self.dj = DamgardJurik(self.public_key, s=2)
        self.encoder = SignedEncoder(
            self.public_key.n,
            score_bits=self.params.score_bits,
            blind_bits=self.params.blind_bits,
        )
        self._ehl_master = random_key(self._rng.spawn("ehl-master"))
        self._prp_keys: dict[str, bytes] = {}
        self._widths: dict[str, int] = {}
        self._s1_keypair = PaillierKeypair.generate(
            2 * self.params.key_bits + 16, self._rng.spawn("s1-own")
        )
        # Monotonic salt so every context draws independent randomness.
        self._ctx_counter = itertools.count()

    # ------------------------------------------------------------------

    def encrypt(self, name: str, rows: list[list[int]]) -> EncryptedJoinRelation:
        """Encrypt one relation for joining (Algorithm 10)."""
        if not rows:
            raise DataError("relation is empty")
        width = len(rows[0])
        if any(len(r) != width for r in rows):
            raise DataError("ragged relation")
        rng = self._rng.spawn(f"enc-{name}")
        factory = EhlPlusFactory(
            self.public_key,
            self._ehl_master,
            n_hashes=self.params.ehl_hashes,
            rng=rng,
        )
        key = self._prp_keys.setdefault(name, self._rng.spawn(f"prp-{name}").randbytes(32))
        self._widths[name] = width
        prp = Prp(key, width)
        inverse = [prp.inverse(p) for p in range(width)]

        tuples = []
        for row_id, row in enumerate(rows):
            for value in row:
                self.encoder.check_score(value)
            permuted = [row[inverse[p]] for p in range(width)]
            tuples.append(
                {
                    "ehl": [factory.encode(v) for v in permuted],
                    "scores": [self.public_key.encrypt(v, rng) for v in permuted],
                    "record": self.public_key.encrypt(row_id, rng),
                }
            )
        return EncryptedJoinRelation(
            tuples=tuples, n_tuples=len(rows), n_attributes=width
        )

    def token(
        self, left_name: str, right_name: str, join_on: tuple[int, int],
        order_by: tuple[int, int], k: int,
    ) -> JoinToken:
        """Permute the query's attribute indices into a join token."""
        left_prp = Prp(self._prp_keys[left_name], self._widths[left_name])
        right_prp = Prp(self._prp_keys[right_name], self._widths[right_name])
        return JoinToken(
            t1=left_prp.forward(join_on[0]),
            t2=right_prp.forward(join_on[1]),
            t3=left_prp.forward(order_by[0]),
            t4=right_prp.forward(order_by[1]),
            k=k,
        )

    # ------------------------------------------------------------------

    def make_clouds(self, transport: str = "inprocess") -> S1Context:
        """Wire up a fresh S1 context and S2 crypto cloud."""
        salt = f"#{next(self._ctx_counter)}"
        return _wire_clouds(
            self.keypair,
            self.dj,
            self.encoder,
            transport,
            self._rng.spawn("s1" + salt),
            self._rng.spawn("s2" + salt),
        )

    def join_query(
        self,
        left: EncryptedJoinRelation,
        right: EncryptedJoinRelation,
        token: JoinToken,
        ctx: S1Context | None = None,
    ) -> JoinResult:
        """Execute ``⋈_sec``: SecJoin → SecFilter → EncSort → top-k."""
        owns_ctx = ctx is None
        ctx = ctx or self.make_clouds()
        try:
            return self._join_query(left, right, token, ctx)
        finally:
            if owns_ctx:
                ctx.close()

    def _join_query(
        self,
        left: EncryptedJoinRelation,
        right: EncryptedJoinRelation,
        token: JoinToken,
        ctx: S1Context,
    ) -> JoinResult:
        combined = sec_join(
            ctx,
            left.tuples,
            right.tuples,
            join_attrs=(token.t1, token.t2),
            score_attrs=(token.t3, token.t4),
        )
        survivors = sec_filter(ctx, combined, self._s1_keypair)
        cardinality = len(survivors)

        # Remove the zero-guard offset from the surviving scores.
        for t in survivors:
            t.score = t.score - SCORE_OFFSET

        # Rank with EncSort: wrap tuples as sortable items (worst = score).
        wrapped = [
            ScoredItem(
                ehl=EhlPlus([self.public_key.encrypt(0, ctx.rng)]),
                worst=t.score,
                best=t.score,
                list_scores=list(t.attributes),
            )
            for t in survivors
        ]
        ranked = enc_sort(
            ctx,
            wrapped,
            self._s1_keypair,
            descending=True,
            method=self.params.sort_method,
            key="worst",
            protocol="SecJoinSort",
        )
        top = [
            JoinedTuple(score=item.worst, attributes=item.list_scores or [])
            for item in ranked[: token.k]
        ]
        return JoinResult(
            tuples=top,
            join_cardinality=cardinality,
            channel_stats=ctx.channel.snapshot(),
        )

    def reveal(self, result: JoinResult) -> list[tuple[int, list[int]]]:
        """Decrypt the winners into ``(score, attribute values)`` tuples."""
        out = []
        for t in result.tuples:
            score = self.keypair.secret_key.decrypt_signed(t.score)
            attrs = [self.keypair.secret_key.decrypt_signed(a) for a in t.attributes]
            out.append((score, attrs))
        return out

"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to distinguish the finer-grained categories below.
"""


class ReproError(Exception):
    """Base class of every exception raised by this package."""


class CryptoError(ReproError):
    """A cryptographic primitive was misused or an internal check failed."""


class KeyMismatchError(CryptoError):
    """Ciphertexts from different key pairs were combined."""


class EncodingRangeError(CryptoError):
    """A plaintext value does not fit the configured signed-encoding range."""


class DecryptionError(CryptoError):
    """A ciphertext failed to decrypt to a valid plaintext."""


class ProtocolError(ReproError):
    """A two-party sub-protocol received malformed or inconsistent input."""


class QueryError(ReproError):
    """A top-k query was malformed (bad attributes, k out of range, ...)."""


class DataError(ReproError):
    """A relation or dataset violates the shape the scheme requires."""

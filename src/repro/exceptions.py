"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to distinguish the finer-grained categories below.
"""


class ReproError(Exception):
    """Base class of every exception raised by this package."""


class CryptoError(ReproError):
    """A cryptographic primitive was misused or an internal check failed."""


class KeyMismatchError(CryptoError):
    """Ciphertexts from different key pairs were combined."""


class EncodingRangeError(CryptoError):
    """A plaintext value does not fit the configured signed-encoding range."""


class DecryptionError(CryptoError):
    """A ciphertext failed to decrypt to a valid plaintext."""


class ProtocolError(ReproError):
    """A two-party sub-protocol received malformed or inconsistent input."""


class TransportError(ProtocolError):
    """The inter-cloud link failed (connect, framing, or lifecycle)."""


class PeerDisconnected(TransportError):
    """The remote endpoint closed the link mid-protocol.

    Raised instead of hanging: a dead peer surfaces as this exception on
    the very next (or in-flight) exchange.
    """


class ShardFanInError(ProtocolError):
    """The sharded scan's fan-in stage received batches that do not tile
    the check window.

    Carries the offending ``shard_id`` (when the contribution could be
    attributed) and the window bounds, so an operator can tell *which*
    worker desynchronized instead of only that one did.
    """

    def __init__(self, text: str, shard_id: int | None = None,
                 window: tuple[int, int] | None = None):
        detail = text
        if shard_id is not None:
            detail += f" (shard {shard_id})"
        if window is not None:
            detail += f" in window [{window[0]}, {window[1]})"
        super().__init__(detail)
        self.shard_id = shard_id
        self.window = window


class ShardWorkerError(TransportError):
    """A remote shard worker failed to serve its slice.

    Wraps the connection-level failure (timeout, ``PeerDisconnected``,
    remote error report) with the shard id and worker address, so a
    worker dying mid-window surfaces as a typed job failure naming the
    culprit instead of a hung fan-in.
    """

    def __init__(self, shard_id: int, address: str, reason: str):
        super().__init__(
            f"shard worker {shard_id} at {address} failed: {reason}"
        )
        self.shard_id = shard_id
        self.address = address
        self.reason = reason


class RemoteS2Error(TransportError):
    """The S2 service failed to service a request and reported why.

    Carries the remote exception class name in :attr:`kind` so callers
    can distinguish, say, a ``KeyMismatchError`` on the daemon from a
    connection-level failure.
    """

    def __init__(self, kind: str, text: str):
        super().__init__(f"S2 dispatch failed ({kind}): {text}")
        self.kind = kind
        self.text = text


class ComputePoolError(ReproError):
    """The compute pool could not finish a batch.

    Raised when the pool's executor dies mid-batch (a worker process
    killed, a broken pipe) or is shut down underneath a caller blocked
    on chunk results — instead of leaking the executor's raw
    ``BrokenProcessPool`` / ``CancelledError`` through an S2 decrypt
    handler.
    """


class QueryError(ReproError):
    """A top-k query was malformed (bad attributes, k out of range, ...)."""


class StaleRelationError(QueryError):
    """The relation was mutated after this query/session pinned a version.

    Carries the version the caller expected and the version the server
    is actually serving, so clients can refresh their view (re-open the
    session, re-read ``client.version``) and retry deliberately instead
    of silently querying a relation that no longer exists.
    """

    def __init__(self, expected: int, current: int):
        super().__init__(
            f"relation version {expected} is stale (server now at "
            f"version {current})"
        )
        self.expected = expected
        self.current = current


class MutationError(ReproError):
    """An encrypted-relation mutation was malformed or impossible
    (unknown object id, ragged row, score out of encoding range, ...)."""


class JobError(ReproError):
    """A submitted query job ended without producing a result."""


class JobCancelled(JobError):
    """The job was cancelled (cooperatively, at a round boundary)."""


class JobTimeout(JobError):
    """The job exceeded its per-job deadline and was abandoned at a
    round boundary (or while still queued)."""


class DataError(ReproError):
    """A relation or dataset violates the shape the scheme requires."""

"""Typed request messages of the S1 -> S2 protocol.

Every interaction with the crypto cloud is expressed as one of the
message types below; S1-side protocol code never holds an S2 object —
it submits messages through its transport and the S2 dispatcher
(:mod:`repro.net.dispatch`) services them.

Each message declares

* ``protocol`` — the sub-protocol label the traffic is attributed to in
  the :class:`~repro.net.channel.ChannelStats` breakdown, and
* :meth:`Message.request_payload` — exactly the objects whose serialized
  size counts as S1 -> S2 bytes (matching what the paper's accounting
  ships: ciphertexts and clear metadata, not setup key material).

The reply of each message is the corresponding S2 response object; its
``measure_size`` counts as S2 -> S1 bytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class Message:
    """Base class: one S1 -> S2 request."""

    protocol: str

    def request_payload(self):
        """The objects whose wire size is accounted as S1 -> S2 traffic.

        Default: every field except ``protocol`` and fields listed in
        ``_unmeasured`` (protocol metadata and setup key material that the
        paper's bandwidth accounting does not count per-message).
        """
        skip = set(getattr(self, "_unmeasured", ())) | {"protocol"}
        values = tuple(
            getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in skip
        )
        return values[0] if len(values) == 1 else values


@dataclass(frozen=True)
class ZeroTestBatch(Message):
    """Algorithms 4/6/9: decrypt each ``Enc(b)``, reply ``E2(b == 0)``."""

    cts: list


@dataclass(frozen=True)
class StripLayerBatch(Message):
    """Algorithm 5 (``RecoverEnc``): strip the outer DJ layer of each item."""

    cts: list


@dataclass(frozen=True)
class BlindedSign(Message):
    """Blinded ``EncCompare``: reply with the sign of the blinded value."""

    ct: object


@dataclass(frozen=True)
class DecryptMaskedBit(Message):
    """Decrypt a ciphertext known to hold a coin-masked bit."""

    ct: object


@dataclass(frozen=True)
class DgkDecompose(Message):
    """DGK step 1: decrypt blinded ``c`` and return its encrypted bits."""

    ct: object
    ell: int

    _unmeasured = ("ell",)


@dataclass(frozen=True)
class DgkAnyZero(Message):
    """DGK step 2: does any of the randomized terms decrypt to zero?"""

    cts: list


@dataclass(frozen=True)
class SquareBlinded(Message):
    """SkNN baseline: decrypt a blinded value, reply ``Enc(value²)``."""

    ct: object


@dataclass(frozen=True)
class RecordShipment(Message):
    """A one-way bulk shipment (e.g. SkNN candidate records); no reply."""

    objects: list


@dataclass(frozen=True)
class SortAffine(Message):
    """``EncSort`` (affine construction): sort blinded keys, re-blind items."""

    keys: list
    items: list
    companions: list
    own_public: object
    descending: bool

    _unmeasured = ("own_public", "descending")


@dataclass(frozen=True)
class SortGateBatch(Message):
    """``EncSort`` (network construction): one layer of compare-exchange gates.

    ``gates`` is a list of ``(pair_keys, pair_items, pair_companions)``
    triples; the reply is the per-gate ordered, re-blinded triples.
    """

    gates: list
    own_public: object
    descending: bool

    _unmeasured = ("own_public", "descending")


@dataclass(frozen=True)
class DedupBatch(Message):
    """Algorithm 7 / Section 10.1: bury or drop duplicate-group members."""

    matrix: list
    items: list
    companions: list
    ranks: list
    own_public: object
    sentinel: int
    eliminate: bool

    _unmeasured = ("own_public", "sentinel", "eliminate")


@dataclass(frozen=True)
class NaiveTopKQuery(Message):
    """Full-shipment baseline ("plaintext" engine): every (score, record)
    ciphertext crosses the link; S2 decrypts, aggregates per object and
    returns the top-k as fresh ``(Enc(record), Enc(total))`` pairs."""

    scores: list
    records: list
    k: int

    _unmeasured = ("k",)


@dataclass(frozen=True)
class AggregateByRecord(Message):
    """SkNN-scan baseline phase 1: ship all (score, record) ciphertexts;
    S2 replies with per-object aggregate totals (record ids in clear —
    the baseline's declared wholesale reveal)."""

    scores: list
    records: list


@dataclass(frozen=True)
class FilterBatch(Message):
    """Algorithm 12 (``SecFilter``): drop zero-score tuples, re-blind rest."""

    tuples: list
    material: list
    own_public: object

    _unmeasured = ("own_public",)


@dataclass(frozen=True)
class ShardBatch(Message):
    """One check-window request on the S1-internal shard link.

    Not an S1 -> S2 message: it rides the
    :class:`~repro.net.socket_transport.ShardClient` connection between
    the query coordinator and a remote shard-worker daemon, asking for
    the weighted ``(depth, items)`` pairs of window ``[lo, hi)`` from
    the slice registered under ``(relation_id, shard_id)``.  It shares
    the envelope codec for its ciphertext-bearing reply, but never
    touches the S1 <-> S2 channel accounting — the shard link is storage
    infrastructure, invisible in the paper's bandwidth numbers.
    """

    protocol: str = "shard-scan"
    relation_id: str = ""
    shard_id: int = 0
    names: tuple = ()
    weights: tuple = ()
    lo: int = 0
    hi: int = 0


#: Stable wire ids (appended-only; never reorder).
MESSAGE_TYPES: list[type] = [
    ZeroTestBatch,
    StripLayerBatch,
    BlindedSign,
    DecryptMaskedBit,
    DgkDecompose,
    DgkAnyZero,
    SquareBlinded,
    RecordShipment,
    SortAffine,
    SortGateBatch,
    DedupBatch,
    FilterBatch,
    NaiveTopKQuery,
    AggregateByRecord,
    ShardBatch,
]

_TYPE_IDS = {cls: idx for idx, cls in enumerate(MESSAGE_TYPES)}


def message_type_id(cls: type) -> int:
    """Wire id of a message class."""
    return _TYPE_IDS[cls]


def message_class(type_id: int) -> type:
    """Message class for a wire id."""
    return MESSAGE_TYPES[type_id]


def message_fields(cls: type) -> list[str]:
    """Ordered field names of a message class (wire field order)."""
    return [f.name for f in dataclasses.fields(cls)]

"""Socket transport: the S1 <-> S2 link as a real network connection.

This is the deployment half of the transport layer: where
:class:`~repro.net.transport.ThreadedTransport` moves serialized bytes
through an in-process queue pair, :class:`SocketTransport` moves the
same :class:`~repro.net.wire.WireCodec` byte streams over a TCP or
Unix-domain socket to a standalone S2 daemon
(:mod:`repro.server.s2_service`), so the two clouds genuinely run in
different processes or on different hosts — the paper's two-provider
threat model made literal.

Wire format (everything big-endian)::

    frame   := u32 payload_len | u8 type | u32 session_id | payload
    HELLO / HELLO_OK      version banner, once per connection
    REGISTER / REGISTERED relation registration (key/param upload)
    OPEN / OPENED         open one protocol session; the payload is
                          ``relation_id NUL label NUL rng-blob`` — the
                          label names the job/session that opened it,
                          so daemon-side observability can attribute
                          sessions to client jobs
    REQUEST / REPLY       one coalesced protocol round
    CLOSE / CLOSED        end one session
    ERROR                 failure report (session_id 0 = connection)

One connection carries many concurrent *sessions*: every data frame is
tagged with its session id, a reader thread demultiplexes replies, and
each session keeps its own codec pair — exactly the isolation the
in-process transports provide, shared over one socket.

**Relation registration.** Before a session can open, the daemon must
hold the deployment's key material (the data owner provisions S2 with
the secret key in the paper's model — Section 3.1).  The client
registers that blob once under a *relation id*; every later session —
from this process, a worker process, or another client machine — opens
by id alone, so repeated queries against the same relation never
re-upload the registration payload.

Failure model: a dead peer surfaces as
:class:`~repro.exceptions.PeerDisconnected` on the in-flight or next
exchange (never a hang); a daemon-side dispatch failure surfaces as
:class:`~repro.exceptions.RemoteS2Error` carrying the remote exception
kind.

Trust note: control frames (registration, session open) are pickled —
the two clouds are mutually authenticated infrastructure in the paper's
deployment model, and the registration blob *is* secret key material.
Expose the daemon only on links you would trust with the key itself.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import os
import pickle
import queue
import socket
import struct
import threading

from repro.exceptions import PeerDisconnected, RemoteS2Error, TransportError
from repro.net.transport import Transport
from repro.net.wire import WireCodec, _Reader

# -- frame protocol --------------------------------------------------------

#: Bumped to /3 when REPLY frames grew the S2-progress element (/2 when
#: the OPEN payload grew its session-label segment).  A /3 client
#: negotiates down to /2 transparently: an old daemon answers the /3
#: HELLO with a ``version-mismatch`` ERROR naming its banner and drops
#: the connection, and the client redials speaking /2.
PROTOCOL_BANNER = b"repro-s2/3"
PROTOCOL_BANNER_V2 = b"repro-s2/2"

#: ERROR kind a daemon sends for a HELLO banner it does not speak; the
#: text names the daemon's own banner so the client can downgrade.
VERSION_MISMATCH = "version-mismatch"

HELLO = 0x01
HELLO_OK = 0x02
REGISTER = 0x03
REGISTERED = 0x04
OPEN = 0x05
OPENED = 0x06
REQUEST = 0x07
REPLY = 0x08
CLOSE = 0x09
CLOSED = 0x0A
ERROR = 0x0B
MUTATE = 0x0C
MUTATED = 0x0D
SLICE = 0x0E
SLICED = 0x0F

#: Banner of the S1 shard-worker daemon (:mod:`repro.server.shard_service`).
#: A separate protocol from S2: shard daemons hold ciphertext rows, never
#: key material, and speak SLICE/REQUEST/MUTATE only.  Strict — there is
#: no older shard daemon to downgrade to.
SHARD_BANNER = b"repro-shard/1"

_HEADER = struct.Struct("!IBI")  # payload length, frame type, session id

#: Upper bound on one frame's payload — far above any real round, so a
#: mis-framed or hostile stream fails fast instead of allocating wildly.
MAX_FRAME_BYTES = 1 << 30

#: Error kind the daemon sends for an OPEN naming an unregistered
#: relation; the client reacts by registering and retrying (with the
#: version-mismatch downgrade, the only ERRORs that are part of the
#: normal handshake).
UNKNOWN_RELATION = "unknown-relation"


class _VersionMismatch(Exception):
    """Internal handshake signal: the daemon named a banner we can retry."""

    def __init__(self, offered: str):
        super().__init__(offered)
        self.offered = offered


def parse_address(address: str) -> tuple[str, object]:
    """Split ``tcp://host:port`` / ``unix:///path`` into (family, target)."""
    if address.startswith("tcp://"):
        rest = address[len("tcp://") :]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise TransportError(f"malformed TCP address: {address!r}")
        return "tcp", (host or "127.0.0.1", int(port))
    if address.startswith("unix://"):
        path = address[len("unix://") :]
        if not path:
            raise TransportError(f"malformed Unix address: {address!r}")
        return "unix", path
    raise TransportError(f"unknown socket address scheme: {address!r}")


def is_socket_address(spec: str) -> bool:
    """Whether a transport spec names a remote S2 rather than a backend."""
    return isinstance(spec, str) and spec.startswith(("tcp://", "unix://"))


def connect_socket(address: str, timeout: float | None = 10.0) -> socket.socket:
    """Open a client socket to ``address`` (blocking mode once connected)."""
    family, target = parse_address(address)
    try:
        if family == "tcp":
            sock = socket.create_connection(target, timeout=timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            if not hasattr(socket, "AF_UNIX"):
                raise TransportError("Unix-domain sockets unavailable here")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(target)
    except OSError as exc:
        raise TransportError(f"cannot connect to S2 at {address}: {exc}") from exc
    sock.settimeout(None)
    return sock


def send_frame(
    sock: socket.socket, ftype: int, session_id: int, payload: bytes = b""
) -> None:
    """Write one frame (caller serializes access to the socket)."""
    try:
        sock.sendall(_HEADER.pack(len(payload), ftype, session_id) + payload)
    except OSError as exc:
        raise PeerDisconnected(f"peer went away mid-send: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = io.BytesIO()
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except OSError as exc:
            raise PeerDisconnected(f"peer went away mid-receive: {exc}") from exc
        if not chunk:
            raise PeerDisconnected("peer closed the connection")
        buf.write(chunk)
        remaining -= len(chunk)
    return buf.getvalue()


def recv_frame(sock: socket.socket) -> tuple[int, int, bytes]:
    """Read one frame; raises :class:`PeerDisconnected` on EOF/reset."""
    length, ftype, session_id = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame of {length} bytes exceeds the protocol cap")
    return ftype, session_id, _recv_exact(sock, length) if length else b""


def encode_error(kind: str, text: str) -> bytes:
    """Serialize an ERROR payload (plain UTF-8, no pickle on this path)."""
    return kind.encode("utf-8") + b"\x00" + text.encode("utf-8", "replace")


def decode_error(payload: bytes) -> tuple[str, str]:
    """Inverse of :func:`encode_error`."""
    kind, _, text = payload.partition(b"\x00")
    return kind.decode("utf-8", "replace"), text.decode("utf-8", "replace")


def default_registration_id(keypair, dj) -> str:
    """Registration id for bare key material (no relation in sight).

    Schemes that know their encrypted relation derive a relation-scoped
    id instead (``EncryptedRelation.relation_id``); this fallback keys
    the upload by the public modulus and DJ degree, which is exactly
    what the daemon needs to service the sessions.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-s2-registration:")
    digest.update(keypair.public_key.n.to_bytes(
        (keypair.public_key.n.bit_length() + 7) // 8, "big"
    ))
    digest.update(bytes([dj.s]))
    return digest.hexdigest()[:32]


# -- client side -----------------------------------------------------------


class S2Client:
    """One process's multiplexed connection to a remote S2 daemon.

    All sessions this process opens against one address share a single
    socket; a reader thread routes session-tagged reply frames to the
    waiting exchanges.  Control operations (registration, session
    open/close) are serialized; data rounds from different sessions
    interleave freely.
    """

    def __init__(self, address: str, timeout: float | None = 10.0):
        self.address = address
        self.pid = os.getpid()
        self._sock = connect_socket(address, timeout)
        self._write_lock = threading.Lock()
        self._control_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, queue.SimpleQueue] = {}
        self._session_ids = itertools.count(1)
        self._dead: Exception | None = None
        #: Negotiated protocol major version (3, or 2 against an old
        #: daemon — /2 REPLYs carry no S2-progress element).
        self.protocol_version = 3
        # Version handshake happens before the reader thread exists, so
        # a non-daemon peer fails here with a clear error (and never
        # leaks the connected socket).  An old daemon rejects the /3
        # banner with a version-mismatch ERROR and drops the connection;
        # the client then redials on a fresh socket speaking /2.
        try:
            self._sock.settimeout(timeout)
            try:
                self._handshake(PROTOCOL_BANNER)
            except _VersionMismatch as exc:
                if PROTOCOL_BANNER_V2.decode() not in exc.offered:
                    raise TransportError(
                        f"peer at {address} speaks neither "
                        f"{PROTOCOL_BANNER.decode()} nor "
                        f"{PROTOCOL_BANNER_V2.decode()} (offered: "
                        f"{exc.offered!r})"
                    ) from None
                self._sock.close()
                self._sock = connect_socket(address, timeout)
                self._sock.settimeout(timeout)
                self._handshake(PROTOCOL_BANNER_V2)
                self.protocol_version = 2
            self._sock.settimeout(None)
        except BaseException:
            self._sock.close()
            raise
        self._reader = threading.Thread(
            target=self._read_loop, name=f"s2-client:{address}", daemon=True
        )
        self._reader.start()

    def _handshake(self, banner: bytes) -> None:
        send_frame(self._sock, HELLO, 0, banner)
        ftype, _, payload = recv_frame(self._sock)
        if ftype == ERROR:
            kind, text = decode_error(payload)
            if kind == VERSION_MISMATCH:
                raise _VersionMismatch(text)
            raise TransportError(
                f"peer at {self.address} rejected the handshake: {kind}: {text}"
            )
        if ftype != HELLO_OK or payload != banner:
            raise TransportError(
                f"peer at {self.address} did not speak {banner.decode()}"
            )

    # -- reply routing ---------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                ftype, session_id, payload = recv_frame(self._sock)
                if ftype == ERROR:
                    kind, text = decode_error(payload)
                    item: object = RemoteS2Error(kind, text)
                else:
                    item = (ftype, payload)
                if not self._deliver(session_id, item):
                    if ftype == ERROR:
                        # Connection-level failure with nobody waiting.
                        raise RemoteS2Error(kind, text)
                    raise TransportError(
                        f"unsolicited frame {ftype} for session {session_id}"
                    )
        except Exception as exc:  # noqa: BLE001 — every exit poisons the link
            self._fail(exc)

    def _deliver(self, session_id: int, item) -> bool:
        with self._state_lock:
            waiter = self._pending.get(session_id)
        if waiter is None:
            return False
        waiter.put(item)
        return True

    def _fail(self, exc: Exception) -> None:
        """Poison the connection: every waiter gets the failure now, and
        every later operation raises immediately — peer death is an
        exception, never a hang."""
        with self._state_lock:
            if self._dead is None:
                self._dead = exc
            waiters = list(self._pending.values())
        for waiter in waiters:
            waiter.put(exc)
        # shutdown() before close(): close alone neither wakes a reader
        # thread blocked in recv on this fd nor guarantees the peer sees
        # FIN while that syscall pins the description.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def dead(self) -> bool:
        """Whether the connection has been poisoned."""
        return self._dead is not None

    # -- request/reply ---------------------------------------------------

    def _roundtrip(self, ftype: int, session_id: int, payload: bytes):
        with self._state_lock:
            if self._dead is not None:
                raise PeerDisconnected(
                    f"connection to {self.address} is down: {self._dead}"
                ) from self._dead
            if session_id in self._pending:
                raise TransportError(
                    f"session {session_id} already has a request in flight"
                )
            waiter: queue.SimpleQueue = queue.SimpleQueue()
            self._pending[session_id] = waiter
        try:
            with self._write_lock:
                send_frame(self._sock, ftype, session_id, payload)
            item = waiter.get()
        finally:
            with self._state_lock:
                self._pending.pop(session_id, None)
        if isinstance(item, Exception):
            raise item
        return item

    def _expect(self, item, ftype: int) -> bytes:
        got, payload = item
        if got != ftype:
            raise TransportError(f"expected frame {ftype}, peer sent {got}")
        return payload

    def request(self, session_id: int, data: bytes) -> bytes:
        """One protocol round: REQUEST out, the matching REPLY payload back."""
        return self._expect(self._roundtrip(REQUEST, session_id, data), REPLY)

    # -- split-phase request (scan rendezvous) ---------------------------

    def request_begin(self, session_id: int, data: bytes):
        """Send one REQUEST frame without waiting; returns the waiter.

        The split lets several sessions' frames go out back-to-back on
        the shared socket before any reply is collected — the wire shape
        of one combined round-trip.  Pair with :meth:`request_finish`
        (exactly once) after a successful begin.
        """
        with self._state_lock:
            if self._dead is not None:
                raise PeerDisconnected(
                    f"connection to {self.address} is down: {self._dead}"
                ) from self._dead
            if session_id in self._pending:
                raise TransportError(
                    f"session {session_id} already has a request in flight"
                )
            waiter: queue.SimpleQueue = queue.SimpleQueue()
            self._pending[session_id] = waiter
        try:
            with self._write_lock:
                send_frame(self._sock, REQUEST, session_id, data)
        except BaseException:
            with self._state_lock:
                self._pending.pop(session_id, None)
            raise
        return waiter

    def request_finish(self, session_id: int, waiter) -> bytes:
        """Collect the REPLY of a :meth:`request_begin`."""
        try:
            item = waiter.get()
        finally:
            with self._state_lock:
                self._pending.pop(session_id, None)
        if isinstance(item, Exception):
            raise item
        return self._expect(item, REPLY)

    # -- handshake / session lifecycle -----------------------------------

    def open_session(
        self,
        relation_id: str,
        payload_factory,
        session_blob: bytes,
        label: str = "",
    ) -> int:
        """Open a session for a registered relation, registering on demand.

        ``payload_factory`` builds the registration blob lazily: it is
        only invoked when the daemon does not yet know ``relation_id``,
        so the steady state ships nothing but the tiny OPEN frame.
        ``label`` rides the OPEN frame (NUL-free, truncated) so the
        daemon can attribute the session to the client job that opened
        it.
        """
        label_bytes = label.replace("\x00", "").encode("utf-8", "replace")[:128]
        open_payload = (
            relation_id.encode("utf-8")
            + b"\x00"
            + label_bytes
            + b"\x00"
            + session_blob
        )
        with self._control_lock:
            session_id = next(self._session_ids)
            try:
                self._expect(
                    self._roundtrip(OPEN, session_id, open_payload), OPENED
                )
            except RemoteS2Error as exc:
                if exc.kind != UNKNOWN_RELATION:
                    raise
                self._expect(
                    self._roundtrip(REGISTER, 0, payload_factory()), REGISTERED
                )
                self._expect(
                    self._roundtrip(OPEN, session_id, open_payload), OPENED
                )
            return session_id

    def close_session(self, session_id: int) -> None:
        """End one session (graceful CLOSE/CLOSED exchange)."""
        with self._control_lock:
            self._expect(self._roundtrip(CLOSE, session_id, b""), CLOSED)

    def mutate_relation(self, old_id: str, new_id: str) -> bool:
        """Re-key the daemon's registration after a relation mutation.

        The key material is version-independent (a mutation re-randomizes
        ciphertexts under the same keys), so a MUTATE frame moves the
        daemon's registry entry from the predecessor's relation id to the
        successor's — the next OPEN then skips the key re-upload.
        Returns ``False`` — without raising — against a daemon that
        predates the frame (it answers ``unknown-frame``); callers fall
        back to the lazy re-register built into :meth:`open_session`.
        """
        payload = old_id.encode("utf-8") + b"\x00" + new_id.encode("utf-8")
        with self._control_lock:
            try:
                self._expect(self._roundtrip(MUTATE, 0, payload), MUTATED)
            except RemoteS2Error as exc:
                if exc.kind == "unknown-frame":
                    return False
                raise
        return True

    def close(self) -> None:
        """Drop the connection (idempotent; pending exchanges fail)."""
        self._fail(TransportError("client connection closed"))


class SocketTransport(Transport):
    """One session's transport over a shared :class:`S2Client`.

    Mirrors :class:`~repro.net.transport.ThreadedTransport` exactly —
    same codec discipline (one stateful :class:`WireCodec` per endpoint
    per session, kept in sync by the byte stream itself), same
    round-trip-per-exchange semantics — with the queue pair replaced by
    session-tagged frames on the client's socket.  S2-side leakage
    events ride back inside each REPLY and are folded into the local
    log at the position they would occupy in-process.
    """

    def __init__(self, client: S2Client, session_id: int, leakage, on_progress=None):
        self._client = client
        self.session_id = session_id
        self._codec = WireCodec()
        self._leakage = leakage
        self._on_progress = on_progress
        self._lock = threading.Lock()
        self._closed = False

    def exchange(self, messages: list) -> list:
        return self.finish_exchange(self.begin_exchange(messages))

    def begin_exchange(self, messages: list):
        """Put this session's REQUEST frame on the shared socket; the
        session lock is held until :meth:`finish_exchange` collects the
        demultiplexed REPLY."""
        self._lock.acquire()
        try:
            if self._closed:
                raise TransportError("session transport is closed")
            return self._client.request_begin(
                self.session_id, self._codec.encode_envelope(messages)
            )
        except BaseException:
            self._lock.release()
            raise

    def finish_exchange(self, state) -> list:
        try:
            payload = self._client.request_finish(self.session_id, state)
            decoded = self._codec.decode_value(_Reader(payload))
        finally:
            self._lock.release()
        if len(decoded) >= 3:
            # /3 REPLY: (replies, leaked, progress) — progress entries
            # are (batches, values, microseconds) int triples (the wire
            # codec carries no floats).
            replies, leaked, progress = decoded[0], decoded[1], decoded[2]
        else:
            replies, leaked = decoded
            progress = ()
        for observer, protocol, kind, event_payload in leaked:
            self._leakage.record(observer, protocol, kind, event_payload)
        if progress and self._on_progress is not None:
            for batches, values, micros in progress:
                try:
                    self._on_progress(int(batches), int(values), micros / 1e6)
                except Exception:
                    pass  # observation only — never fail the round
        return list(replies)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._client.close_session(self.session_id)
        except TransportError:
            pass  # a dead daemon cannot acknowledge; the session is gone


# -- shard-worker client ---------------------------------------------------


class ShardClient:
    """One process's multiplexed connection to a shard-worker daemon.

    The shard link reuses the S2 frame protocol's framing and reader-
    thread demultiplexing, but the conversation is simpler: no key
    material, no long-lived sessions — every request is one exchange
    under a fresh session id, so concurrent shard workers mapped to the
    same daemon interleave freely on one socket.  Depth-batch requests
    take a per-call ``timeout``: a daemon that stops answering poisons
    the connection and raises, so a worker dying mid-window surfaces as
    a typed failure instead of a hung fan-in.

    Byte accounting note: the shard link is S1-internal infrastructure
    (storage tier, not the S1<->S2 channel), so nothing here touches the
    query's :class:`~repro.net.channel.Channel` statistics — exactly why
    remote placement is transcript-invisible.
    """

    def __init__(self, address: str, timeout: float | None = 10.0):
        self.address = address
        self.pid = os.getpid()
        self._sock = connect_socket(address, timeout)
        self._write_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, queue.SimpleQueue] = {}
        self._session_ids = itertools.count(1)
        self._dead: Exception | None = None
        try:
            self._sock.settimeout(timeout)
            send_frame(self._sock, HELLO, 0, SHARD_BANNER)
            ftype, _, payload = recv_frame(self._sock)
            if ftype == ERROR:
                kind, text = decode_error(payload)
                raise TransportError(
                    f"shard daemon at {address} rejected the handshake: "
                    f"{kind}: {text}"
                )
            if ftype != HELLO_OK or payload != SHARD_BANNER:
                raise TransportError(
                    f"peer at {address} does not speak {SHARD_BANNER.decode()}"
                )
            self._sock.settimeout(None)
        except BaseException:
            self._sock.close()
            raise
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-client:{address}", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                ftype, session_id, payload = recv_frame(self._sock)
                if ftype == ERROR:
                    kind, text = decode_error(payload)
                    item: object = RemoteS2Error(kind, text)
                else:
                    item = (ftype, payload)
                if not self._deliver(session_id, item):
                    if ftype == ERROR:
                        raise RemoteS2Error(kind, text)
                    raise TransportError(
                        f"unsolicited frame {ftype} for session {session_id}"
                    )
        except Exception as exc:  # noqa: BLE001 — every exit poisons the link
            self._fail(exc)

    def _deliver(self, session_id: int, item) -> bool:
        with self._state_lock:
            waiter = self._pending.get(session_id)
        if waiter is None:
            return False
        waiter.put(item)
        return True

    def _fail(self, exc: Exception) -> None:
        with self._state_lock:
            if self._dead is None:
                self._dead = exc
            waiters = list(self._pending.values())
        for waiter in waiters:
            waiter.put(exc)
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def dead(self) -> bool:
        return self._dead is not None

    def _roundtrip(
        self, ftype: int, payload: bytes, expect: int,
        timeout: float | None = None,
    ) -> bytes:
        session_id = next(self._session_ids)
        with self._state_lock:
            if self._dead is not None:
                raise PeerDisconnected(
                    f"connection to {self.address} is down: {self._dead}"
                ) from self._dead
            waiter: queue.SimpleQueue = queue.SimpleQueue()
            self._pending[session_id] = waiter
        try:
            with self._write_lock:
                send_frame(self._sock, ftype, session_id, payload)
            try:
                item = waiter.get(timeout=timeout)
            except queue.Empty:
                exc = TransportError(
                    f"shard daemon at {self.address} did not answer within "
                    f"{timeout:.1f}s"
                )
                # A silent daemon leaves the stream in an unknowable
                # state; poison the connection so every other in-flight
                # worker fails fast too instead of waiting out its own
                # timeout against a wedged peer.
                self._fail(exc)
                raise exc from None
        finally:
            with self._state_lock:
                self._pending.pop(session_id, None)
        if isinstance(item, Exception):
            raise item
        got, reply = item
        if got != expect:
            raise TransportError(f"expected frame {expect}, peer sent {got}")
        return reply

    # -- shard operations -------------------------------------------------

    def upload_slice(self, slice_payload: dict) -> None:
        """Register one ``(relation_id, shard_id)`` slice (idempotent)."""
        self._roundtrip(
            SLICE,
            pickle.dumps(slice_payload, protocol=pickle.HIGHEST_PROTOCOL),
            SLICED,
        )

    def depth_batch(
        self,
        relation_id: str,
        shard_id: int,
        names: tuple,
        weights: tuple,
        lo: int,
        hi: int,
        timeout: float | None = None,
    ) -> list:
        """One window request: the shard's ``(depth, items)`` pairs.

        Raises :class:`RemoteS2Error` with kind ``unknown-relation``
        when the daemon does not hold the slice (callers upload and
        retry).
        """
        from repro.net.messages import ShardBatch

        msg = ShardBatch(
            relation_id=relation_id,
            shard_id=shard_id,
            names=tuple(names),
            weights=tuple(weights),
            lo=lo,
            hi=hi,
        )
        # Fresh codec per frame on both endpoints: a shard exchange is
        # self-contained (keys re-register per reply), so no cross-request
        # codec state needs to survive connection churn.
        payload = WireCodec().encode_envelope([msg])
        reply = self._roundtrip(REQUEST, payload, REPLY, timeout=timeout)
        (batch,) = WireCodec().decode_replies(reply)
        return list(batch)

    def mutate(self, delta: dict) -> dict:
        """Delta-sync the daemon's slices after a relation mutation."""
        reply = self._roundtrip(
            MUTATE, pickle.dumps(delta, protocol=pickle.HIGHEST_PROTOCOL),
            MUTATED,
        )
        return pickle.loads(reply) if reply else {}

    def close(self) -> None:
        self._fail(TransportError("client connection closed"))


# -- per-process client registry -------------------------------------------

_CLIENTS: dict[str, S2Client] = {}
_SHARD_CLIENTS: dict[str, ShardClient] = {}
_CLIENTS_LOCK = threading.Lock()


def _reset_after_fork() -> None:
    # A forked child must not touch the parent's connections (frames
    # from two processes would interleave on one stream) and must not
    # inherit a lock some other parent thread held at fork time: start
    # the child with an empty registry and a fresh lock.  The inherited
    # socket objects are simply abandoned — closing the child's fds
    # never FINs a stream the parent still holds.
    global _CLIENTS_LOCK
    _CLIENTS_LOCK = threading.Lock()
    _CLIENTS.clear()
    _SHARD_CLIENTS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


def client_for(address: str, timeout: float | None = 10.0) -> S2Client:
    """The process-wide shared client for ``address``.

    One connection per (process, address): concurrent sessions
    multiplex over it, worker processes get their own (a forked child
    never reuses the parent's socket — frames from two processes on one
    stream would interleave; the pid check catches inherited entries),
    and a poisoned connection is transparently replaced.
    """
    with _CLIENTS_LOCK:
        client = _CLIENTS.get(address)
        if client is not None and (client.pid != os.getpid() or client.dead):
            if client.pid != os.getpid():
                # Forked-off inheritance: quietly drop our duplicate fd
                # (the parent's open description keeps the stream alive).
                try:
                    client._sock.close()
                except OSError:
                    pass
            else:
                client.close()
            _CLIENTS.pop(address, None)
            client = None
        if client is None:
            client = S2Client(address, timeout)
            _CLIENTS[address] = client
        return client


def shard_client_for(address: str, timeout: float | None = 10.0) -> ShardClient:
    """The process-wide shared shard-daemon client for ``address``.

    Same discipline as :func:`client_for`: one connection per (process,
    address), pid-checked against fork inheritance, and a poisoned
    connection transparently replaced — a worker that failed once does
    not doom the next query's attempt.
    """
    with _CLIENTS_LOCK:
        client = _SHARD_CLIENTS.get(address)
        if client is not None and (client.pid != os.getpid() or client.dead):
            if client.pid != os.getpid():
                try:
                    client._sock.close()
                except OSError:
                    pass
            else:
                client.close()
            _SHARD_CLIENTS.pop(address, None)
            client = None
        if client is None:
            client = ShardClient(address, timeout)
            _SHARD_CLIENTS[address] = client
        return client


def disconnect_all() -> None:
    """Drop every cached daemon connection (tests and benchmarks)."""
    with _CLIENTS_LOCK:
        clients: list = list(_CLIENTS.values())
        clients += list(_SHARD_CLIENTS.values())
        _CLIENTS.clear()
        _SHARD_CLIENTS.clear()
    for client in clients:
        client.close()


def open_remote_session(
    address: str,
    keypair,
    dj,
    s2_rng,
    leakage,
    relation_id: str | None = None,
    label: str = "",
    on_progress=None,
) -> SocketTransport:
    """Open one protocol session against the S2 daemon at ``address``.

    Registers the deployment's key material under ``relation_id`` if the
    daemon does not hold it yet (first contact only), then hands the
    session its randomness stream — the exact :class:`SecureRandom` the
    in-process wiring would give a local crypto cloud, so a remote query
    is bit-identical to a local one.  ``on_progress(batches, values,
    seconds)``, when given, receives the daemon's per-round decrypt
    progress piggybacked on /3 REPLY frames (never called against a /2
    daemon; purely observational).
    """
    rid = relation_id or default_registration_id(keypair, dj)

    def registration_payload() -> bytes:
        return pickle.dumps(
            {"relation_id": rid, "keypair": keypair, "dj": dj},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    client = client_for(address)
    session_id = client.open_session(
        rid,
        registration_payload,
        pickle.dumps(s2_rng, protocol=pickle.HIGHEST_PROTOCOL),
        label=label,
    )
    return SocketTransport(client, session_id, leakage, on_progress=on_progress)

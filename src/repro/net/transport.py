"""Transport backends carrying protocol messages between the clouds.

A :class:`Transport` delivers a *batch* of typed request messages to S2
and returns the per-message replies; one :meth:`Transport.exchange` call
is one communication round-trip, which is exactly what the channel's
round counter measures.

Two backends:

* :class:`InProcessTransport` — invokes the S2 dispatcher directly.
  Nothing is copied or encoded (the accounting channel still measures
  payload sizes), which keeps the simulation as fast as the seed's
  direct-call style while enforcing the message boundary.

* :class:`ThreadedTransport` — a queue-pair to a dedicated S2 service
  thread.  Requests and replies genuinely cross the boundary as *bytes*
  (encoded with :class:`~repro.net.wire.WireCodec`), so nothing but
  serialized messages ever reaches S2 — the strongest in-process stand-in
  for a socket link.

The real socket link lives in :mod:`repro.net.socket_transport`: a
:class:`~repro.net.socket_transport.SocketTransport` speaks the same
codec over TCP or Unix-domain sockets to the standalone S2 daemon
(:mod:`repro.server.s2_service`).
"""

from __future__ import annotations

import queue
import threading
import time
from abc import ABC, abstractmethod

from repro.exceptions import ProtocolError
from repro.net.wire import WireCodec


class Transport(ABC):
    """One side of the S1 <-> S2 link, message-batch oriented."""

    @abstractmethod
    def exchange(self, messages: list) -> list:
        """Deliver ``messages`` in one round-trip; return their replies."""

    # -- split-phase exchange --------------------------------------------
    #
    # The scan rendezvous (repro.server.rendezvous) coalesces the rounds
    # of several concurrent jobs: it must put *all* members' requests in
    # flight before collecting *any* reply, so the group shares one
    # physical round-trip window instead of serializing N of them.  The
    # two phases compose exactly into one exchange:
    #
    #     state = t.begin_exchange(messages)   # request on the wire
    #     replies = t.finish_exchange(state)   # reply collected
    #
    # The base implementation degrades to a plain exchange (send and
    # wait in finish), which is correct — just unshared — for transports
    # that cannot pipeline.  A begin that raises must leave the
    # transport reusable; after a successful begin, finish MUST be
    # called exactly once (it releases whatever begin acquired).

    def begin_exchange(self, messages: list):
        """Start one round-trip; returns opaque state for ``finish``."""
        return messages

    def finish_exchange(self, state) -> list:
        """Collect the replies of a :meth:`begin_exchange`."""
        return self.exchange(state)

    def close(self) -> None:
        """Release transport resources (idempotent).

        Implementations must tolerate a dead peer: closing a link whose
        other side already vanished reports nothing — the client API's
        idempotent teardown depends on close never masking the error
        that killed the link."""


class LatencyTransport(Transport):
    """Wrap a transport with a simulated per-round-trip link latency.

    The two clouds live at different providers in the paper's deployment
    model; sleeping one RTT per :meth:`exchange` turns the in-process
    simulation into a WAN-shaped one, which is what makes concurrent
    sessions (thread- or process-pooled) overlap genuinely measurable
    wall-clock latency in the benchmarks.  The sleep releases the GIL,
    so concurrency hides it exactly like a real network wait.
    """

    def __init__(self, inner: Transport, rtt_ms: float):
        if rtt_ms < 0:
            raise ProtocolError("link RTT cannot be negative")
        self.inner = inner
        self.rtt_ms = rtt_ms

    def exchange(self, messages: list) -> list:
        replies = self.inner.exchange(messages)
        time.sleep(self.rtt_ms / 1000.0)
        return replies

    def begin_exchange(self, messages: list):
        # Split-phase rounds belong to a rendezvous group that sleeps
        # ONE max-rtt for the whole group (that is the point of sharing
        # the round-trip) — so neither phase sleeps here.
        return self.inner.begin_exchange(messages)

    def finish_exchange(self, state) -> list:
        return self.inner.finish_exchange(state)

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name):
        # Transparent wrapper: backend-specific surface (``closed``,
        # ``session_id``, ...) stays reachable through the latency shim.
        return getattr(self.inner, name)


class InProcessTransport(Transport):
    """Directly dispatch messages to an in-process S2."""

    def __init__(self, dispatcher):
        self.dispatcher = dispatcher

    def exchange(self, messages: list) -> list:
        return [self.dispatcher.dispatch(msg) for msg in messages]


class _RemoteError:
    """Marker shuttling an S2-side exception back over the reply queue."""

    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text


class ThreadedTransport(Transport):
    """A queue-pair link to an S2 service thread with real serialization.

    The S1 side encodes each request batch to bytes, the service thread
    decodes, dispatches in order, and encodes the replies back.  Each
    endpoint owns its own :class:`WireCodec`; the registries stay in sync
    because both process the identical byte stream in the same order.
    """

    def __init__(self, dispatcher):
        self.dispatcher = dispatcher
        self._requests: queue.Queue = queue.Queue()
        self._replies: queue.Queue = queue.Queue()
        self._s1_codec = WireCodec()
        self._s2_codec = WireCodec()
        self._closed = False
        # _state_lock makes the closed-check + request-put atomic against
        # close()'s closed-set + sentinel-put, so the shutdown sentinel
        # always queues *behind* any admitted request — close() never
        # waits on an in-flight round and no round can be orphaned.
        # _exchange_lock serializes whole exchanges (request/reply pairing).
        self._state_lock = threading.Lock()
        self._exchange_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._serve, name="s2-transport", daemon=True
        )
        self._worker.start()

    # -- S2 service thread ----------------------------------------------

    def _serve(self) -> None:
        while True:
            data = self._requests.get()
            if data is None:
                return
            try:
                messages = self._s2_codec.decode_envelope(data)
                replies = [self.dispatcher.dispatch(msg) for msg in messages]
                self._replies.put(self._s2_codec.encode_replies(replies))
            except Exception as exc:  # propagate to the S1 side
                self._replies.put(_RemoteError(type(exc).__name__, str(exc)))

    # -- S1 side ---------------------------------------------------------

    def exchange(self, messages: list) -> list:
        return self.finish_exchange(self.begin_exchange(messages))

    def begin_exchange(self, messages: list):
        """Put one request batch on the wire (service thread starts on
        it immediately); the exchange lock is held until the matching
        :meth:`finish_exchange` collects the reply."""
        self._exchange_lock.acquire()
        try:
            data = self._s1_codec.encode_envelope(messages)
            with self._state_lock:
                if self._closed:
                    raise ProtocolError("transport is closed")
                self._requests.put(data)
        except BaseException:
            self._exchange_lock.release()
            raise
        return None  # the queue pair itself pairs request and reply

    def finish_exchange(self, state) -> list:
        try:
            reply = self._replies.get()
        finally:
            self._exchange_lock.release()
        if isinstance(reply, _RemoteError):
            raise ProtocolError(f"S2 dispatch failed ({reply.kind}): {reply.text}")
        return self._s1_codec.decode_replies(reply)

    def close(self) -> None:
        """Retire the S2 service thread deterministically.

        The shutdown sentinel queues behind any admitted request, the
        worker finishes that round and exits, and the unbounded join
        guarantees that when ``close`` returns no service thread
        survives — tests can assert a clean slate between cases instead
        of racing a timed-out join.  An in-flight ``exchange`` on
        another thread still receives its reply (the queues are never
        drained out from under it); the worker leaves both queues empty
        on every normal path.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            self._requests.put(None)
        self._worker.join()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has retired the service thread."""
        return self._closed


def make_transport(kind: str, dispatcher, rtt_ms: float = 0.0) -> Transport:
    """Build a *local* transport backend by name (``"inprocess"`` or
    ``"threaded"``).

    Remote S2 addresses (``tcp://`` / ``unix://``) are wired by
    :func:`repro.protocols.base.wire_clouds`, which owns the key
    material a remote session needs — they cannot be built from a
    dispatcher.  ``rtt_ms > 0`` wraps the backend in a
    :class:`LatencyTransport` that sleeps one simulated round-trip per
    exchange.
    """
    if kind == "inprocess":
        transport: Transport = InProcessTransport(dispatcher)
    elif kind == "threaded":
        transport = ThreadedTransport(dispatcher)
    else:
        hint = (
            " (remote S2 addresses are wired through wire_clouds / "
            "make_clouds, not make_transport)"
            if isinstance(kind, str) and kind.startswith(("tcp://", "unix://"))
            else ""
        )
        raise ProtocolError(f"unknown transport kind: {kind!r}{hint}")
    if rtt_ms > 0:
        transport = LatencyTransport(transport, rtt_ms)
    return transport

"""Binary wire encoding for everything that crosses the S1 <-> S2 link.

The transport layer serializes typed protocol messages into self-
describing byte streams: ciphertexts use the same fixed-width big-endian
encoding that ``serialized_size`` accounts for, and container/metadata
values use a small tag + varint framing.  The codec is *stateful*: key
material (Paillier public keys, Damgård–Jurik instances) is registered
on first appearance in the stream and referenced by index afterwards, so
both endpoints rebuild identical registries simply by processing the same
bytes in the same order — no out-of-band key exchange is needed.

Note on accounting: the paper's bandwidth numbers (Table 3, Fig. 13)
count ciphertext payload bytes, so the channel statistics keep using
``measure_size`` over the payload objects; the framing overhead this
codec adds (tags, varints, key registrations) is transport detail and is
deliberately excluded from those statistics.
"""

from __future__ import annotations

from repro.crypto.damgard_jurik import DamgardJurik, LayeredCiphertext
from repro.crypto.paillier import Ciphertext, PaillierPublicKey
from repro.exceptions import ProtocolError
from repro.structures.ehl import Ehl
from repro.structures.ehl_plus import EhlPlus
from repro.structures.items import EncryptedItem, JoinedTuple, ScoredItem

# Value tags.
_NONE = 0
_FALSE = 1
_TRUE = 2
_INT = 3
_BYTES = 4
_STR = 5
_LIST = 6
_TUPLE = 7
_CT = 8          # Ciphertext under an already-registered key
_CT_NEWKEY = 9   # Ciphertext introducing a new key
_LC = 10         # LayeredCiphertext under an already-registered scheme
_LC_NEWSCHEME = 11
_EHL = 12
_SCORED = 13
_JOINED = 14
_PK = 15         # bare PaillierPublicKey reference
_PK_NEW = 16
_ENCITEM = 17

_EHL_CLASSES = (Ehl, EhlPlus)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_signed(out: bytearray, value: int) -> None:
    # ZigZag so small negative ints stay small on the wire.
    _write_varint(out, ((-value) << 1) - 1 if value < 0 else value << 1)


def _zigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise ProtocolError("truncated wire message")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def varint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self.take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def signed(self) -> int:
        return _zigzag(self.varint())


class WireCodec:
    """Stateful encoder/decoder for protocol messages and replies.

    One codec instance serves one endpoint of one transport; its key
    registry grows as the stream introduces new key material.  Both
    endpoints stay in sync because registration order is fully determined
    by the byte stream itself.
    """

    def __init__(self):
        self._keys: list[PaillierPublicKey] = []
        self._key_index: dict[int, int] = {}       # n -> index
        self._schemes: list[DamgardJurik] = []
        self._scheme_index: dict[tuple[int, int], int] = {}  # (n, s) -> index

    # -- key registries --------------------------------------------------

    def _register_key(self, pk: PaillierPublicKey) -> int:
        idx = self._key_index.get(pk.n)
        if idx is None:
            idx = len(self._keys)
            self._keys.append(pk)
            self._key_index[pk.n] = idx
        return idx

    def _register_scheme(self, dj: DamgardJurik) -> int:
        key = (dj.n, dj.s)
        idx = self._scheme_index.get(key)
        if idx is None:
            idx = len(self._schemes)
            self._schemes.append(dj)
            self._scheme_index[key] = idx
        return idx

    # -- value encoding --------------------------------------------------

    def encode_value(self, value, out: bytearray) -> None:
        """Append the tagged encoding of ``value`` to ``out``."""
        if value is None:
            out.append(_NONE)
        elif value is True:
            out.append(_TRUE)
        elif value is False:
            out.append(_FALSE)
        elif isinstance(value, int):
            out.append(_INT)
            _write_signed(out, value)
        elif isinstance(value, bytes):
            out.append(_BYTES)
            _write_varint(out, len(value))
            out.extend(value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_STR)
            _write_varint(out, len(raw))
            out.extend(raw)
        elif isinstance(value, list):
            out.append(_LIST)
            _write_varint(out, len(value))
            for entry in value:
                self.encode_value(entry, out)
        elif isinstance(value, tuple):
            out.append(_TUPLE)
            _write_varint(out, len(value))
            for entry in value:
                self.encode_value(entry, out)
        elif isinstance(value, Ciphertext):
            self._encode_ciphertext(value, out)
        elif isinstance(value, LayeredCiphertext):
            self._encode_layered(value, out)
        elif isinstance(value, _EHL_CLASSES):
            out.append(_EHL)
            out.append(_EHL_CLASSES.index(type(value)))
            _write_varint(out, len(value.cells))
            for cell in value.cells:
                self._encode_ciphertext(cell, out)
        elif isinstance(value, ScoredItem):
            out.append(_SCORED)
            self.encode_value(value.ehl, out)
            self.encode_value(value.worst, out)
            self.encode_value(value.best, out)
            self.encode_value(value.list_scores, out)
            self.encode_value(value.seen_bits, out)
            self.encode_value(value.record, out)
            _write_signed(out, value.uid)
        elif isinstance(value, EncryptedItem):
            out.append(_ENCITEM)
            self.encode_value(value.ehl, out)
            self.encode_value(value.score, out)
            self.encode_value(value.record, out)
        elif isinstance(value, JoinedTuple):
            out.append(_JOINED)
            self.encode_value(value.score, out)
            self.encode_value(value.attributes, out)
        elif isinstance(value, PaillierPublicKey):
            idx = self._key_index.get(value.n)
            if idx is None:
                self._register_key(value)
                raw = value.n.to_bytes((value.n.bit_length() + 7) // 8, "big")
                out.append(_PK_NEW)
                _write_varint(out, len(raw))
                out.extend(raw)
            else:
                out.append(_PK)
                _write_varint(out, idx)
        else:
            raise ProtocolError(f"cannot serialize {type(value).__name__} on the wire")

    def _encode_ciphertext(self, ct: Ciphertext, out: bytearray) -> None:
        pk = ct.public_key
        idx = self._key_index.get(pk.n)
        if idx is None:
            self._register_key(pk)
            raw = pk.n.to_bytes((pk.n.bit_length() + 7) // 8, "big")
            out.append(_CT_NEWKEY)
            _write_varint(out, len(raw))
            out.extend(raw)
        else:
            out.append(_CT)
            _write_varint(out, idx)
        out.extend(ct.value.to_bytes(pk.ciphertext_bytes, "big"))

    def _encode_layered(self, lc: LayeredCiphertext, out: bytearray) -> None:
        scheme = lc.scheme
        idx = self._scheme_index.get((scheme.n, scheme.s))
        if idx is None:
            # Register the underlying key too, mirroring _decode_layered —
            # the registries on both endpoints must grow identically.
            self._register_key(scheme.public_key)
            self._register_scheme(scheme)
            raw = scheme.n.to_bytes((scheme.n.bit_length() + 7) // 8, "big")
            out.append(_LC_NEWSCHEME)
            _write_varint(out, len(raw))
            out.extend(raw)
            _write_varint(out, scheme.s)
        else:
            out.append(_LC)
            _write_varint(out, idx)
        out.extend(lc.value.to_bytes(scheme.ciphertext_bytes, "big"))

    # -- value decoding --------------------------------------------------

    def decode_value(self, reader: _Reader):
        """Decode one tagged value from ``reader``."""
        tag = reader.take(1)[0]
        if tag == _NONE:
            return None
        if tag == _TRUE:
            return True
        if tag == _FALSE:
            return False
        if tag == _INT:
            return reader.signed()
        if tag == _BYTES:
            return bytes(reader.take(reader.varint()))
        if tag == _STR:
            return reader.take(reader.varint()).decode("utf-8")
        if tag == _LIST:
            return [self.decode_value(reader) for _ in range(reader.varint())]
        if tag == _TUPLE:
            return tuple(self.decode_value(reader) for _ in range(reader.varint()))
        if tag in (_CT, _CT_NEWKEY):
            return self._decode_ciphertext(tag, reader)
        if tag in (_LC, _LC_NEWSCHEME):
            return self._decode_layered(tag, reader)
        if tag == _EHL:
            cls = _EHL_CLASSES[reader.take(1)[0]]
            count = reader.varint()
            cells = []
            for _ in range(count):
                inner_tag = reader.take(1)[0]
                cells.append(self._decode_ciphertext(inner_tag, reader))
            return cls(cells)
        if tag == _SCORED:
            ehl = self.decode_value(reader)
            worst = self.decode_value(reader)
            best = self.decode_value(reader)
            list_scores = self.decode_value(reader)
            seen_bits = self.decode_value(reader)
            record = self.decode_value(reader)
            uid = reader.signed()
            return ScoredItem(
                ehl=ehl,
                worst=worst,
                best=best,
                list_scores=list_scores,
                seen_bits=seen_bits,
                record=record,
                uid=uid,
            )
        if tag == _ENCITEM:
            return EncryptedItem(
                ehl=self.decode_value(reader),
                score=self.decode_value(reader),
                record=self.decode_value(reader),
            )
        if tag == _JOINED:
            return JoinedTuple(
                score=self.decode_value(reader),
                attributes=self.decode_value(reader),
            )
        if tag == _PK:
            return self._keys[reader.varint()]
        if tag == _PK_NEW:
            pk = PaillierPublicKey(int.from_bytes(reader.take(reader.varint()), "big"))
            self._register_key(pk)
            return pk
        raise ProtocolError(f"unknown wire tag {tag}")

    def _decode_ciphertext(self, tag: int, reader: _Reader) -> Ciphertext:
        if tag == _CT_NEWKEY:
            n = int.from_bytes(reader.take(reader.varint()), "big")
            pk = PaillierPublicKey(n)
            self._register_key(pk)
        elif tag == _CT:
            pk = self._keys[reader.varint()]
        else:
            raise ProtocolError("expected a ciphertext tag")
        return Ciphertext(int.from_bytes(reader.take(pk.ciphertext_bytes), "big"), pk)

    def _decode_layered(self, tag: int, reader: _Reader) -> LayeredCiphertext:
        if tag == _LC_NEWSCHEME:
            n = int.from_bytes(reader.take(reader.varint()), "big")
            s = reader.varint()
            pk = self._keys[self._register_key(PaillierPublicKey(n))]
            scheme = DamgardJurik(pk, s=s)
            self._register_scheme(scheme)
        else:
            scheme = self._schemes[reader.varint()]
        return LayeredCiphertext(
            int.from_bytes(reader.take(scheme.ciphertext_bytes), "big"), scheme
        )

    # -- message envelopes ----------------------------------------------

    def encode_envelope(self, messages: list) -> bytes:
        """Serialize a batch of request messages (one coalesced round)."""
        from repro.net.messages import message_fields, message_type_id

        out = bytearray()
        _write_varint(out, len(messages))
        for msg in messages:
            _write_varint(out, message_type_id(type(msg)))
            for name in message_fields(type(msg)):
                self.encode_value(getattr(msg, name), out)
        return bytes(out)

    def decode_envelope(self, data: bytes) -> list:
        """Inverse of :meth:`encode_envelope`."""
        from repro.net.messages import message_class, message_fields

        reader = _Reader(data)
        messages = []
        for _ in range(reader.varint()):
            cls = message_class(reader.varint())
            values = [self.decode_value(reader) for _ in message_fields(cls)]
            messages.append(cls(*values))
        return messages

    def encode_replies(self, replies: list) -> bytes:
        """Serialize the per-message responses of one coalesced round."""
        out = bytearray()
        _write_varint(out, len(replies))
        for reply in replies:
            self.encode_value(reply, out)
        return bytes(out)

    def decode_replies(self, data: bytes) -> list:
        """Inverse of :meth:`encode_replies`."""
        reader = _Reader(data)
        return [self.decode_value(reader) for _ in range(reader.varint())]

"""The S2-side message dispatcher.

This is the *only* place where protocol messages meet the
:class:`~repro.protocols.base.CryptoCloud`: the dispatcher maps each
typed request from :mod:`repro.net.messages` onto the crypto cloud's
primitive operations or onto the bulk S2-side protocol functions that
live next to their S1 counterparts in :mod:`repro.protocols`.

Every decrypt handler services its message through the cloud's *batch*
primitives (backed by :mod:`repro.crypto.backend` and, when the cloud
carries a :class:`~repro.crypto.parallel.ComputePool`, chunked across
worker processes) rather than per-item loops — a coalesced round's
worth of decryptions is one batch here.

S1-side protocol code never references the crypto cloud directly — it
only ever submits messages through a transport that ends here.
"""

from __future__ import annotations

from repro.exceptions import ProtocolError
from repro.net import messages as m


class S2Dispatcher:
    """Service loop body for one crypto cloud."""

    def __init__(self, cloud):
        self.cloud = cloud

    def dispatch(self, msg):
        """Service one request message and return its reply."""
        handler = self._HANDLERS.get(type(msg))
        if handler is None:
            raise ProtocolError(f"S2 cannot service {type(msg).__name__}")
        return handler(self, msg)

    # -- primitive crypto-cloud operations -------------------------------

    def _test_zero_batch(self, msg: m.ZeroTestBatch):
        return self.cloud.test_zero_batch(msg.cts, msg.protocol)

    def _strip_layer_batch(self, msg: m.StripLayerBatch):
        return self.cloud.strip_layer_batch(msg.cts, msg.protocol)

    def _blinded_sign(self, msg: m.BlindedSign):
        return self.cloud.blinded_sign(msg.ct, msg.protocol)

    def _decrypt_masked_bit(self, msg: m.DecryptMaskedBit):
        return self.cloud.decrypt_masked_bit(msg.ct, msg.protocol)

    def _dgk_decompose(self, msg: m.DgkDecompose):
        return self.cloud.dgk_decompose(msg.ct, msg.ell, msg.protocol)

    def _dgk_any_zero(self, msg: m.DgkAnyZero):
        return self.cloud.dgk_any_zero(msg.cts, msg.protocol)

    def _square_blinded(self, msg: m.SquareBlinded):
        value = self.cloud.decrypt_for_protocol(msg.ct, msg.protocol, "dgk_blinded")
        n = self.cloud.public_key.n
        return self.cloud.fresh_encrypt(value * value % n)

    def _record_shipment(self, msg: m.RecordShipment):
        return None

    def _naive_topk(self, msg: m.NaiveTopKQuery):
        return self.cloud.naive_topk(msg.scores, msg.records, msg.k, msg.protocol)

    def _aggregate_by_record(self, msg: m.AggregateByRecord):
        return self.cloud.aggregate_by_record(msg.scores, msg.records, msg.protocol)

    # -- bulk S2 protocol sides (imported lazily: the protocol modules
    #    import the transport machinery themselves) ----------------------

    def _sort_affine(self, msg: m.SortAffine):
        from repro.protocols.enc_sort import s2_sort_affine

        return s2_sort_affine(
            self.cloud,
            msg.own_public,
            msg.keys,
            msg.items,
            msg.companions,
            msg.descending,
            msg.protocol,
        )

    def _sort_gates(self, msg: m.SortGateBatch):
        from repro.protocols.enc_sort import s2_gates

        # One batched decrypt for the whole gate layer (replacing the
        # per-gate loop), so a compute pool can fan the layer out.
        return s2_gates(
            self.cloud, msg.own_public, msg.gates, msg.descending, msg.protocol
        )

    def _dedup(self, msg: m.DedupBatch):
        from repro.protocols.sec_dedup import s2_dedup

        return s2_dedup(
            self.cloud,
            msg.own_public,
            msg.matrix,
            msg.items,
            msg.companions,
            msg.ranks,
            sentinel=msg.sentinel,
            eliminate=msg.eliminate,
            protocol=msg.protocol,
        )

    def _filter(self, msg: m.FilterBatch):
        from repro.protocols.sec_filter import s2_filter

        return s2_filter(
            self.cloud, msg.own_public, msg.tuples, msg.material, msg.protocol
        )

    _HANDLERS = {
        m.ZeroTestBatch: _test_zero_batch,
        m.StripLayerBatch: _strip_layer_batch,
        m.BlindedSign: _blinded_sign,
        m.DecryptMaskedBit: _decrypt_masked_bit,
        m.DgkDecompose: _dgk_decompose,
        m.DgkAnyZero: _dgk_any_zero,
        m.SquareBlinded: _square_blinded,
        m.RecordShipment: _record_shipment,
        m.SortAffine: _sort_affine,
        m.SortGateBatch: _sort_gates,
        m.DedupBatch: _dedup,
        m.FilterBatch: _filter,
        m.NaiveTopKQuery: _naive_topk,
        m.AggregateByRecord: _aggregate_by_record,
    }

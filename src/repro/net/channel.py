"""Byte- and round-accounting channel between the two clouds.

Every sub-protocol sends its messages through a :class:`Channel`; the
channel measures the serialized size of whatever crosses it and attributes
the traffic to the protocol named in the current :meth:`Channel.round`
context.  Nothing is actually copied — accounting is the only effect —
which keeps the in-process simulation fast while making the Table 3 /
Figure 13 numbers exact.
"""

from __future__ import annotations

import contextlib
from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

# Process-wide traffic instruments (see ARCHITECTURE.md, observability
# layer).  Children resolved once at import so the per-message cost is
# one lock + add; recording is observation only — the ChannelStats the
# transcripts are pinned on never route through these.
_ROUNDS = REGISTRY.counter(
    "repro_channel_rounds_total", "Physical S1<->S2 round-trips."
)
_BYTES = REGISTRY.counter(
    "repro_channel_bytes_total",
    "Protocol payload bytes crossing the inter-cloud link.",
    labelnames=("direction",),
)
_BYTES_S1_TO_S2 = _BYTES.labels(direction="s1_to_s2")
_BYTES_S2_TO_S1 = _BYTES.labels(direction="s2_to_s1")


def measure_size(obj) -> int:
    """Serialized byte size of a protocol message component.

    Supports the types that ever cross the inter-cloud boundary:
    ciphertexts (Paillier and Damgård–Jurik), EHL/EHL+ structures,
    encrypted items, integers, bits/bools, bytes, and (possibly nested)
    lists/tuples of those.
    """
    if obj is None:
        return 0
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return max(1, (obj.bit_length() + 7) // 8)
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(measure_size(x) for x in obj)
    if hasattr(obj, "serialized_size"):
        return obj.serialized_size()
    raise TypeError(f"cannot measure wire size of {type(obj).__name__}")


@dataclass
class ChannelStats:
    """Cumulative traffic statistics for one channel."""

    bytes_s1_to_s2: int = 0
    bytes_s2_to_s1: int = 0
    rounds: int = 0
    per_protocol_bytes: dict = field(default_factory=lambda: defaultdict(int))
    per_protocol_rounds: dict = field(default_factory=lambda: defaultdict(int))

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_s1_to_s2 + self.bytes_s2_to_s1

    def snapshot(self) -> "ChannelStats":
        """A frozen copy (for before/after deltas)."""
        copy = ChannelStats(
            bytes_s1_to_s2=self.bytes_s1_to_s2,
            bytes_s2_to_s1=self.bytes_s2_to_s1,
            rounds=self.rounds,
        )
        copy.per_protocol_bytes = defaultdict(int, self.per_protocol_bytes)
        copy.per_protocol_rounds = defaultdict(int, self.per_protocol_rounds)
        return copy

    def delta(self, earlier: "ChannelStats") -> "ChannelStats":
        """Traffic since ``earlier`` (an earlier :meth:`snapshot`)."""
        diff = ChannelStats(
            bytes_s1_to_s2=self.bytes_s1_to_s2 - earlier.bytes_s1_to_s2,
            bytes_s2_to_s1=self.bytes_s2_to_s1 - earlier.bytes_s2_to_s1,
            rounds=self.rounds - earlier.rounds,
        )
        for key, value in self.per_protocol_bytes.items():
            previous = earlier.per_protocol_bytes.get(key, 0)
            if value != previous:
                diff.per_protocol_bytes[key] = value - previous
        for key, value in self.per_protocol_rounds.items():
            previous = earlier.per_protocol_rounds.get(key, 0)
            if value != previous:
                diff.per_protocol_rounds[key] = value - previous
        return diff


@dataclass(frozen=True)
class LinkModel:
    """A simple latency model for the inter-cloud link.

    The paper assumes "a standard 50 Mbps LAN setting" between the two
    clouds when converting bandwidth into latency (Table 3), and notes
    that round-trip time is negligible next to computation; both knobs
    are configurable here.
    """

    bandwidth_mbps: float = 50.0
    rtt_ms: float = 0.0

    def latency_seconds(self, stats: ChannelStats) -> float:
        """Modeled wall-clock time the measured traffic would take."""
        transfer = stats.total_bytes * 8 / (self.bandwidth_mbps * 1_000_000)
        return transfer + stats.rounds * self.rtt_ms / 1000.0


class Channel:
    """The S1 <-> S2 message channel with automatic accounting.

    The transport machinery (:class:`repro.net.batching.RoundBatcher`)
    accounts every message exchange here::

        with channel.coalesced_round([msg.protocol for msg in batch]):
            for msg in batch:
                with channel.protocol(msg.protocol):
                    channel.send(msg.request_payload())   # S1 -> S2
            ...
            channel.receive(reply)                        # S2 -> S1

    The :meth:`round` context (one protocol, one round) remains for
    direct use in tests and ad-hoc accounting.
    """

    def __init__(self):
        self.stats = ChannelStats()
        self._current_protocol: list[str] = []

    # -- round bookkeeping ---------------------------------------------

    @contextlib.contextmanager
    def round(self, protocol: str):
        """One communication round attributed to ``protocol``."""
        self._current_protocol.append(protocol)
        self.stats.rounds += 1
        self.stats.per_protocol_rounds[protocol] += 1
        _ROUNDS.inc()
        try:
            yield self
        finally:
            self._current_protocol.pop()

    @contextlib.contextmanager
    def coalesced_round(self, protocols: list[str]):
        """One round-trip carrying requests of several protocols.

        The global round counter increments once (it measures physical
        round-trips); each *distinct* participating protocol's round
        counter increments once (it measures how many rounds that
        protocol rode in).  With a single-protocol batch this is exactly
        :meth:`round`.
        """
        self.stats.rounds += 1
        for name in dict.fromkeys(protocols):
            self.stats.per_protocol_rounds[name] += 1
        _ROUNDS.inc()
        yield self

    @contextlib.contextmanager
    def protocol(self, protocol: str):
        """Attribute traffic to ``protocol`` without counting a round.

        Used by composite protocols whose inner sub-protocols count their
        own rounds.
        """
        self._current_protocol.append(protocol)
        try:
            yield self
        finally:
            self._current_protocol.pop()

    def _attribute(self, nbytes: int) -> None:
        label = self._current_protocol[-1] if self._current_protocol else "?"
        self.stats.per_protocol_bytes[label] += nbytes

    # -- transfers ------------------------------------------------------

    def send(self, *objects):
        """Record an S1 -> S2 transfer; returns the payload unchanged."""
        nbytes = measure_size(list(objects))
        self.stats.bytes_s1_to_s2 += nbytes
        self._attribute(nbytes)
        _BYTES_S1_TO_S2.inc(nbytes)
        return objects[0] if len(objects) == 1 else objects

    def receive(self, *objects):
        """Record an S2 -> S1 transfer; returns the payload unchanged."""
        nbytes = measure_size(list(objects))
        self.stats.bytes_s2_to_s1 += nbytes
        self._attribute(nbytes)
        _BYTES_S2_TO_S1.inc(nbytes)
        return objects[0] if len(objects) == 1 else objects

    # -- reporting ------------------------------------------------------

    def snapshot(self) -> ChannelStats:
        """Frozen copy of the running statistics."""
        return self.stats.snapshot()

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = ChannelStats()

"""Round coalescing: many independent S2 requests, one round-trip.

The paper counts communication *rounds* per depth (Table 3, Fig. 13);
the seed implementation issued one round per sub-protocol call, so a
depth with ``m`` lists cost ``O(m)`` round-trips.  This module lets
callers express a protocol as a *flow* — a generator that ``yield``\\ s
request messages and receives their replies — and runs many flows in
lock-step: at each stage, every pending request across all flows is
flushed to S2 as ONE coalesced round-trip.

A protocol written once as a flow serves both styles:

* synchronous — ``run_flows([flow])`` drives it alone, one round per
  yield (exactly the seed's round structure), and
* coalesced — the engines pass all of a depth's independent flows
  together, collapsing ``O(m)`` equality/recover rounds into ``O(1)``.

Accounting: a coalesced flush increments the global round counter once
and credits each *distinct* participating protocol's round counter, so
``sum(per_protocol_rounds)`` can exceed ``rounds`` in coalesced runs —
the per-protocol view answers "how many rounds did this protocol ride
in", the global counter "how many round-trips crossed the link".
"""

from __future__ import annotations

from repro.exceptions import ShardFanInError
from repro.net.channel import Channel
from repro.net.transport import Transport


def single_message_flow(msg):
    """A flow that performs exactly one request/reply exchange."""
    reply = yield msg
    return reply


def fan_in_batches(
    per_shard_batches: list,
    lo: int | None = None,
    hi: int | None = None,
    shard_ids: list | None = None,
) -> list:
    """Fan-in stage of the sharded scan: merge per-shard depth batches.

    Each shard worker contributes a batch of ``(depth, payload)`` pairs
    for the depths of one check window that fall inside its slice; this
    stage merges them into a single depth-ordered batch — the stream the
    engine consumes — *before* the window's rounds are built, so the
    messages that reach the round batcher are exactly the ones an
    unsharded scan would send.  This is the single convergence point of
    every placement: local thread workers and remote shard daemons both
    land here, so one validation pins the invariant for all of them.

    Validates that the shards' contributions tile the window: a
    duplicated or missing depth means the shard plan and the workers
    disagree, and silently proceeding would desynchronize the transcript
    from the unsharded run.  Pass the window bounds ``[lo, hi)`` to
    catch depths missing at the window *edges* too — without them only
    interior gaps are detectable.  Pass ``shard_ids`` (one id per batch,
    in batch order) and the raised :class:`ShardFanInError` names the
    shard whose contribution broke the tiling.
    """
    if shard_ids is None:
        shard_ids = [None] * len(per_shard_batches)
    owner = {}
    merged = []
    for batch, shard_id in zip(per_shard_batches, shard_ids):
        for pair in batch:
            depth = pair[0]
            if depth in owner:
                raise ShardFanInError(
                    "shard fan-in: overlapping depth batches at depth "
                    f"{depth}",
                    shard_id=shard_id,
                    window=(lo, hi) if lo is not None and hi is not None else None,
                )
            owner[depth] = shard_id
            merged.append(pair)
    merged.sort(key=lambda pair: pair[0])
    depths = [depth for depth, _ in merged]
    if lo is not None and hi is not None:
        if depths != list(range(lo, hi)):
            missing = sorted(set(range(lo, hi)) - set(depths))
            stray = sorted(set(depths) - set(range(lo, hi)))
            detail = f"shard fan-in: batches do not tile the window [{lo}, {hi})"
            culprit = None
            if stray:
                detail += f"; stray depths {stray}"
                culprit = owner.get(stray[0])
            if missing:
                detail += f"; missing depths {missing}"
            raise ShardFanInError(detail, shard_id=culprit, window=(lo, hi))
    elif depths and depths != list(range(depths[0], depths[0] + len(depths))):
        gap_after = next(
            d for d, nxt in zip(depths, depths[1:]) if nxt != d + 1
        )
        raise ShardFanInError(
            f"shard fan-in: depth batches leave a gap after depth {gap_after}",
            shard_id=owner.get(gap_after),
        )
    return merged


class RoundBatcher:
    """Drives protocol flows over a transport with channel accounting.

    ``before_round`` / ``after_round`` are the job-control hooks of the
    client API: the first runs ahead of every flush (cooperative
    cancellation and per-job deadlines trigger here — *the* round
    boundary), the second after the replies land (progress streaming).
    Both are observations only; they never touch the message stream.

    ``before_round`` exceptions are the abort mechanism (job control
    raises :class:`~repro.exceptions.JobCancelled` / ``JobTimeout``
    there on purpose), so they propagate.  ``after_round`` only streams
    progress: an exception out of it — a broken user listener — must
    never corrupt a query mid-round, so it is swallowed and recorded in
    :attr:`hook_errors` instead.
    """

    def __init__(
        self,
        channel: Channel,
        transport: Transport,
        before_round=None,
        after_round=None,
    ):
        self.channel = channel
        self.transport = transport
        self._before_round = before_round
        self._after_round = after_round
        #: Exceptions raised by observation-only hooks, in occurrence
        #: order (first :data:`MAX_RECORDED_HOOK_ERRORS` retained — a
        #: persistently broken hook fails every round, and keeping every
        #: traceback alive would grow with the scan); the round loop
        #: keeps going either way.
        self.hook_errors: list[BaseException] = []

    #: Retention cap for :attr:`hook_errors`.
    MAX_RECORDED_HOOK_ERRORS = 32

    def record_hook_error(self, exc: BaseException) -> None:
        """Keep a swallowed observation-hook exception (bounded)."""
        if len(self.hook_errors) < self.MAX_RECORDED_HOOK_ERRORS:
            self.hook_errors.append(exc)

    # -- public API ------------------------------------------------------

    def call(self, msg):
        """One message, one round-trip; returns the reply."""
        return self._flush([msg])[0]

    def run_flows(self, flows: list) -> list:
        """Run flows in lock-step; returns their results in order.

        Each iteration advances every unfinished flow by one yield,
        collects the yielded messages, and flushes them as a single
        coalesced round.  Flows of different lengths are fine — finished
        flows simply stop participating.  A flow may ``yield None`` to
        *wait out* one stage without sending anything — used by flows
        whose inputs are produced by other flows' earlier stages (the
        eager engine's bound refresh waits out the equality stage so its
        recover batch rides the absorption's recover round).  Flows are
        always advanced in list order, so a flow may rely on earlier
        flows having completed the same stage (the eager engine's
        absorption uses this).
        """
        results = [None] * len(flows)
        replies = [None] * len(flows)
        active = list(range(len(flows)))
        while active:
            stage: list[tuple[int, object]] = []
            still_active: list[int] = []
            for i in active:
                try:
                    msg = flows[i].send(replies[i])
                except StopIteration as stop:
                    results[i] = stop.value
                    continue
                still_active.append(i)
                if msg is None:  # wait marker: skip this round
                    replies[i] = None
                    continue
                stage.append((i, msg))
            if stage:
                flushed = self._flush([msg for _, msg in stage])
                for (i, _), reply in zip(stage, flushed):
                    replies[i] = reply
            active = still_active
        return results

    # -- one coalesced round ---------------------------------------------

    def _flush(self, messages: list) -> list:
        """Ship ``messages`` in one round-trip, with byte/round accounting.

        ``transport.exchange`` is the cross-job coalescing seam: when a
        server runs with ``coalesce_ms > 0``, the transport here is a
        :class:`~repro.server.rendezvous.CoalescingTransport` and this
        round may share its physical round-trip with concurrent jobs on
        the same relation.  The ``before_round`` checkpoint (deadline /
        cancellation) fires *before* that rendezvous, so a cancelled job
        stops at the boundary instead of joining a doomed round.
        """
        if self._before_round is not None:
            self._before_round()
        channel = self.channel
        with channel.coalesced_round([msg.protocol for msg in messages]):
            for msg in messages:
                with channel.protocol(msg.protocol):
                    channel.send(msg.request_payload())
            replies = self.transport.exchange(messages)
            for msg, reply in zip(messages, replies):
                with channel.protocol(msg.protocol):
                    channel.receive(reply)
        if self._after_round is not None:
            try:
                self._after_round()
            except Exception as exc:  # observation hook: never abort the round loop
                self.record_hook_error(exc)
        return replies

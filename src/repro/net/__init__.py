"""Inter-cloud communication accounting.

The two clouds S1 and S2 run in-process in this reproduction, but every
value that crosses the S1/S2 boundary is routed through
:class:`repro.net.channel.Channel`, which records

* bytes transferred in each direction,
* the number of communication rounds, and
* a per-protocol breakdown,

so the bandwidth/latency results of Table 3 and Figure 13 can be
regenerated exactly, and a configurable :class:`repro.net.channel.LinkModel`
turns byte counts into modeled latency (the paper assumes a 50 Mbps
inter-cloud link).
"""

from repro.net.channel import Channel, ChannelStats, LinkModel, measure_size

__all__ = ["Channel", "ChannelStats", "LinkModel", "measure_size"]

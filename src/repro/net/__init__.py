"""The inter-cloud message-passing layer.

Everything that crosses the S1/S2 boundary is a typed request message
(:mod:`repro.net.messages`) carried by a :class:`repro.net.transport.Transport`
and serviced by the :class:`repro.net.dispatch.S2Dispatcher`; the
:class:`repro.net.batching.RoundBatcher` coalesces independent requests
into single round-trips, and :class:`repro.net.channel.Channel` records

* bytes transferred in each direction,
* the number of communication rounds, and
* a per-protocol breakdown,

so the bandwidth/latency results of Table 3 and Figure 13 can be
regenerated exactly, and a configurable :class:`repro.net.channel.LinkModel`
turns byte counts into modeled latency (the paper assumes a 50 Mbps
inter-cloud link).  See ARCHITECTURE.md for the full layer map.
"""

from repro.net.batching import RoundBatcher
from repro.net.channel import Channel, ChannelStats, LinkModel, measure_size
from repro.net.dispatch import S2Dispatcher
from repro.net.socket_transport import (
    SocketTransport,
    disconnect_all,
    is_socket_address,
)
from repro.net.transport import (
    InProcessTransport,
    ThreadedTransport,
    Transport,
    make_transport,
)
from repro.net.wire import WireCodec

__all__ = [
    "Channel",
    "ChannelStats",
    "InProcessTransport",
    "LinkModel",
    "RoundBatcher",
    "S2Dispatcher",
    "SocketTransport",
    "ThreadedTransport",
    "Transport",
    "WireCodec",
    "disconnect_all",
    "is_socket_address",
    "make_transport",
    "measure_size",
]

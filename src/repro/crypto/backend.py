"""Pluggable modular-arithmetic backend — the crypto compute layer.

Every hot modular *exponentiation and inversion* in the crypto stack
(Paillier encryption and CRT decryption, Damgård–Jurik layer stripping,
Miller–Rabin rounds, the blinding and comparison protocols' scalar
exponentiations — the operations that dominate query latency) funnels
through this module, so a single switch moves the whole system between:

* ``pure``  — the built-in CPython big-int implementation (always
  available; the default when nothing faster is installed), and
* ``gmpy2`` — GMP-backed ``powmod``/``invert``, typically 3–10x faster
  on the modular exponentiations that dominate query latency (the
  paper's Section 11 measures exactly these operations).

Selection order:

1. ``set_backend(...)`` — explicit programmatic choice (tests, benches);
2. the ``REPRO_BACKEND`` environment variable (``pure``, ``gmpy2`` or
   ``auto``);
3. ``auto`` — ``gmpy2`` when importable, else ``pure``.

Both backends are *bit-compatible*: for every operation the returned
integers are identical, so ciphertexts, transcripts and seeded-test
expectations never depend on which backend served them
(``tests/test_backend.py`` pins this).

Besides the scalar ops the module exposes batch entry points.
:func:`powmod_vec` (one exponent, many bases: the shape of batched CRT
decryption) is the primitive the key-level batch methods build on — it
replaced the per-item ``pow`` loops previously inlined in
``encrypt_vector``/``decrypt_vector`` and the S2 decrypt handlers, and
gives an accelerated backend one conversion of the shared
modulus/exponent per *batch* instead of per item.  :func:`encrypt_batch`
and :func:`decrypt_batch` are the module-level faces of the key-method
equivalents (``pk.encrypt_batch`` / ``sk.decrypt_batch``) for callers
that want the whole compute API importable from one place; the stack
itself calls the key methods directly.
"""

from __future__ import annotations

import math
import os
import warnings

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None


class PurePythonBackend:
    """CPython built-ins; the always-available reference backend."""

    name = "pure"

    @staticmethod
    def powmod(base: int, exp: int, mod: int) -> int:
        return pow(base, exp, mod)

    @staticmethod
    def powmod_vec(bases: list[int], exp: int, mod: int) -> list[int]:
        return [pow(b, exp, mod) for b in bases]

    @staticmethod
    def invert(a: int, mod: int) -> int:
        return pow(a, -1, mod)

    @staticmethod
    def gcd(a: int, b: int) -> int:
        return math.gcd(a, b)


class Gmpy2Backend:
    """GMP-accelerated ops via :mod:`gmpy2` (optional dependency).

    Results are converted back to built-in ``int`` at the boundary so
    callers (and the wire codec, and pickling) never see ``mpz``.
    """

    name = "gmpy2"

    def __init__(self):
        if _gmpy2 is None:
            raise RuntimeError("gmpy2 is not installed")
        self._mpz = _gmpy2.mpz
        self._powmod = _gmpy2.powmod
        self._invert = _gmpy2.invert
        self._gcd = _gmpy2.gcd

    def powmod(self, base: int, exp: int, mod: int) -> int:
        return int(self._powmod(base, exp, mod))

    def powmod_vec(self, bases: list[int], exp: int, mod: int) -> list[int]:
        # Convert the shared exponent/modulus once for the whole batch.
        mpz, powmod = self._mpz, self._powmod
        e, m = mpz(exp), mpz(mod)
        return [int(powmod(b, e, m)) for b in bases]

    def invert(self, a: int, mod: int) -> int:
        # gmpy2.invert returns 0 for non-invertible inputs (instead of
        # raising, as pow(a, -1, m) does); normalize to the pure error.
        if self._gcd(a, mod) != 1:
            raise ValueError("base is not invertible for the given modulus")
        return int(self._invert(a, mod))

    def gcd(self, a: int, b: int) -> int:
        return int(self._gcd(a, b))


def gmpy2_available() -> bool:
    """Whether the accelerated backend can be constructed here."""
    return _gmpy2 is not None


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`set_backend` in this environment."""
    return ("pure", "gmpy2") if gmpy2_available() else ("pure",)


def _resolve(name: str):
    if name == "pure":
        return PurePythonBackend()
    if name == "gmpy2":
        return Gmpy2Backend()
    if name == "auto":
        return Gmpy2Backend() if gmpy2_available() else PurePythonBackend()
    raise ValueError(f"unknown compute backend: {name!r}")


def _initial_backend():
    """Resolve ``REPRO_BACKEND`` at import, falling back to pure.

    A typo'd or unsatisfiable env var must not make ``import repro``
    itself raise (code that would fix the selection via
    :func:`set_backend` could then never run); the misconfiguration is
    surfaced as a warning instead.  CI's accelerated leg asserts the
    resolved backend name, so a silent fallback cannot pass there.
    """
    name = os.environ.get("REPRO_BACKEND", "auto")
    try:
        return _resolve(name)
    except (ValueError, RuntimeError) as exc:
        warnings.warn(
            f"REPRO_BACKEND={name!r} unavailable ({exc}); using pure backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return PurePythonBackend()


_ACTIVE = _initial_backend()


def get_backend():
    """The active backend instance."""
    return _ACTIVE


def set_backend(backend) -> object:
    """Install a backend (by name or instance); returns the previous one.

    Worker processes call this on startup so a programmatic selection in
    the parent survives ``spawn``-style pools; tests use the return value
    to restore the previous backend.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = _resolve(backend) if isinstance(backend, str) else backend
    return previous


# ----------------------------------------------------------------------
# Module-level scalar entry points (hot-path sugar over get_backend()).
# ----------------------------------------------------------------------


def powmod(base: int, exp: int, mod: int) -> int:
    """``base**exp mod mod`` through the active backend."""
    return _ACTIVE.powmod(base, exp, mod)


def invert(a: int, mod: int) -> int:
    """Modular inverse through the active backend (raises if none)."""
    return _ACTIVE.invert(a, mod)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor through the active backend."""
    return _ACTIVE.gcd(a, b)


# ----------------------------------------------------------------------
# Batch entry points.
# ----------------------------------------------------------------------


def powmod_vec(bases: list[int], exp: int, mod: int) -> list[int]:
    """Exponentiate many bases by one shared exponent — the shape of
    batched CRT decryption and batched randomizer generation."""
    return _ACTIVE.powmod_vec(bases, exp, mod)


def encrypt_batch(pk, values: list[int], rng=None) -> list:
    """Paillier-encrypt ``values`` component-wise in one batch.

    Delegates to :meth:`PaillierPublicKey.encrypt_batch`, which draws all
    randomizers from the key's cached pool and runs the modular
    arithmetic through the active backend.
    """
    return pk.encrypt_batch(values, rng)


def decrypt_batch(sk, cts: list) -> list[int]:
    """Paillier-decrypt ``cts`` component-wise in one batch.

    Delegates to :meth:`PaillierSecretKey.decrypt_batch`: two
    :func:`powmod_vec` calls (one per CRT prime) replace the per-item
    ``pow`` pairs of the naive loop.
    """
    return sk.decrypt_batch(cts)

"""Pluggable modular-arithmetic backend — the crypto compute layer.

Every hot modular *exponentiation and inversion* in the crypto stack
(Paillier encryption and CRT decryption, Damgård–Jurik layer stripping,
Miller–Rabin rounds, the blinding and comparison protocols' scalar
exponentiations — the operations that dominate query latency) funnels
through this module, so a single switch moves the whole system between:

* ``pure``       — the built-in CPython big-int implementation (always
  available; the default when nothing faster is installed),
* ``gmpy2``      — GMP-backed ``powmod``/``invert``, typically 3–10x
  faster on the modular exponentiations that dominate query latency
  (the paper's Section 11 measures exactly these operations), and
* ``gmp-kernel`` — the compiled cffi batch kernel
  (:mod:`repro.crypto.kernels`): GMP speed *plus* the GIL released
  across an entire ``powmod_vec`` call, which is what lets thread-mode
  compute pools and shard workers scale with cores.  Available when the
  extension builds here (cffi + C compiler + GMP headers); absent, it
  simply never registers.

Selection order:

1. a thread-local :func:`use_backend` override (how thread-mode compute
   pools run their chunks on the kernel without touching the rest of
   the process);
2. ``set_backend(...)`` — explicit programmatic choice (tests, benches);
3. the ``REPRO_BACKEND`` environment variable (``pure``, ``gmpy2``,
   ``gmp-kernel`` or ``auto``);
4. ``auto`` — ``gmpy2`` when importable, else ``gmp-kernel`` when it
   builds, else ``pure``.  (gmpy2 first: its scalar ops avoid the
   kernel's per-call packing, and single-threaded batch speed is the
   same GMP either way — the kernel's GIL release only pays off inside
   the thread-based layers, which select it explicitly.)

All backends are *bit-compatible*: for every operation the returned
integers are identical, so ciphertexts, transcripts and seeded-test
expectations never depend on which backend served them
(``tests/test_backend.py`` pins this).

Besides the scalar ops the module exposes batch entry points.
:func:`powmod_vec` (one exponent, many bases: the shape of batched CRT
decryption) is the primitive the key-level batch methods build on — it
replaced the per-item ``pow`` loops previously inlined in
``encrypt_vector``/``decrypt_vector`` and the S2 decrypt handlers, and
gives an accelerated backend one conversion of the shared
modulus/exponent per *batch* instead of per item.  :func:`encrypt_batch`
and :func:`decrypt_batch` are the module-level faces of the key-method
equivalents (``pk.encrypt_batch`` / ``sk.decrypt_batch``) for callers
that want the whole compute API importable from one place; the stack
itself calls the key methods directly.
"""

from __future__ import annotations

import contextlib
import math
import os
import threading
import warnings

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover
    _gmpy2 = None


class PurePythonBackend:
    """CPython built-ins; the always-available reference backend."""

    name = "pure"

    @staticmethod
    def powmod(base: int, exp: int, mod: int) -> int:
        return pow(base, exp, mod)

    @staticmethod
    def powmod_vec(bases: list[int], exp: int, mod: int) -> list[int]:
        return [pow(b, exp, mod) for b in bases]

    @staticmethod
    def invert(a: int, mod: int) -> int:
        return pow(a, -1, mod)

    @staticmethod
    def gcd(a: int, b: int) -> int:
        return math.gcd(a, b)


class Gmpy2Backend:
    """GMP-accelerated ops via :mod:`gmpy2` (optional dependency).

    Results are converted back to built-in ``int`` at the boundary so
    callers (and the wire codec, and pickling) never see ``mpz``.
    """

    name = "gmpy2"

    def __init__(self):
        if _gmpy2 is None:
            raise RuntimeError("gmpy2 is not installed")
        self._mpz = _gmpy2.mpz
        self._powmod = _gmpy2.powmod
        self._invert = _gmpy2.invert
        self._gcd = _gmpy2.gcd

    def powmod(self, base: int, exp: int, mod: int) -> int:
        return int(self._powmod(base, exp, mod))

    def powmod_vec(self, bases: list[int], exp: int, mod: int) -> list[int]:
        # Convert the shared exponent/modulus once for the whole batch.
        mpz, powmod = self._mpz, self._powmod
        e, m = mpz(exp), mpz(mod)
        return [int(powmod(b, e, m)) for b in bases]

    def invert(self, a: int, mod: int) -> int:
        # gmpy2.invert returns 0 for non-invertible inputs (instead of
        # raising, as pow(a, -1, m) does); normalize to the pure error.
        if self._gcd(a, mod) != 1:
            raise ValueError("base is not invertible for the given modulus")
        return int(self._invert(a, mod))

    def gcd(self, a: int, b: int) -> int:
        return int(self._gcd(a, b))


class GmpKernelBackend:
    """The compiled GIL-free GMP batch kernel as a backend.

    Same GMP arithmetic as gmpy2 (bit-identical results); the
    difference is *where the GIL goes*: :meth:`powmod_vec` makes one C
    call for the whole batch and cffi releases the GIL for its entire
    duration, so concurrent threads running batches genuinely overlap.
    ``gcd`` stays on :func:`math.gcd` — already C-speed, and never a
    batch bottleneck.
    """

    name = "gmp-kernel"

    def __init__(self):
        from repro.crypto import kernels

        kernel = kernels.load_kernel()
        if kernel is None:
            raise RuntimeError(
                f"gmp kernel unavailable ({kernels.kernel_unavailable_reason()})"
            )
        self._kernel = kernel

    def powmod(self, base: int, exp: int, mod: int) -> int:
        return self._kernel.powmod(base, exp, mod)

    def powmod_vec(self, bases: list[int], exp: int, mod: int) -> list[int]:
        return self._kernel.powmod_vec(bases, exp, mod)

    def invert(self, a: int, mod: int) -> int:
        return self._kernel.invert(a, mod)

    @staticmethod
    def gcd(a: int, b: int) -> int:
        return math.gcd(a, b)


def gmpy2_available() -> bool:
    """Whether the gmpy2 backend can be constructed here."""
    return _gmpy2 is not None


def kernel_available() -> bool:
    """Whether the compiled ``gmp-kernel`` backend can be constructed
    here (the extension imports, or builds on first use)."""
    from repro.crypto import kernels

    return kernels.kernel_available()


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`set_backend` in this environment."""
    names = ["pure"]
    if gmpy2_available():
        names.append("gmpy2")
    if kernel_available():
        names.append("gmp-kernel")
    return tuple(names)


def _resolve(name: str):
    if name == "pure":
        return PurePythonBackend()
    if name == "gmpy2":
        return Gmpy2Backend()
    if name == "gmp-kernel":
        return GmpKernelBackend()
    if name == "auto":
        if gmpy2_available():
            return Gmpy2Backend()
        if kernel_available():
            return GmpKernelBackend()
        return PurePythonBackend()
    raise ValueError(f"unknown compute backend: {name!r}")


def _initial_backend():
    """Resolve ``REPRO_BACKEND`` at import, falling back to pure.

    A typo'd or unsatisfiable env var must not make ``import repro``
    itself raise (code that would fix the selection via
    :func:`set_backend` could then never run); the misconfiguration is
    surfaced as a warning instead.  CI's accelerated leg asserts the
    resolved backend name, so a silent fallback cannot pass there.
    """
    name = os.environ.get("REPRO_BACKEND", "auto")
    try:
        return _resolve(name)
    except (ValueError, RuntimeError) as exc:
        warnings.warn(
            f"REPRO_BACKEND={name!r} unavailable ({exc}); using pure backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return PurePythonBackend()


_ACTIVE = _initial_backend()

# Per-thread override installed by use_backend().  Checked before the
# process-wide selection so one thread can run on the GIL-free kernel
# (a compute-pool chunk) while the rest of the process stays put.
_TLS = threading.local()


def _current():
    override = getattr(_TLS, "backend", None)
    return _ACTIVE if override is None else override


def get_backend():
    """The active backend instance (honouring any thread-local override)."""
    return _current()


def set_backend(backend) -> object:
    """Install the process-wide backend (by name or instance); returns
    the previous one.

    Worker processes call this on startup so a programmatic selection in
    the parent survives ``spawn``-style pools; tests use the return value
    to restore the previous backend.  Does not touch thread-local
    overrides (:func:`use_backend`).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = _resolve(backend) if isinstance(backend, str) else backend
    return previous


@contextlib.contextmanager
def use_backend(backend):
    """Run the current thread on ``backend`` for the duration of a block.

    The override is strictly thread-local: other threads — and code in
    this thread outside the block — keep using the process-wide
    selection.  This is how the compute pool's thread mode pins its
    chunk computations to the GIL-free kernel without a process-wide
    ``set_backend`` racing concurrent queries.  Nestable; restores the
    previous override on exit.
    """
    resolved = _resolve(backend) if isinstance(backend, str) else backend
    previous = getattr(_TLS, "backend", None)
    _TLS.backend = resolved
    try:
        yield resolved
    finally:
        _TLS.backend = previous


# ----------------------------------------------------------------------
# Module-level scalar entry points (hot-path sugar over get_backend()).
# ----------------------------------------------------------------------


def powmod(base: int, exp: int, mod: int) -> int:
    """``base**exp mod mod`` through the active backend."""
    return _current().powmod(base, exp, mod)


def invert(a: int, mod: int) -> int:
    """Modular inverse through the active backend (raises if none)."""
    return _current().invert(a, mod)


def gcd(a: int, b: int) -> int:
    """Greatest common divisor through the active backend."""
    return _current().gcd(a, b)


# ----------------------------------------------------------------------
# Batch entry points.
# ----------------------------------------------------------------------


def powmod_vec(bases: list[int], exp: int, mod: int) -> list[int]:
    """Exponentiate many bases by one shared exponent — the shape of
    batched CRT decryption and batched randomizer generation."""
    return _current().powmod_vec(bases, exp, mod)


def encrypt_batch(pk, values: list[int], rng=None) -> list:
    """Paillier-encrypt ``values`` component-wise in one batch.

    Delegates to :meth:`PaillierPublicKey.encrypt_batch`, which draws all
    randomizers from the key's cached pool and runs the modular
    arithmetic through the active backend.
    """
    return pk.encrypt_batch(values, rng)


def decrypt_batch(sk, cts: list) -> list[int]:
    """Paillier-decrypt ``cts`` component-wise in one batch.

    Delegates to :meth:`PaillierSecretKey.decrypt_batch`: two
    :func:`powmod_vec` calls (one per CRT prime) replace the per-item
    ``pow`` pairs of the naive loop.
    """
    return sk.decrypt_batch(cts)

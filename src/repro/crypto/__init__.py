"""Cryptographic substrate built from scratch on Python integers.

The evaluation environment provides no third-party cryptography packages,
so everything the paper's construction needs is implemented here:

* :mod:`repro.crypto.primes` — Miller–Rabin primality testing and random
  prime generation;
* :mod:`repro.crypto.paillier` — the Paillier cryptosystem with the full
  set of homomorphic operations used by the protocols;
* :mod:`repro.crypto.damgard_jurik` — the Damgård–Jurik generalization,
  including the *layered* encryption ``E2(Enc(m))`` whose inner
  homomorphism is the only DJ property the paper relies on (Section 3.3);
* :mod:`repro.crypto.prf` / :mod:`repro.crypto.prp` — HMAC-SHA-256 based
  pseudo-random functions and keyed permutations;
* :mod:`repro.crypto.encoding` — signed fixed-width score encoding in
  ``Z_N``;
* :mod:`repro.crypto.rng` — deterministic randomness plumbing so tests and
  benchmarks are reproducible;
* :mod:`repro.crypto.backend` — the pluggable modular-arithmetic compute
  layer (pure Python or gmpy2) every hot operation routes through;
* :mod:`repro.crypto.parallel` — process-pool fan-out for the crypto
  cloud's bulk decrypt batches.
"""

from repro.crypto import backend
from repro.crypto.rng import SecureRandom, system_random
from repro.crypto.primes import is_probable_prime, random_prime
from repro.crypto.paillier import PaillierKeypair, PaillierPublicKey, PaillierSecretKey, Ciphertext
from repro.crypto.damgard_jurik import DamgardJurik, LayeredCiphertext
from repro.crypto.prf import Prf, derive_keys
from repro.crypto.prp import Prp
from repro.crypto.encoding import SignedEncoder

__all__ = [
    "backend",
    "SecureRandom",
    "system_random",
    "is_probable_prime",
    "random_prime",
    "PaillierKeypair",
    "PaillierPublicKey",
    "PaillierSecretKey",
    "Ciphertext",
    "DamgardJurik",
    "LayeredCiphertext",
    "Prf",
    "derive_keys",
    "Prp",
    "SignedEncoder",
]

"""The Paillier cryptosystem (Paillier, EUROCRYPT 1999).

This is the additively homomorphic encryption scheme the paper encrypts
every score with (Section 3.3).  We use the standard ``g = N + 1`` variant:

* ``Enc(m; r) = (1 + m*N) * r^N  mod N^2``
* ``Dec(c)    = L(c^λ mod N^2) * μ  mod N``   with ``L(u) = (u-1)/N``

Homomorphic properties used throughout the construction:

* addition:        ``Enc(x) * Enc(y) = Enc(x + y)``
* scalar multiply: ``Enc(x)^a        = Enc(a * x)``
* negation:        ``Enc(x)^(N-1)    = Enc(-x)``

Decryption uses the CRT split over ``p^2`` and ``q^2`` for a ~3x speedup,
which matters because the two-cloud protocols decrypt constantly.

Ciphertexts are wrapped in :class:`Ciphertext` objects carrying a reference
to their public key so that accidental cross-key operations raise
:class:`~repro.exceptions.KeyMismatchError` instead of silently producing
garbage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.primes import lcm, random_prime_pair
from repro.crypto.rng import SecureRandom
from repro.exceptions import DecryptionError, KeyMismatchError


class PaillierPublicKey:
    """Paillier public key ``(N, g = N + 1)`` and encryption operations."""

    #: Randomizer-pool shape: ``_POOL_SIZE`` precomputed values ``r_i^N``
    #: are combined ``_POOL_PICKS`` at a time per encryption.  This is the
    #: classic Paillier randomizer-caching optimization: a product of
    #: random pool elements is itself a valid randomizer, and modular
    #: multiplications are orders of magnitude cheaper than a fresh
    #: ``r^N mod N^2`` exponentiation.
    _POOL_SIZE = 64
    _POOL_PICKS = 6

    def __init__(self, n: int):
        self.n = n
        self.n_squared = n * n
        self.bits = n.bit_length()
        self._pool: list[int] | None = None

    def __eq__(self, other) -> bool:
        return isinstance(other, PaillierPublicKey) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("paillier-pk", self.n))

    def __repr__(self) -> str:
        return f"PaillierPublicKey(bits={self.bits})"

    # -- encryption ------------------------------------------------------

    def _randomizer(self, rng: SecureRandom) -> int:
        """A fresh randomizer ``r^N mod N^2`` from the cached pool."""
        if self._pool is None:
            pool_rng = SecureRandom()  # pool values need not be replayable
            self._pool = [
                pow(pool_rng.rand_unit(self.n), self.n, self.n_squared)
                for _ in range(self._POOL_SIZE)
            ]
        out = 1
        for _ in range(self._POOL_PICKS):
            out = out * self._pool[rng.randint_below(self._POOL_SIZE)] % self.n_squared
        return out

    def raw_encrypt(self, m: int, rng: SecureRandom) -> int:
        """Encrypt ``m`` in ``Z_N`` and return the bare integer ciphertext."""
        m %= self.n
        return (1 + m * self.n) % self.n_squared * self._randomizer(rng) % self.n_squared

    def encrypt(self, m: int, rng: SecureRandom | None = None) -> "Ciphertext":
        """Encrypt ``m`` (reduced mod ``N``) into a :class:`Ciphertext`."""
        rng = rng or SecureRandom()
        return Ciphertext(self.raw_encrypt(m, rng), self)

    def encrypt_signed(self, m: int, rng: SecureRandom | None = None) -> "Ciphertext":
        """Encrypt a signed integer (negatives become ``N - |m|``)."""
        return self.encrypt(m % self.n, rng)

    def rerandomize(self, c: "Ciphertext", rng: SecureRandom | None = None) -> "Ciphertext":
        """Return a fresh encryption of the same plaintext."""
        rng = rng or SecureRandom()
        return Ciphertext(c.value * self._randomizer(rng) % self.n_squared, self)

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (used for bandwidth accounting)."""
        return (self.n_squared.bit_length() + 7) // 8


class PaillierSecretKey:
    """Paillier secret key with CRT-accelerated decryption."""

    def __init__(self, p: int, q: int, public_key: PaillierPublicKey):
        if p * q != public_key.n:
            raise KeyMismatchError("secret primes do not match public modulus")
        self.p = p
        self.q = q
        self.public_key = public_key
        n = public_key.n
        self.lam = lcm(p - 1, q - 1)
        # mu = (L(g^lam mod N^2))^-1 mod N; with g = N+1, g^lam = 1 + lam*N,
        # so L(g^lam) = lam and mu = lam^-1 mod N.
        self.mu = pow(self.lam, -1, n)
        # CRT precomputations.
        self._p2 = p * p
        self._q2 = q * q
        self._p2_inv_q2 = pow(self._p2, -1, self._q2)
        self._p_inv_q = pow(p, -1, q)
        self._hp = pow(self._l_func(pow(1 + n, p - 1, self._p2), p), -1, p)
        self._hq = pow(self._l_func(pow(1 + n, q - 1, self._q2), q), -1, q)

    @staticmethod
    def _l_func(u: int, n: int) -> int:
        return (u - 1) // n

    def _decrypt_crt(self, c: int) -> int:
        n = self.public_key.n
        p, q = self.p, self.q
        mp = self._l_func(pow(c % self._p2, p - 1, self._p2), p) * self._hp % p
        mq = self._l_func(pow(c % self._q2, q - 1, self._q2), q) * self._hq % q
        # CRT combine mp (mod p) and mq (mod q) into m (mod n).
        u = (mq - mp) * self._p_inv_q % q
        return (mp + p * u) % n

    def raw_decrypt(self, c: int) -> int:
        """Decrypt a bare integer ciphertext to an element of ``Z_N``."""
        if not 0 < c < self.public_key.n_squared:
            raise DecryptionError("ciphertext outside Z_{N^2}")
        if math.gcd(c, self.public_key.n) != 1:
            raise DecryptionError("ciphertext is not a unit mod N^2")
        return self._decrypt_crt(c)

    def decrypt(self, c: "Ciphertext") -> int:
        """Decrypt to the canonical representative in ``[0, N)``."""
        if c.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return self.raw_decrypt(c.value)

    def decrypt_signed(self, c: "Ciphertext") -> int:
        """Decrypt to a signed integer in ``(-N/2, N/2]``."""
        m = self.decrypt(c)
        n = self.public_key.n
        return m - n if m > n // 2 else m


@dataclass(frozen=True)
class PaillierKeypair:
    """A ``(public, secret)`` Paillier key pair."""

    public_key: PaillierPublicKey
    secret_key: PaillierSecretKey

    @classmethod
    def generate(cls, bits: int = 512, rng: SecureRandom | None = None) -> "PaillierKeypair":
        """Generate a key pair with an (approximately) ``bits``-bit modulus.

        ``bits`` is the size of ``N``; the paper's experiments use 256-bit
        ``N`` ("128-bit security for the Paillier and DJ encryption").
        """
        rng = rng or SecureRandom()
        p, q = random_prime_pair(bits // 2, rng)
        public = PaillierPublicKey(p * q)
        secret = PaillierSecretKey(p, q, public)
        return cls(public, secret)


class Ciphertext:
    """A Paillier ciphertext bound to its public key.

    Supports the homomorphic operator sugar used throughout the protocols:

    * ``a + b`` / ``a + int``   — homomorphic addition
    * ``a - b``                 — homomorphic subtraction
    * ``a * int``               — scalar multiplication
    * ``-a``                    — negation
    """

    __slots__ = ("value", "public_key")

    def __init__(self, value: int, public_key: PaillierPublicKey):
        self.value = value
        self.public_key = public_key

    def _check(self, other: "Ciphertext") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    def __add__(self, other):
        pk = self.public_key
        if isinstance(other, Ciphertext):
            self._check(other)
            return Ciphertext(self.value * other.value % pk.n_squared, pk)
        if isinstance(other, int):
            # Adding a plaintext constant: multiply by (1 + other*N).
            return Ciphertext(
                self.value * ((1 + (other % pk.n) * pk.n) % pk.n_squared) % pk.n_squared,
                pk,
            )
        return NotImplemented

    __radd__ = __add__

    def __neg__(self):
        # Group inverse == encryption of -x; modular inversion is far
        # cheaper than the equivalent pow(value, N-1, N^2).
        pk = self.public_key
        return Ciphertext(pow(self.value, -1, pk.n_squared), pk)

    def __sub__(self, other):
        if isinstance(other, Ciphertext):
            self._check(other)
            return self + (-other)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        pk = self.public_key
        return Ciphertext(pow(self.value, scalar % pk.n, pk.n_squared), pk)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"Ciphertext(0x{self.value:x})"

    def serialized_size(self) -> int:
        """Byte size on the wire (fixed-width encoding of ``Z_{N^2}``)."""
        return self.public_key.ciphertext_bytes

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian serialization."""
        return self.value.to_bytes(self.public_key.ciphertext_bytes, "big")

    @classmethod
    def from_bytes(cls, data: bytes, public_key: PaillierPublicKey) -> "Ciphertext":
        """Inverse of :meth:`to_bytes`."""
        return cls(int.from_bytes(data, "big"), public_key)


def encrypt_vector(
    pk: PaillierPublicKey, values: list[int], rng: SecureRandom | None = None
) -> list[Ciphertext]:
    """Encrypt a list of integers component-wise."""
    rng = rng or SecureRandom()
    return [pk.encrypt(v, rng) for v in values]


def decrypt_vector(sk: PaillierSecretKey, cts: list[Ciphertext]) -> list[int]:
    """Decrypt a list of ciphertexts component-wise."""
    return [sk.decrypt(c) for c in cts]

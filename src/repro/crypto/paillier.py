"""The Paillier cryptosystem (Paillier, EUROCRYPT 1999).

This is the additively homomorphic encryption scheme the paper encrypts
every score with (Section 3.3).  We use the standard ``g = N + 1`` variant:

* ``Enc(m; r) = (1 + m*N) * r^N  mod N^2``
* ``Dec(c)    = L(c^λ mod N^2) * μ  mod N``   with ``L(u) = (u-1)/N``

Homomorphic properties used throughout the construction:

* addition:        ``Enc(x) * Enc(y) = Enc(x + y)``
* scalar multiply: ``Enc(x)^a        = Enc(a * x)``
* negation:        ``Enc(x)^(N-1)    = Enc(-x)``

Decryption uses the CRT split over ``p^2`` and ``q^2`` for a ~3x speedup,
which matters because the two-cloud protocols decrypt constantly.  All
modular arithmetic routes through :mod:`repro.crypto.backend`, so the
same code runs on the pure-Python big-int implementation or on gmpy2
when installed; the batch methods (:meth:`PaillierPublicKey.encrypt_batch`,
:meth:`PaillierSecretKey.decrypt_batch`) amortize backend setup over
whole vectors — the shape every protocol round actually has.

Ciphertexts are wrapped in :class:`Ciphertext` objects carrying a reference
to their public key so that accidental cross-key operations raise
:class:`~repro.exceptions.KeyMismatchError` instead of silently producing
garbage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import backend
from repro.crypto.primes import lcm, random_prime_pair
from repro.crypto.rng import SecureRandom
from repro.exceptions import DecryptionError, KeyMismatchError


class PaillierPublicKey:
    """Paillier public key ``(N, g = N + 1)`` and encryption operations."""

    #: Randomizer-pool shape: ``_POOL_SIZE`` precomputed values ``r_i^N``
    #: are combined ``_POOL_PICKS`` at a time per encryption.  This is the
    #: classic Paillier randomizer-caching optimization: a product of
    #: random pool elements is itself a valid randomizer, and modular
    #: multiplications are orders of magnitude cheaper than a fresh
    #: ``r^N mod N^2`` exponentiation.
    _POOL_SIZE = 64
    _POOL_PICKS = 6

    def __init__(self, n: int):
        self.n = n
        self.n_squared = n * n
        self.bits = n.bit_length()
        self._pool: list[int] | None = None
        self._rng: SecureRandom | None = None

    def __eq__(self, other) -> bool:
        return isinstance(other, PaillierPublicKey) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("paillier-pk", self.n))

    def __repr__(self) -> str:
        return f"PaillierPublicKey(bits={self.bits})"

    # -- pickling --------------------------------------------------------

    def __getstate__(self):
        # The randomizer pool and the hoisted default rng are per-process
        # caches: exclude them so keys ship cheaply to worker processes
        # (each rebuilds lazily from its own entropy).  Default dict-state
        # unpickling restores everything else.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_rng"] = None
        return state

    # -- encryption ------------------------------------------------------

    def _fresh_rng(self) -> SecureRandom:
        """The key's hoisted default randomness source.

        Callers that need replayable streams pass their own ``rng``; the
        default paths share one OS-backed instance per key instead of
        allocating a fresh ``SecureRandom`` per call.
        """
        rng = self._rng
        if rng is None:
            rng = self._rng = SecureRandom()
        return rng

    def _randomizer(self, rng: SecureRandom) -> int:
        """A fresh randomizer ``r^N mod N^2`` from the cached pool."""
        pool = self._pool
        if pool is None:
            pool_rng = SecureRandom()  # pool values need not be replayable
            pool = self._pool = backend.powmod_vec(
                [pool_rng.rand_unit(self.n) for _ in range(self._POOL_SIZE)],
                self.n,
                self.n_squared,
            )
        out = 1
        for _ in range(self._POOL_PICKS):
            out = out * pool[rng.randint_below(self._POOL_SIZE)] % self.n_squared
        return out

    def raw_encrypt(self, m: int, rng: SecureRandom) -> int:
        """Encrypt ``m`` in ``Z_N`` and return the bare integer ciphertext."""
        m %= self.n
        return (1 + m * self.n) % self.n_squared * self._randomizer(rng) % self.n_squared

    def encrypt(self, m: int, rng: SecureRandom | None = None) -> "Ciphertext":
        """Encrypt ``m`` (reduced mod ``N``) into a :class:`Ciphertext`."""
        rng = rng or self._fresh_rng()
        return Ciphertext(self.raw_encrypt(m, rng), self)

    def encrypt_signed(self, m: int, rng: SecureRandom | None = None) -> "Ciphertext":
        """Encrypt a signed integer (negatives become ``N - |m|``)."""
        return self.encrypt(m % self.n, rng)

    def encrypt_batch(
        self, values: list[int], rng: SecureRandom | None = None
    ) -> list["Ciphertext"]:
        """Encrypt a vector component-wise (same stream order as a loop
        of :meth:`encrypt` calls, so seeded transcripts are unchanged)."""
        rng = rng or self._fresh_rng()
        return [Ciphertext(self.raw_encrypt(v, rng), self) for v in values]

    def rerandomize(self, c: "Ciphertext", rng: SecureRandom | None = None) -> "Ciphertext":
        """Return a fresh encryption of the same plaintext."""
        rng = rng or self._fresh_rng()
        return Ciphertext(c.value * self._randomizer(rng) % self.n_squared, self)

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (used for bandwidth accounting)."""
        return (self.n_squared.bit_length() + 7) // 8


class PaillierSecretKey:
    """Paillier secret key with CRT-accelerated decryption."""

    def __init__(self, p: int, q: int, public_key: PaillierPublicKey):
        if p * q != public_key.n:
            raise KeyMismatchError("secret primes do not match public modulus")
        self.p = p
        self.q = q
        self.public_key = public_key
        n = public_key.n
        self.lam = lcm(p - 1, q - 1)
        # mu = (L(g^lam mod N^2))^-1 mod N; with g = N+1, g^lam = 1 + lam*N,
        # so L(g^lam) = lam and mu = lam^-1 mod N.
        self.mu = backend.invert(self.lam, n)
        # CRT precomputations.
        self._p2 = p * p
        self._q2 = q * q
        self._p2_inv_q2 = backend.invert(self._p2, self._q2)
        self._p_inv_q = backend.invert(p, q)
        self._hp = backend.invert(
            self._l_func(backend.powmod(1 + n, p - 1, self._p2), p), p
        )
        self._hq = backend.invert(
            self._l_func(backend.powmod(1 + n, q - 1, self._q2), q), q
        )
        #: Damgård–Jurik decryption constants per expansion degree ``s``
        #: (filled lazily by ``DamgardJurik._crt_exponents``).  Lives here
        #: — not on the DJ instance — because the constants derive from
        #: the secret primes and DJ objects are shared with S1.
        self.dj_crt_cache: dict[int, tuple] = {}

    @staticmethod
    def _l_func(u: int, n: int) -> int:
        return (u - 1) // n

    def _crt_combine(self, mp: int, mq: int) -> int:
        # CRT combine mp (mod p) and mq (mod q) into m (mod n).
        u = (mq - mp) * self._p_inv_q % self.q
        return (mp + self.p * u) % self.public_key.n

    def _decrypt_crt(self, c: int) -> int:
        p, q = self.p, self.q
        mp = self._l_func(backend.powmod(c % self._p2, p - 1, self._p2), p) * self._hp % p
        mq = self._l_func(backend.powmod(c % self._q2, q - 1, self._q2), q) * self._hq % q
        return self._crt_combine(mp, mq)

    def _check_unit(self, c: int) -> None:
        if not 0 < c < self.public_key.n_squared:
            raise DecryptionError("ciphertext outside Z_{N^2}")
        if backend.gcd(c, self.public_key.n) != 1:
            raise DecryptionError("ciphertext is not a unit mod N^2")

    def raw_decrypt(self, c: int) -> int:
        """Decrypt a bare integer ciphertext to an element of ``Z_N``."""
        self._check_unit(c)
        return self._decrypt_crt(c)

    def raw_decrypt_batch(self, values: list[int]) -> list[int]:
        """Decrypt many bare ciphertexts with two vectorized CRT pows."""
        if not values:
            return []
        p, q = self.p, self.q
        for c in values:
            self._check_unit(c)
        mps = backend.powmod_vec([c % self._p2 for c in values], p - 1, self._p2)
        mqs = backend.powmod_vec([c % self._q2 for c in values], q - 1, self._q2)
        return [
            self._crt_combine(
                self._l_func(mp, p) * self._hp % p,
                self._l_func(mq, q) * self._hq % q,
            )
            for mp, mq in zip(mps, mqs)
        ]

    def decrypt(self, c: "Ciphertext") -> int:
        """Decrypt to the canonical representative in ``[0, N)``."""
        if c.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return self.raw_decrypt(c.value)

    def decrypt_batch(self, cts: list["Ciphertext"]) -> list[int]:
        """Batch variant of :meth:`decrypt` (one backend setup per batch)."""
        for c in cts:
            if c.public_key != self.public_key:
                raise KeyMismatchError("ciphertext was produced under a different key")
        return self.raw_decrypt_batch([c.value for c in cts])

    def decrypt_signed(self, c: "Ciphertext") -> int:
        """Decrypt to a signed integer in ``(-N/2, N/2]``."""
        return to_signed(self.public_key.n, [self.decrypt(c)])[0]

    def decrypt_signed_batch(self, cts: list["Ciphertext"]) -> list[int]:
        """Batch variant of :meth:`decrypt_signed`."""
        return to_signed(self.public_key.n, self.decrypt_batch(cts))


@dataclass(frozen=True)
class PaillierKeypair:
    """A ``(public, secret)`` Paillier key pair."""

    public_key: PaillierPublicKey
    secret_key: PaillierSecretKey

    @classmethod
    def generate(cls, bits: int = 512, rng: SecureRandom | None = None) -> "PaillierKeypair":
        """Generate a key pair with an (approximately) ``bits``-bit modulus.

        ``bits`` is the size of ``N``; the paper's experiments use 256-bit
        ``N`` ("128-bit security for the Paillier and DJ encryption").
        """
        rng = rng or SecureRandom()
        p, q = random_prime_pair(bits // 2, rng)
        public = PaillierPublicKey(p * q)
        secret = PaillierSecretKey(p, q, public)
        return cls(public, secret)


class Ciphertext:
    """A Paillier ciphertext bound to its public key.

    Supports the homomorphic operator sugar used throughout the protocols:

    * ``a + b`` / ``a + int``   — homomorphic addition
    * ``a - b``                 — homomorphic subtraction
    * ``a * int``               — scalar multiplication
    * ``-a``                    — negation
    """

    __slots__ = ("value", "public_key")

    def __init__(self, value: int, public_key: PaillierPublicKey):
        self.value = value
        self.public_key = public_key

    def _check(self, other: "Ciphertext") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    def __add__(self, other):
        pk = self.public_key
        if isinstance(other, Ciphertext):
            self._check(other)
            return Ciphertext(self.value * other.value % pk.n_squared, pk)
        if isinstance(other, int):
            # Adding a plaintext constant: multiply by (1 + other*N).
            return Ciphertext(
                self.value * ((1 + (other % pk.n) * pk.n) % pk.n_squared) % pk.n_squared,
                pk,
            )
        return NotImplemented

    __radd__ = __add__

    def __neg__(self):
        # Group inverse == encryption of -x; modular inversion is far
        # cheaper than the equivalent pow(value, N-1, N^2).
        pk = self.public_key
        return Ciphertext(backend.invert(self.value, pk.n_squared), pk)

    def __sub__(self, other):
        if isinstance(other, Ciphertext):
            self._check(other)
            return self + (-other)
        if isinstance(other, int):
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        pk = self.public_key
        return Ciphertext(backend.powmod(self.value, scalar % pk.n, pk.n_squared), pk)

    __rmul__ = __mul__

    def __repr__(self) -> str:
        return f"Ciphertext(0x{self.value:x})"

    def serialized_size(self) -> int:
        """Byte size on the wire (fixed-width encoding of ``Z_{N^2}``)."""
        return self.public_key.ciphertext_bytes

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian serialization."""
        return self.value.to_bytes(self.public_key.ciphertext_bytes, "big")

    @classmethod
    def from_bytes(cls, data: bytes, public_key: PaillierPublicKey) -> "Ciphertext":
        """Inverse of :meth:`to_bytes`."""
        return cls(int.from_bytes(data, "big"), public_key)


def to_signed(n: int, values: list[int]) -> list[int]:
    """Map ``Z_N`` representatives to signed integers in ``(-N/2, N/2]``.

    The single signed-decode rule for every decrypt path (secret key,
    crypto cloud, with or without a compute pool).
    """
    half = n // 2
    return [m - n if m > half else m for m in values]


def encrypt_vector(
    pk: PaillierPublicKey, values: list[int], rng: SecureRandom | None = None
) -> list[Ciphertext]:
    """Encrypt a list of integers component-wise."""
    return pk.encrypt_batch(values, rng)


def decrypt_vector(sk: PaillierSecretKey, cts: list[Ciphertext]) -> list[int]:
    """Decrypt a list of ciphertexts component-wise."""
    return sk.decrypt_batch(cts)

"""Keyed pseudo-random permutations over small integer domains.

``Token`` (Section 7) permutes the *attribute indices* of the relation with
a PRP ``P_K`` so that the query token reveals only permuted list names to
the data cloud.  Domains here are tiny (the number of attributes, or the
number of sorted lists), so we implement the PRP as a keyed
Fisher–Yates-style ranking: sort the domain by PRF value, which yields a
permutation computationally indistinguishable from uniform for a PRF.

A small Feistel construction is also provided for power-of-two domains;
the default :class:`Prp` uses the sort-based construction because it works
for any domain size and the domains are tiny.
"""

from __future__ import annotations

from repro.crypto.prf import Prf


class Prp:
    """A pseudo-random permutation of ``range(domain_size)``.

    >>> p = Prp(b"k" * 32, 5)
    >>> sorted(p.forward(i) for i in range(5))
    [0, 1, 2, 3, 4]
    >>> all(p.inverse(p.forward(i)) == i for i in range(5))
    True
    """

    def __init__(self, key: bytes, domain_size: int):
        if domain_size < 1:
            raise ValueError("domain must be non-empty")
        self.domain_size = domain_size
        self._prf = Prf(key)
        # Rank elements by PRF output; ties broken by the element itself
        # (tie probability is negligible for 256-bit outputs).
        ranked = sorted(
            range(domain_size),
            key=lambda i: (self._prf.to_int(i.to_bytes(8, "big")), i),
        )
        # ranked[j] = element at permuted position j  =>  forward maps
        # element -> its position.
        self._forward = [0] * domain_size
        for position, element in enumerate(ranked):
            self._forward[element] = position
        self._inverse = ranked

    def forward(self, i: int) -> int:
        """``P_K(i)`` — the permuted index of ``i``."""
        return self._forward[i]

    def inverse(self, j: int) -> int:
        """``P_K^{-1}(j)``."""
        return self._inverse[j]

    def as_list(self) -> list[int]:
        """The full forward mapping as a list (``result[i] = P_K(i)``)."""
        return list(self._forward)


class FeistelPrp:
    """A 4-round Feistel PRP over ``[0, 2**(2*half_bits))``.

    Provided as an alternative construction for larger domains (e.g.
    permuting record addresses); uses cycle-walking when the caller's
    domain is not a power of four.
    """

    def __init__(self, key: bytes, domain_size: int, rounds: int = 4):
        if domain_size < 2:
            raise ValueError("domain must have at least 2 elements")
        self.domain_size = domain_size
        self.rounds = rounds
        bits = max(2, (domain_size - 1).bit_length())
        self.half_bits = (bits + 1) // 2
        self._prfs = [Prf(key + bytes([r])) for r in range(rounds)]

    def _feistel(self, value: int, direction: int) -> int:
        mask = (1 << self.half_bits) - 1
        left = value >> self.half_bits
        right = value & mask
        rounds = range(self.rounds) if direction > 0 else range(self.rounds - 1, -1, -1)
        for r in rounds:
            f = self._prfs[r].to_int(right.to_bytes(8, "big"), self.half_bits)
            left, right = right, left ^ f
            if direction < 0:
                # Re-derive for inverse direction: swap back appropriately.
                pass
        return (left << self.half_bits) | right

    def forward(self, i: int) -> int:
        """Permute ``i`` within the domain via cycle-walking."""
        if not 0 <= i < self.domain_size:
            raise ValueError("input outside the PRP domain")
        value = i
        while True:
            value = self._encrypt_block(value)
            if value < self.domain_size:
                return value

    def inverse(self, j: int) -> int:
        """Inverse permutation via cycle-walking."""
        if not 0 <= j < self.domain_size:
            raise ValueError("input outside the PRP domain")
        value = j
        while True:
            value = self._decrypt_block(value)
            if value < self.domain_size:
                return value

    def _encrypt_block(self, value: int) -> int:
        mask = (1 << self.half_bits) - 1
        left = value >> self.half_bits
        right = value & mask
        for r in range(self.rounds):
            f = self._prfs[r].to_int(right.to_bytes(8, "big"), self.half_bits)
            left, right = right, left ^ f
        return (left << self.half_bits) | right

    def _decrypt_block(self, value: int) -> int:
        mask = (1 << self.half_bits) - 1
        left = value >> self.half_bits
        right = value & mask
        for r in range(self.rounds - 1, -1, -1):
            f = self._prfs[r].to_int(left.to_bytes(8, "big"), self.half_bits)
            left, right = right ^ f, left
        return (left << self.half_bits) | right

"""Randomness plumbing.

Every component that consumes randomness takes a :class:`SecureRandom`
instance so that

* production use draws from the operating system CSPRNG, while
* tests and benchmarks can inject a deterministic, seeded stream and get
  bit-for-bit reproducible runs.

The deterministic mode is implemented as SHA-256 in counter mode, which is
more than adequate for reproducibility purposes (it is *not* claimed to be
a certified DRBG).
"""

from __future__ import annotations

import hashlib
import secrets


class SecureRandom:
    """Uniform random integers, optionally deterministic.

    Parameters
    ----------
    seed:
        ``None`` (default) draws from :mod:`secrets`.  Any ``int`` or
        ``bytes`` value switches the instance to a deterministic SHA-256
        counter-mode stream seeded by that value.
    """

    def __init__(self, seed: int | bytes | None = None):
        if seed is None:
            self._buf = b""
            self._counter = 0
            self._key = None
        else:
            if isinstance(seed, int):
                sign = b"-" if seed < 0 else b"+"
                magnitude = abs(seed)
                seed = sign + magnitude.to_bytes(
                    (magnitude.bit_length() + 7) // 8 or 1, "big"
                )
            self._key = hashlib.sha256(b"repro-rng:" + seed).digest()
            self._counter = 0
            self._buf = b""

    @property
    def deterministic(self) -> bool:
        """Whether this instance replays a seeded stream."""
        return self._key is not None

    def _refill(self, need: int) -> None:
        chunks = [self._buf]
        have = len(self._buf)
        while have < need:
            block = hashlib.sha256(
                self._key + self._counter.to_bytes(8, "big")
            ).digest()
            self._counter += 1
            chunks.append(block)
            have += len(block)
        self._buf = b"".join(chunks)

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` uniform random bytes."""
        if self._key is None:
            return secrets.token_bytes(n)
        self._refill(n)
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def randbits(self, k: int) -> int:
        """Return a uniform integer in ``[0, 2**k)``."""
        if k <= 0:
            return 0
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def randint_below(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` (rejection sampling)."""
        if upper <= 0:
            raise ValueError("upper bound must be positive")
        k = upper.bit_length()
        while True:
            value = self.randbits(k)
            if value < upper:
                return value

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError("empty range")
        return low + self.randint_below(high - low + 1)

    def rand_unit(self, modulus: int) -> int:
        """Return a uniform element of the multiplicative group ``Z_n^*``.

        For an RSA-style modulus the probability of hitting a non-unit is
        negligible, but we check anyway so small test moduli stay correct.
        """
        import math

        while True:
            candidate = self.randint(1, modulus - 1)
            if math.gcd(candidate, modulus) == 1:
                return candidate

    def rand_nonzero(self, modulus: int) -> int:
        """Return a uniform element of ``Z_n \\ {0}``."""
        return self.randint(1, modulus - 1)

    def shuffle(self, items: list) -> None:
        """Fisher–Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def permutation(self, n: int) -> list[int]:
        """Return a uniform random permutation of ``range(n)`` as a list."""
        perm = list(range(n))
        self.shuffle(perm)
        return perm

    def choice(self, items: list):
        """Return a uniform random element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint_below(len(items))]

    def spawn(self, label: str) -> "SecureRandom":
        """Derive an independent child stream (deterministic mode only).

        In non-deterministic mode the child simply draws from the OS CSPRNG
        as well, so ``spawn`` is always safe to call.
        """
        if self._key is None:
            return SecureRandom()
        return SecureRandom(self._key + label.encode("utf-8"))


def system_random() -> SecureRandom:
    """Return a fresh OS-backed :class:`SecureRandom`."""
    return SecureRandom()

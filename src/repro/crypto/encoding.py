"""Signed fixed-width encoding of scores in ``Z_N``.

The protocols manipulate non-negative integer scores bounded by
``2**score_bits`` plus the sentinel ``Z = N - 1`` that ``SecDedup`` assigns
to neutralized duplicates ("a large enough value Z = N − 1 ∈ Z_N",
Section 8.2.3).  Blinding adds random values that may wrap around ``N``;
this module centralizes the arithmetic-range bookkeeping so each protocol
can assert its inputs fit before homomorphic evaluation.

Negative intermediate values (e.g. the difference fed to ``EncCompare``)
use the standard two's-complement-style embedding: ``x < 0`` is stored as
``N + x``, and anything above ``N/2`` decodes as negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import EncodingRangeError


@dataclass(frozen=True)
class SignedEncoder:
    """Range-checked signed encoding in ``Z_n``.

    Parameters
    ----------
    modulus:
        The Paillier modulus ``N``.
    score_bits:
        Maximum bit-width ``ℓ`` of legitimate scores.  Aggregated scores
        (sums over ``m`` attributes over ``D`` depths) must also fit, so
        callers should budget headroom; :meth:`fits_aggregate` helps.
    blind_bits:
        Statistical blinding parameter ``κ``: additive blinds are drawn
        from ``[0, 2**(score_bits + blind_bits))``.
    """

    modulus: int
    score_bits: int = 32
    blind_bits: int = 40

    def __post_init__(self):
        # Multiplicative-blind comparisons need ℓ + κ + 2 < |N|.
        if self.score_bits + self.blind_bits + 2 >= self.modulus.bit_length():
            raise EncodingRangeError(
                "modulus too small for score_bits + blind_bits "
                f"({self.score_bits}+{self.blind_bits} vs |N|="
                f"{self.modulus.bit_length()})"
            )

    @property
    def max_score(self) -> int:
        """Largest legitimate (non-sentinel) score value."""
        return (1 << self.score_bits) - 1

    @property
    def sentinel(self) -> int:
        """The 'huge' worst-score value ``Z`` used to bury duplicates.

        The paper sets ``Z = N - 1``; decoded as a signed value that is
        ``-1``, which breaks signed comparisons, so we instead use the
        largest value that still behaves as a huge *positive* score for
        the comparison protocols: ``2**(score_bits + blind_bits)``.
        Anything with this worst score sorts after every legitimate item,
        which is all the construction needs.
        """
        return 1 << (self.score_bits + self.blind_bits)

    def encode(self, value: int) -> int:
        """Encode a signed integer into ``[0, N)``."""
        half = self.modulus // 2
        if not -half < value <= half:
            raise EncodingRangeError(f"value {value} outside (-N/2, N/2]")
        return value % self.modulus

    def decode(self, residue: int) -> int:
        """Decode an element of ``[0, N)`` to a signed integer."""
        residue %= self.modulus
        return residue - self.modulus if residue > self.modulus // 2 else residue

    def check_score(self, value: int) -> int:
        """Validate a plaintext score and return it unchanged."""
        if not 0 <= value <= self.max_score:
            raise EncodingRangeError(
                f"score {value} outside [0, 2**{self.score_bits})"
            )
        return value

    def fits_aggregate(self, n_attributes: int, headroom_bits: int = 8) -> bool:
        """Whether a sum of ``n_attributes`` scores still fits comfortably."""
        needed = self.score_bits + (n_attributes - 1).bit_length() + headroom_bits
        return needed + self.blind_bits + 2 < self.modulus.bit_length()

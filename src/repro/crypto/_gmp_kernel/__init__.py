"""Loader for the compiled GMP batch kernel (optional, skip-if-absent).

:func:`load` returns the compiled cffi ``(ffi, lib)`` pair, building the
extension on first use when it can (cffi + a C compiler + the GMP
headers present), and returns ``None`` — recording why in
:func:`unavailable_reason` — when it cannot.  Nothing in the package
ever *requires* the kernel: :mod:`repro.crypto.backend` registers it as
the ``gmp-kernel`` backend only when this loader succeeds, exactly like
the gmpy2 backend registers only when gmpy2 imports.

The build is cached under ``~/.cache/repro-gmp-kernel/<tag>`` (override
with ``REPRO_KERNEL_CACHE``); ``REPRO_NO_KERNEL=1`` disables the kernel
outright, which is how the pure/gmpy2 CI legs stay deterministic on
machines that happen to carry a compiler.  Concurrent builders compile
into private scratch directories and ``os.replace`` the shared object
into place, so racing processes (spawn-started pool workers, parallel
test runs) at worst build twice, never corrupt the cache.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import sys
import sysconfig
import tempfile

_LOADED: tuple | None = None
_REASON: str | None = None


def _cache_dir() -> pathlib.Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return pathlib.Path(override)
    tag = f"cp{sys.version_info.major}{sys.version_info.minor}"
    return pathlib.Path.home() / ".cache" / "repro-gmp-kernel" / tag


def _so_name() -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    from repro.crypto._gmp_kernel.build import MODULE_NAME

    return MODULE_NAME + suffix


def _import_so(path: pathlib.Path):
    from repro.crypto._gmp_kernel.build import MODULE_NAME

    spec = importlib.util.spec_from_file_location(MODULE_NAME, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load kernel extension from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


def _build(cache: pathlib.Path, target: pathlib.Path) -> None:
    from repro.crypto._gmp_kernel.build import make_ffibuilder

    builder = make_ffibuilder()
    if builder is None:
        raise RuntimeError("cffi is not installed")
    cache.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache, prefix="build-") as scratch:
        so_path = builder.compile(tmpdir=scratch, verbose=False)
        os.replace(so_path, target)


def load():
    """The compiled ``(ffi, lib)`` pair, or ``None`` when unavailable.

    The first call does the work (import, or compile-then-import); the
    outcome — success or the failure reason — is cached for the life of
    the process.
    """
    global _LOADED, _REASON
    if _LOADED is not None or _REASON is not None:
        return _LOADED
    if os.environ.get("REPRO_NO_KERNEL"):
        _REASON = "disabled by REPRO_NO_KERNEL"
        return None
    try:
        target = _cache_dir() / _so_name()
        if not target.exists():
            _build(_cache_dir(), target)
        _LOADED = _import_so(target)
    except Exception as exc:  # noqa: BLE001 — any failure means "absent"
        _REASON = f"{type(exc).__name__}: {exc}"
        return None
    return _LOADED


def available() -> bool:
    """Whether the kernel can be (or already was) loaded here."""
    return load() is not None


def unavailable_reason() -> str | None:
    """Why :func:`load` failed, or ``None`` when it succeeded/never ran."""
    return _REASON

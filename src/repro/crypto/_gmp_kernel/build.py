"""cffi build recipe for the GIL-free GMP batch kernel.

The C side is deliberately tiny: one vectorized ``mpz_powm`` loop (the
shape of every hot batch in the system — CRT Paillier decryption, DJ
layer stripping, randomizer pools, shard weighting) plus a scalar
``mpz_invert``.  Everything crosses the boundary as fixed-width
little-endian arrays of 64-bit words (least-significant word first,
little-endian bytes within each word — the same limb format the
compute pool's shared-memory slab transport uses), so a single C call
carries an entire batch and cffi releases the GIL for its whole
duration.  That one property is the point of this extension: with the
pure and gmpy2 backends every modular exponentiation holds the GIL, so
thread-based shard and S2 workers cannot scale; with this kernel they
can.

Compiled on demand by :mod:`repro.crypto._gmp_kernel` (see ``load()``
there) into a per-user cache directory; building requires cffi, a C
compiler and the GMP development headers (``libgmp-dev``).  The
``kernel`` extra in ``setup.py`` pulls in cffi; the system pieces come
from the OS.
"""

try:
    from cffi import FFI
except ImportError:  # pragma: no cover - environments without cffi
    FFI = None

#: Name of the compiled extension module.
MODULE_NAME = "_repro_gmp_kernel"

CDEF = """
int repro_powmod_vec(const uint64_t *bases, size_t n_items, size_t base_words,
                     const uint64_t *exp, size_t exp_words,
                     const uint64_t *mod, size_t mod_words,
                     uint64_t *out);
int repro_invert(const uint64_t *a, size_t a_words,
                 const uint64_t *mod, size_t mod_words,
                 uint64_t *out);
"""

SOURCE = r"""
#include <gmp.h>
#include <stdint.h>
#include <stddef.h>
#include <string.h>

/* Fixed-width little-endian word import/export.  order=-1: least
   significant word first; endian=-1: little-endian bytes within each
   word.  Fully specified (never "native") so the wire format is
   identical on every platform. */

static void import_words(mpz_t rop, const uint64_t *words, size_t n_words)
{
    mpz_import(rop, n_words, -1, sizeof(uint64_t), -1, 0, words);
}

static void export_words(uint64_t *words, size_t n_words, const mpz_t op)
{
    size_t count = 0;
    memset(words, 0, n_words * sizeof(uint64_t));
    /* op < mod by construction, so it always fits in n_words. */
    mpz_export(words, &count, -1, sizeof(uint64_t), -1, 0, op);
}

/* out[i] = bases[i] ** exp  mod  mod, for the whole batch in one call.
   Returns 0 on success, -1 for a zero modulus.  The shared exponent and
   modulus are imported once per call; cffi releases the GIL around the
   entire loop. */
int repro_powmod_vec(const uint64_t *bases, size_t n_items, size_t base_words,
                     const uint64_t *exp, size_t exp_words,
                     const uint64_t *mod, size_t mod_words,
                     uint64_t *out)
{
    mpz_t b, e, m, r;
    size_t i;
    int status = 0;

    mpz_init(e);
    mpz_init(m);
    import_words(e, exp, exp_words);
    import_words(m, mod, mod_words);
    if (mpz_sgn(m) == 0) {
        mpz_clear(e);
        mpz_clear(m);
        return -1;
    }
    mpz_init(b);
    mpz_init(r);
    for (i = 0; i < n_items; i++) {
        import_words(b, bases + i * base_words, base_words);
        mpz_powm(r, b, e, m);
        export_words(out + i * mod_words, mod_words, r);
    }
    mpz_clear(b);
    mpz_clear(e);
    mpz_clear(m);
    mpz_clear(r);
    return status;
}

/* out = a ** -1 mod mod.  Returns 1 when the inverse exists, 0 when it
   does not (out untouched), -1 for a zero modulus. */
int repro_invert(const uint64_t *a, size_t a_words,
                 const uint64_t *mod, size_t mod_words,
                 uint64_t *out)
{
    mpz_t a_z, m_z, r;
    int ok;

    mpz_init(a_z);
    mpz_init(m_z);
    import_words(a_z, a, a_words);
    import_words(m_z, mod, mod_words);
    if (mpz_sgn(m_z) == 0) {
        mpz_clear(a_z);
        mpz_clear(m_z);
        return -1;
    }
    mpz_init(r);
    ok = mpz_invert(r, a_z, m_z) != 0;
    if (ok)
        export_words(out, mod_words, r);
    mpz_clear(a_z);
    mpz_clear(m_z);
    mpz_clear(r);
    return ok;
}
"""


def make_ffibuilder():
    """The cffi builder, or ``None`` when cffi is not installed."""
    if FFI is None:
        return None
    builder = FFI()
    builder.cdef(CDEF)
    builder.set_source(MODULE_NAME, SOURCE, libraries=["gmp"])
    return builder


# setuptools' cffi_modules entry point expects a module-level attribute;
# kept lazy-tolerant so importing this file never requires cffi.
ffibuilder = make_ffibuilder()

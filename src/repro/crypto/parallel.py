"""Worker-pool fan-out for the crypto cloud's bulk decrypt batches.

A single query's coalesced per-depth rounds (one ``ZeroTestBatch`` /
one ``StripLayerBatch`` carrying work for *every* list and candidate of
the depth) are the hot path the paper's Section 11 measures; a
:class:`ComputePool` chunks those batches across workers so they can
use more than one core.  Two pool modes, picked by how the GIL can be
escaped on this machine:

* ``mode="thread"`` — a ``ThreadPoolExecutor`` whose chunks run on the
  GIL-free ``gmp-kernel`` backend (:mod:`repro.crypto.kernels`) via a
  thread-local :func:`repro.crypto.backend.use_backend` override.  The
  kernel releases the GIL across each chunk's entire ``powmod_vec``
  call, so threads genuinely overlap — and nothing is pickled, shipped
  or copied: zero IPC.  Requires the compiled kernel.

* ``mode="process"`` — the historical ``ProcessPoolExecutor`` fan-out
  (workers hold the secret key material, any backend).  Chunk transport
  is a fixed-width **shared-memory slab** by default: one
  ``multiprocessing.shared_memory`` segment, created at pool start and
  attached once per worker, divided into per-chunk slots of
  ``slab_items`` × ``value_words`` little-endian 64-bit words (the same
  limb format the kernel speaks, see :mod:`repro.crypto.kernels`).  A
  round's chunk is packed into its slot, the worker decrypts in place,
  and the parent unpacks the results — two memcpy-speed packs per chunk
  instead of pickling big-int lists through a pipe every round.
  ``transport="pickle"`` keeps the old path (it is also the automatic
  fallback for a chunk larger than a slot).

``mode="auto"`` (the default) selects ``thread`` when the kernel is
importable and ``process`` otherwise, so existing callers
(``TopKServer(s2_workers=N)``, the S2 daemon) transparently stop paying
IPC the moment the kernel is available.

Decryption consumes no randomness, so fanning it out changes neither
the crypto cloud's rng stream nor any leakage event — a query served
with a pool is bit-identical to one served without, in every mode and
transport (pinned by ``tests/test_server.py`` and
``tests/test_parallel_pool.py``).

Lifecycle: :meth:`ComputePool.close` tears the executor down; with
``wait=True`` it drains in-flight chunks first (the server's shutdown
path uses this so a concurrent session's batch completes instead of
surfacing a cancellation mid-protocol).  A pool that dies mid-batch —
worker killed, executor shut down underneath a caller — raises the
typed :class:`~repro.exceptions.ComputePoolError` rather than leaking
``BrokenProcessPool``/``CancelledError`` through an S2 handler.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from multiprocessing import shared_memory

from repro.crypto import backend, kernels
from repro.exceptions import ComputePoolError
from repro.obs.metrics import REGISTRY

# Worker-process state, installed by the pool initializer.
_WORKER: dict = {}

# Pool cost instruments (observation only: recorded after each batch /
# chunk completes, never on the value path).
_BATCH_SECONDS = REGISTRY.histogram(
    "repro_pool_batch_seconds",
    "Compute-pool batch wall-clock, fan-out and gather included.",
    labelnames=("op",),
)
_CHUNK_SECONDS = REGISTRY.histogram(
    "repro_pool_chunk_seconds",
    "Per-chunk wall-clock from submit to result.",
    labelnames=("op",),
)
_SLAB_FALLBACKS = REGISTRY.counter(
    "repro_pool_slab_fallbacks_total",
    "Chunks that outgrew their shared-memory slot and fell back to "
    "pickle transport.",
)

# Thread-local batch observer: the server's job runner installs a
# callback here (observe_batches) so compute-pool batches served on the
# job's own thread (inprocess transport) attribute to that job as
# PoolBatch events.  Callback errors are swallowed — observation only.
_batch_observer = threading.local()


@contextlib.contextmanager
def observe_batches(callback):
    """Scope a per-thread pool-batch callback: ``callback(op, values,
    seconds)`` fires after every batch :class:`ComputePool` serves on
    this thread."""
    previous = getattr(_batch_observer, "callback", None)
    _batch_observer.callback = callback
    try:
        yield
    finally:
        _batch_observer.callback = previous


def _attach_slab(shm_name: str | None, slot_bytes: int) -> None:
    if shm_name is None:
        return
    # Attaching re-registers the segment with the resource tracker
    # (CPython < 3.13 tracks attaches too), but pool workers share the
    # parent's tracker process and its cache is a set, so the extra
    # registrations are no-ops and the parent's single unlink-time
    # unregister settles the books — do NOT unregister here, that would
    # strip the parent's registration and make its unlink warn.
    shm = shared_memory.SharedMemory(name=shm_name)
    _WORKER["shm"] = shm
    _WORKER["slot_bytes"] = slot_bytes


def _init_worker(
    keypair, dj, backend_name: str, shm_name: str | None = None, slot_bytes: int = 0
) -> None:
    backend.set_backend(backend_name)
    _WORKER["keypair"] = keypair
    _WORKER["dj"] = dj
    _attach_slab(shm_name, slot_bytes)


def _decrypt_chunk(values: list[int]) -> list[int]:
    """Paillier-decrypt bare ciphertext values to plaintext ints."""
    return _WORKER["keypair"].secret_key.raw_decrypt_batch(values)


def _strip_chunk(values: list[int]) -> list[int]:
    """DJ-decrypt bare layered-ciphertext values to inner plaintext ints."""
    from repro.crypto.damgard_jurik import LayeredCiphertext

    dj = _WORKER["dj"]
    cts = [LayeredCiphertext(v, dj) for v in values]
    return dj.decrypt_batch(cts, _WORKER["keypair"])


_CHUNK_OPS = {"decrypt": _decrypt_chunk, "strip": _strip_chunk}


def _chunk_shm(op: str, slot: int, count: int, words: int) -> int:
    """One chunk through the shared-memory slab: unpack the inputs from
    slot ``slot``, compute, pack the results back in place.  Only the
    four scalars above cross the pipe."""
    shm = _WORKER["shm"]
    offset = slot * _WORKER["slot_bytes"]
    values = kernels.unpack_ints(shm.buf, words, count, offset)
    out = _CHUNK_OPS[op](values)
    kernels.pack_ints(out, words, out=shm.buf, offset=offset)
    return count


def _warmup() -> None:
    return None


def pool_start_method() -> str:
    """The start method every pool here uses (fork where available).

    Exposed so callers can tell whether worker processes inherit the
    parent's memory (fork: module-level stores ship for free) or start
    empty (spawn: state must travel through initializer arguments).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def make_pool_executor(workers: int, initializer, initargs) -> ProcessPoolExecutor:
    """A worker-process pool with the platform's cheapest start method.

    Shared by the crypto :class:`ComputePool` and the server's
    query-worker pool so start-method policy lives in one place: fork
    starts workers cheaply on POSIX; spawn works too because the
    initializer arguments carry everything workers need.

    Workers are spawned eagerly here rather than at first submit:
    executors fork lazily, and deferring the forks until a session or
    transport thread is live would fork a multi-threaded process (lock
    state inherited mid-held, ``DeprecationWarning`` on 3.12+).  Build
    pools before starting threads where possible — the server constructs
    its S2 pool in ``__init__`` for exactly this reason.  Fork stays
    preferred even when threads exist: the non-fork methods re-import
    ``__main__`` in each worker, which breaks REPL/stdin parents
    outright, while a late fork only risks the (documented) 3.12+
    warning from another pool's manager threads.
    """
    mp_context = multiprocessing.get_context(pool_start_method())
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context,
        initializer=initializer,
        initargs=initargs,
    )
    # One submit per worker forks the whole pool now (the executor adds
    # a process per pending item until max_workers is reached).
    for future in [executor.submit(_warmup) for _ in range(workers)]:
        future.result()
    return executor


def _chunks(values: list, n: int) -> list[list]:
    """Split into exactly ``n`` contiguous chunks whose sizes differ by
    at most one (the first ``len % n`` chunks take the extra item).

    Balanced on purpose: the previous ceil-division split could emit a
    runt tail chunk below ``min_batch`` (25 items over 3 workers went
    9/9/7) — with ``n <= len // min_batch`` the balanced split keeps
    every chunk at ``len // n >= min_batch`` items.
    """
    base, extra = divmod(len(values), n)
    out, lo = [], 0
    for i in range(n):
        hi = lo + base + (1 if i < extra else 0)
        out.append(values[lo:hi])
        lo = hi
    return out


def _chunk_count(n_values: int, workers: int, min_batch: int) -> int:
    """How many chunks to cut: never so many that a chunk drops below
    ``min_batch`` items (tiny chunks cost more to ship than to decrypt)."""
    return max(1, min(workers, n_values // max(min_batch, 1)))


def _release_slab(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


class ComputePool:
    """A persistent worker pool for chunked secret-key operations.

    Parameters
    ----------
    keypair / dj:
        The secret key material the workers need (process mode pickles
        it once per worker at pool start-up; thread mode shares it).
    workers:
        Pool size; defaults to the machine's core count.
    min_batch:
        Batches smaller than this are computed inline — below it the
        fan-out round-trip costs more than the decryptions.
    mode:
        ``"thread"`` (kernel-backed, zero IPC), ``"process"``
        (worker processes), or ``"auto"``: thread when the compiled
        ``gmp-kernel`` is available here, process otherwise.
    transport:
        Process mode only: ``"shm"`` ships chunks through the
        shared-memory slab (default), ``"pickle"`` through the
        executor's ordinary argument pickling.
    slab_items:
        Capacity of one slab slot, in values.  A chunk that outgrows
        its slot falls back to pickle transport for that call.
    """

    def __init__(
        self,
        keypair,
        dj,
        workers: int | None = None,
        min_batch: int = 8,
        mode: str = "auto",
        transport: str = "shm",
        slab_items: int = 4096,
    ):
        if mode not in ("auto", "thread", "process"):
            raise ValueError(f"unknown compute-pool mode: {mode!r}")
        if transport not in ("shm", "pickle"):
            raise ValueError(f"unknown compute-pool transport: {transport!r}")
        if mode == "auto":
            mode = "thread" if backend.kernel_available() else "process"
        elif mode == "thread" and not backend.kernel_available():
            raise ValueError(
                "mode='thread' requires the compiled gmp-kernel backend "
                f"(unavailable here: {kernels.kernel_unavailable_reason()})"
            )
        self.workers = workers or os.cpu_count() or 1
        self.min_batch = min_batch
        self.mode = mode
        self.transport = transport if mode == "process" else "none"
        self.slab_items = slab_items
        self._keypair = keypair
        self._dj = dj
        self._shm: shared_memory.SharedMemory | None = None
        self._slot_bytes = 0
        self._finalizer = None
        self._lock = threading.Lock()
        if mode == "thread":
            # Chunks run under a thread-local backend override on the
            # GIL-free kernel; key material is shared in-process.
            self._kernel_backend = backend.GmpKernelBackend()
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="compute-pool"
            )
        else:
            shm_name = None
            if self.transport == "shm":
                # Slots are sized for the widest value the pool ever
                # moves — DJ ciphertexts in Z_{N^{s+1}} (strip), above
                # Paillier's Z_{N^2} (decrypt) — but each op packs at
                # its own width, so decrypt rounds move ~1/3 fewer
                # bytes than one-width-fits-all would.  Results are
                # never wider than inputs, so a slot serves request and
                # reply in place.
                self._op_words = {
                    "decrypt": kernels.words_for(keypair.public_key.n_squared - 1)
                }
                widest = keypair.public_key.n_squared
                if dj is not None:
                    widest = max(widest, dj.n_s1)
                    self._op_words["strip"] = kernels.words_for(widest - 1)
                value_words = kernels.words_for(widest - 1)
                self._slot_bytes = slab_items * value_words * kernels.WORD_BYTES
                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(1, self.workers * self._slot_bytes)
                )
                self._finalizer = weakref.finalize(self, _release_slab, self._shm)
                shm_name = self._shm.name
            self._executor = make_pool_executor(
                self.workers,
                _init_worker,
                (keypair, dj, backend.get_backend().name, shm_name, self._slot_bytes),
            )
        self._closed = False

    # -- chunked operations ----------------------------------------------

    def _local(self, op: str, values: list[int]) -> list[int]:
        if op == "decrypt":
            return self._keypair.secret_key.raw_decrypt_batch(values)
        from repro.crypto.damgard_jurik import LayeredCiphertext

        cts = [LayeredCiphertext(v, self._dj) for v in values]
        return self._dj.decrypt_batch(cts, self._keypair)

    def _thread_chunk(self, op: str, values: list[int]) -> list[int]:
        with backend.use_backend(self._kernel_backend):
            return self._local(op, values)

    def _submit_chunks(self, op: str, chunks: list[list[int]]) -> list:
        if self.mode == "thread":
            return [
                (
                    self._executor.submit(self._thread_chunk, op, chunk),
                    None,
                    time.perf_counter(),
                )
                for chunk in chunks
            ]
        futures = []
        words = self._op_words.get(op, 0) if self.transport == "shm" else 0
        slot_items = (
            self._slot_bytes // (words * kernels.WORD_BYTES) if words else 0
        )
        for slot, chunk in enumerate(chunks):
            if words and len(chunk) <= slot_items:
                # n_chunks <= workers, so chunk index == a private slot;
                # the slot is not reused until this call consumed its
                # result, and any worker may serve it (all attach the
                # whole segment).
                kernels.pack_ints(
                    chunk,
                    words,
                    out=self._shm.buf,
                    offset=slot * self._slot_bytes,
                )
                futures.append(
                    (
                        self._executor.submit(_chunk_shm, op, slot, len(chunk), words),
                        (slot, words),
                        time.perf_counter(),
                    )
                )
            else:
                if words:
                    # Slab configured but this chunk outgrew its slot.
                    _SLAB_FALLBACKS.inc()
                futures.append(
                    (
                        self._executor.submit(_CHUNK_OPS[op], chunk),
                        None,
                        time.perf_counter(),
                    )
                )
        return futures

    def _gather(self, op: str, futures: list) -> list[int]:
        out: list[int] = []
        chunk_seconds = _CHUNK_SECONDS.labels(op=op)
        for future, placement, submitted in futures:
            result = future.result()
            chunk_seconds.observe(time.perf_counter() - submitted)
            if placement is None:
                out.extend(result)
            else:
                slot, words = placement
                out.extend(
                    kernels.unpack_ints(
                        self._shm.buf, words, result, slot * self._slot_bytes
                    )
                )
        return out

    def _run(self, op: str, values: list[int]) -> list[int]:
        if self._closed:
            raise RuntimeError("compute pool is closed")
        n_chunks = _chunk_count(len(values), self.workers, self.min_batch)
        if len(values) < max(self.min_batch, 2) or self.workers < 2 or n_chunks < 2:
            started = time.perf_counter()
            result = self._local(op, values)
            self._finish_batch(op, len(values), time.perf_counter() - started)
            return result
        try:
            with self._lock:
                # One batch in flight at a time: slab slots are indexed
                # by chunk, so two concurrent batches must serialize
                # (the executor below still fans each batch out).
                started = time.perf_counter()
                futures = self._submit_chunks(op, _chunks(values, n_chunks))
                result = self._gather(op, futures)
            self._finish_batch(op, len(values), time.perf_counter() - started)
            return result
        except (BrokenExecutor, CancelledError) as exc:
            raise ComputePoolError(
                f"compute pool died mid-batch ({type(exc).__name__})"
            ) from exc
        except RuntimeError as exc:
            if self._closed or "shutdown" in str(exc):
                raise ComputePoolError(
                    "compute pool was shut down under an in-flight batch"
                ) from exc
            raise

    @staticmethod
    def _finish_batch(op: str, n_values: int, seconds: float) -> None:
        """Record one served batch: histogram plus the thread-local
        observer (PoolBatch events for the job being served, if the
        server installed one on this thread).  Observation only — a
        broken observer never disturbs the value path."""
        _BATCH_SECONDS.labels(op=op).observe(seconds)
        callback = getattr(_batch_observer, "callback", None)
        if callback is not None:
            try:
                callback(op, n_values, seconds)
            except Exception:
                pass

    def decrypt_values(self, values: list[int]) -> list[int]:
        """Paillier decryption of bare ciphertext values, fanned out."""
        return self._run("decrypt", values)

    def strip_values(self, values: list[int]) -> list[int]:
        """DJ outer-layer decryption of bare values, fanned out."""
        return self._run("strip", values)

    # -- lifecycle -------------------------------------------------------

    def close(self, wait: bool = False) -> None:
        """Shut the worker pool down (idempotent).

        ``wait=True`` drains in-flight chunks first, so a caller blocked
        in a batch gets its results instead of a mid-batch cancellation
        — the server teardown path uses this.  ``wait=False`` cancels
        queued chunks immediately; a caller racing it sees
        :class:`~repro.exceptions.ComputePoolError`.
        """
        if self._closed:
            return
        self._closed = True
        if wait:
            self._executor.shutdown(wait=True)
        else:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._finalizer is not None:
            self._finalizer()
            self._shm = None

    def __enter__(self) -> "ComputePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

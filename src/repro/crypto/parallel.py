"""Process-pool fan-out for the crypto cloud's bulk decrypt batches.

Pure-Python big-int arithmetic holds the GIL, so the only way a single
query's coalesced per-depth rounds (one ``ZeroTestBatch`` / one
``StripLayerBatch`` carrying work for *every* list and candidate of the
depth) can use more than one core is to fan the decryptions out to
worker processes.  A :class:`ComputePool` owns a persistent
:class:`~concurrent.futures.ProcessPoolExecutor` whose workers hold the
secret key material; batches are chunked evenly across workers and only
bare integers cross the process boundary (ciphertext values out,
plaintexts back), so IPC cost stays a small fraction of the modular
exponentiations it buys back.

Decryption consumes no randomness, so fanning it out changes neither
the crypto cloud's rng stream nor any leakage event — a query served
with a pool is bit-identical to one served without (pinned by
``tests/test_server.py``).

Key material ships to workers via the pool initializer; the randomizer
pools and hoisted rngs are excluded from pickling (see
``PaillierPublicKey.__getstate__``), so the payload is a handful of
integers per worker.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.crypto import backend

# Worker-process state, installed by the pool initializer.
_WORKER: dict = {}


def _init_worker(keypair, dj, backend_name: str) -> None:
    backend.set_backend(backend_name)
    _WORKER["keypair"] = keypair
    _WORKER["dj"] = dj


def _decrypt_chunk(values: list[int]) -> list[int]:
    """Paillier-decrypt bare ciphertext values to plaintext ints."""
    return _WORKER["keypair"].secret_key.raw_decrypt_batch(values)


def _strip_chunk(values: list[int]) -> list[int]:
    """DJ-decrypt bare layered-ciphertext values to inner plaintext ints."""
    from repro.crypto.damgard_jurik import LayeredCiphertext

    dj = _WORKER["dj"]
    cts = [LayeredCiphertext(v, dj) for v in values]
    return dj.decrypt_batch(cts, _WORKER["keypair"])


def _warmup() -> None:
    return None


def pool_start_method() -> str:
    """The start method every pool here uses (fork where available).

    Exposed so callers can tell whether worker processes inherit the
    parent's memory (fork: module-level stores ship for free) or start
    empty (spawn: state must travel through initializer arguments).
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def make_pool_executor(workers: int, initializer, initargs) -> ProcessPoolExecutor:
    """A worker-process pool with the platform's cheapest start method.

    Shared by the crypto :class:`ComputePool` and the server's
    query-worker pool so start-method policy lives in one place: fork
    starts workers cheaply on POSIX; spawn works too because the
    initializer arguments carry everything workers need.

    Workers are spawned eagerly here rather than at first submit:
    executors fork lazily, and deferring the forks until a session or
    transport thread is live would fork a multi-threaded process (lock
    state inherited mid-held, ``DeprecationWarning`` on 3.12+).  Build
    pools before starting threads where possible — the server constructs
    its S2 pool in ``__init__`` for exactly this reason.  Fork stays
    preferred even when threads exist: the non-fork methods re-import
    ``__main__`` in each worker, which breaks REPL/stdin parents
    outright, while a late fork only risks the (documented) 3.12+
    warning from another pool's manager threads.
    """
    mp_context = multiprocessing.get_context(pool_start_method())
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context,
        initializer=initializer,
        initargs=initargs,
    )
    # One submit per worker forks the whole pool now (the executor adds
    # a process per pending item until max_workers is reached).
    for future in [executor.submit(_warmup) for _ in range(workers)]:
        future.result()
    return executor


def _chunks(values: list, n: int) -> list[list]:
    size = (len(values) + n - 1) // n
    return [values[i : i + size] for i in range(0, len(values), size)]


def _chunk_count(n_values: int, workers: int, min_batch: int) -> int:
    """How many chunks to cut: never so many that a chunk drops below
    ``min_batch`` items (tiny chunks cost more to pickle than to decrypt)."""
    return max(1, min(workers, n_values // max(min_batch, 1)))


class ComputePool:
    """A persistent worker pool for chunked secret-key operations.

    Parameters
    ----------
    keypair / dj:
        The secret key material the workers need (pickled once per
        worker at pool start-up).
    workers:
        Pool size; defaults to the machine's core count.
    min_batch:
        Batches smaller than this are computed inline — below it the
        pickling round-trip costs more than the decryptions.
    """

    def __init__(self, keypair, dj, workers: int | None = None, min_batch: int = 8):
        self.workers = workers or os.cpu_count() or 1
        self.min_batch = min_batch
        self._keypair = keypair
        self._dj = dj
        self._executor = make_pool_executor(
            self.workers, _init_worker, (keypair, dj, backend.get_backend().name)
        )
        self._closed = False

    # -- chunked operations ----------------------------------------------

    def _run(self, fn, local_fn, values: list[int]) -> list[int]:
        if self._closed:
            raise RuntimeError("compute pool is closed")
        n_chunks = _chunk_count(len(values), self.workers, self.min_batch)
        if len(values) < max(self.min_batch, 2) or self.workers < 2 or n_chunks < 2:
            return local_fn(values)
        futures = [
            self._executor.submit(fn, chunk)
            for chunk in _chunks(values, n_chunks)
        ]
        out: list[int] = []
        for future in futures:
            out.extend(future.result())
        return out

    def decrypt_values(self, values: list[int]) -> list[int]:
        """Paillier decryption of bare ciphertext values, fanned out."""
        return self._run(
            _decrypt_chunk,
            self._keypair.secret_key.raw_decrypt_batch,
            values,
        )

    def strip_values(self, values: list[int]) -> list[int]:
        """DJ outer-layer decryption of bare values, fanned out."""
        from repro.crypto.damgard_jurik import LayeredCiphertext

        def local(vals: list[int]) -> list[int]:
            cts = [LayeredCiphertext(v, self._dj) for v in vals]
            return self._dj.decrypt_batch(cts, self._keypair)

        return self._run(_strip_chunk, local, values)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ComputePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""HMAC-SHA-256 based pseudo-random functions.

The paper instantiates the PRFs used by EHL/EHL+ with HMAC-SHA-256
(Section 11: "We used the HMAC-SHA-256 as the pseudo-random function for
the EHL and EHL+ encoding"); we do the same using the standard library.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.rng import SecureRandom

KEY_BYTES = 32


class Prf:
    """A keyed PRF ``F_k : bytes -> Z`` built from HMAC-SHA-256.

    Outputs longer than 256 bits are produced in counter mode so that
    :meth:`to_range` can map uniformly into the large Paillier group
    ``Z_N`` that EHL+ hashes into.
    """

    def __init__(self, key: bytes):
        if len(key) == 0:
            raise ValueError("PRF key must be non-empty")
        self.key = key

    def digest(self, message: bytes, out_bytes: int = 32) -> bytes:
        """Return ``out_bytes`` of PRF output for ``message``."""
        blocks = []
        counter = 0
        while sum(len(b) for b in blocks) < out_bytes:
            blocks.append(
                hmac.new(
                    self.key, counter.to_bytes(4, "big") + message, hashlib.sha256
                ).digest()
            )
            counter += 1
        return b"".join(blocks)[:out_bytes]

    def to_int(self, message: bytes, bits: int = 256) -> int:
        """Return the PRF output as an integer in ``[0, 2**bits)``."""
        nbytes = (bits + 7) // 8
        value = int.from_bytes(self.digest(message, nbytes), "big")
        excess = nbytes * 8 - bits
        return value >> excess

    def to_range(self, message: bytes, modulus: int) -> int:
        """Return the PRF output reduced into ``[0, modulus)``.

        We draw 128 extra bits before reducing, which keeps the modular
        bias below ``2**-128`` — statistically indistinguishable from
        uniform for any modulus used here.
        """
        bits = modulus.bit_length() + 128
        return self.to_int(message, bits) % modulus

    def to_bit_position(self, message: bytes, table_size: int) -> int:
        """Hash to a position in a length-``table_size`` bit table (EHL)."""
        return self.to_range(message, table_size)


def derive_keys(master: bytes, count: int, label: str = "ehl") -> list[Prf]:
    """Derive ``count`` independent PRFs from a master key.

    Mirrors the paper's "generate ``s`` secure keys ``k_1 ... k_s``": each
    subkey is ``HMAC(master, label || i)``.
    """
    prfs = []
    for i in range(count):
        subkey = hmac.new(
            master, f"{label}:{i}".encode("utf-8"), hashlib.sha256
        ).digest()
        prfs.append(Prf(subkey))
    return prfs


def random_key(rng: SecureRandom | None = None) -> bytes:
    """Return a fresh ``KEY_BYTES``-byte PRF key."""
    rng = rng or SecureRandom()
    return rng.randbytes(KEY_BYTES)


def encode_object_id(object_id: int | str | bytes) -> bytes:
    """Canonical byte encoding of an object identifier for PRF input.

    Integers, strings and raw bytes are all accepted so that callers can
    use whatever primary-key representation their relation has; the
    encodings are prefix-tagged to remain injective across types.
    """
    if isinstance(object_id, bytes):
        return b"b:" + object_id
    if isinstance(object_id, str):
        return b"s:" + object_id.encode("utf-8")
    if isinstance(object_id, int):
        sign = b"-" if object_id < 0 else b"+"
        magnitude = abs(object_id)
        return b"i:" + sign + magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    raise TypeError(f"unsupported object id type: {type(object_id).__name__}")

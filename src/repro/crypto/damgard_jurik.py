"""The Damgård–Jurik generalized Paillier cryptosystem (PKC 2001).

For a Paillier modulus ``N`` and an expansion degree ``s >= 1``:

* message space   ``Z_{N^s}``
* ciphertext space ``Z_{N^{s+1}}``
* ``Enc_s(m; r) = (1 + N)^m * r^{N^s}  mod N^{s+1}``

``s = 1`` is exactly Paillier.  The construction in the paper only uses
``s = 2`` for the *layered* encryption ``E2(Enc(m))`` of Section 3.3: a
Paillier ciphertext (an element of ``Z_{N^2}``) is treated as a DJ
plaintext, and the DJ homomorphisms then operate on the inner Paillier
ciphertext:

* ``E2(c1) * E2(c2)        = E2(c1 + c2 mod N^2)``   (outer addition)
* ``E2(c1) ^ c2            = E2(c1 * c2 mod N^2)``   (outer scalar mult.)

Because Paillier's homomorphic *addition* is integer *multiplication* mod
``N^2``, the outer scalar multiplication realizes exactly the identity the
paper relies on::

    E2(Enc(m1)) ^ Enc(m2)  =  E2(Enc(m1) * Enc(m2))  =  E2(Enc(m1 + m2))

Decryption implements the recursive discrete-log extraction from the
original Damgård–Jurik paper.
"""

from __future__ import annotations

from repro.crypto import backend
from repro.crypto.paillier import Ciphertext, PaillierKeypair, PaillierPublicKey
from repro.crypto.rng import SecureRandom
from repro.exceptions import DecryptionError, KeyMismatchError


class DamgardJurik:
    """Damgård–Jurik encryption of degree ``s`` sharing a Paillier modulus.

    The public operations (:meth:`encrypt`, homomorphic combination via
    :class:`LayeredCiphertext`) only need the public key; :meth:`decrypt`
    needs the secret key of the underlying :class:`PaillierKeypair`.
    """

    _POOL_SIZE = 64
    _POOL_PICKS = 6

    def __init__(self, public_key: PaillierPublicKey, s: int = 2):
        if s < 1:
            raise ValueError("expansion degree s must be >= 1")
        self.public_key = public_key
        self.s = s
        self.n = public_key.n
        self.n_s = public_key.n**s          # plaintext modulus N^s
        self.n_s1 = public_key.n ** (s + 1)  # ciphertext modulus N^{s+1}
        self._pool: list[int] | None = None
        self._rng: SecureRandom | None = None

    def __getstate__(self):
        # Per-process caches (randomizer pool, hoisted default rng) are
        # excluded so DJ instances ship cheaply to worker processes;
        # default dict-state unpickling restores everything else.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_rng"] = None
        return state

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DamgardJurik)
            and self.public_key == other.public_key
            and self.s == other.s
        )

    def __hash__(self) -> int:
        return hash(("dj", self.n, self.s))

    # -- encryption ------------------------------------------------------

    def _fresh_rng(self) -> SecureRandom:
        """Hoisted default randomness source (see the Paillier twin)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = SecureRandom()
        return rng

    def _randomizer(self, rng: SecureRandom) -> int:
        """A fresh randomizer ``r^{N^s} mod N^{s+1}`` from the cached pool.

        Same randomizer-caching optimization as the Paillier key uses.
        """
        pool = self._pool
        if pool is None:
            pool_rng = SecureRandom()
            pool = self._pool = backend.powmod_vec(
                [pool_rng.rand_unit(self.n) for _ in range(self._POOL_SIZE)],
                self.n_s,
                self.n_s1,
            )
        out = 1
        for _ in range(self._POOL_PICKS):
            out = out * pool[rng.randint_below(self._POOL_SIZE)] % self.n_s1
        return out

    def _g_pow(self, m: int) -> int:
        """``(1 + N)^m mod N^{s+1}`` via the binomial expansion.

        ``(1+N)^m = Σ_{i=0}^{s} C(m, i) N^i  (mod N^{s+1})`` — a handful of
        big-int multiplications instead of an ``N^s``-sized exponentiation
        (the classic Damgård–Jurik implementation trick).
        """
        m %= self.n_s
        result = 1
        term = 1  # C(m, i) * N^i, built incrementally
        for i in range(1, self.s + 1):
            term = term * (m - i + 1) // i
            result = (result + term % self.n_s1 * pow(self.n, i, self.n_s1)) % self.n_s1
        return result

    def raw_encrypt(self, m: int, rng: SecureRandom) -> int:
        """Encrypt ``m`` in ``Z_{N^s}``; returns the bare integer."""
        return self._g_pow(m) * self._randomizer(rng) % self.n_s1

    def encrypt(self, m: int, rng: SecureRandom | None = None) -> "LayeredCiphertext":
        """Encrypt an integer plaintext (e.g. a bit, or a Paillier ct value)."""
        rng = rng or self._fresh_rng()
        return LayeredCiphertext(self.raw_encrypt(m, rng), self)

    def encrypt_ciphertext(
        self, inner: Ciphertext, rng: SecureRandom | None = None
    ) -> "LayeredCiphertext":
        """Layered encryption ``E2(Enc(m))`` of a Paillier ciphertext."""
        if inner.public_key != self.public_key:
            raise KeyMismatchError("inner ciphertext under a different modulus")
        if self.s < 2:
            raise ValueError("layered encryption requires s >= 2")
        return self.encrypt(inner.value, rng)

    # -- decryption ------------------------------------------------------

    def _dlog(self, a: int) -> int:
        """Extract ``m`` from ``a = (1 + N)^m mod N^{s+1}``.

        The iterative algorithm of Damgård–Jurik, Theorem 1.
        """
        n = self.n
        i = 0
        for j in range(1, self.s + 1):
            n_j = n**j
            t1 = ((a % n ** (j + 1)) - 1) // n
            t2 = i
            factorial = 1
            for k in range(2, j + 1):
                i = i - 1
                t2 = t2 * i % n_j
                factorial *= k
                t1 = (t1 - t2 * n ** (k - 1) * pow(factorial, -1, n_j)) % n_j
            i = t1
        return i % self.n_s

    def _crt_exponents(self, keypair: PaillierKeypair):
        """Per-keypair CRT constants for decryption.

        Cached *on the secret key* (fixed for a ``(keypair, s)`` pair;
        the two big modular inversions would otherwise recur on every
        batch of the crypto cloud's hottest path).  Deliberately not
        cached on this DJ instance: S1 holds the same object, and
        secret-derived material must stay confined to the key the
        crypto cloud owns.
        """
        sk = keypair.secret_key
        cached = sk.dj_crt_cache.get(self.s)
        if cached is not None:
            return cached
        p, q = sk.p, sk.q
        lam = sk.lam
        # d = 1 mod N^s and d = 0 mod lambda (CRT); then c^d = (1+N)^m.
        d = lam * backend.invert(lam, self.n_s)
        p_s1 = p ** (self.s + 1)
        q_s1 = q ** (self.s + 1)
        # |Z*_{p^{s+1}}| = p^s (p - 1); reduce the exponent per factor.
        dp = d % (p**self.s * (p - 1))
        dq = d % (q**self.s * (q - 1))
        p_s1_inv = backend.invert(p_s1, q_s1)
        constants = (p_s1, q_s1, dp, dq, p_s1_inv)
        sk.dj_crt_cache[self.s] = constants
        return constants

    def _check_batch(self, cts: list["LayeredCiphertext"], keypair: PaillierKeypair):
        if keypair.public_key != self.public_key:
            raise KeyMismatchError("keypair does not match this DJ instance")
        for c in cts:
            if c.scheme != self:
                raise KeyMismatchError("ciphertext from a different DJ instance")
            if backend.gcd(c.value, self.n) != 1:
                raise DecryptionError("ciphertext is not a unit")

    def decrypt(self, c: "LayeredCiphertext", keypair: PaillierKeypair) -> int:
        """Decrypt to an element of ``Z_{N^s}``.

        Uses a CRT split over ``p^{s+1}`` / ``q^{s+1}`` with the exponent
        reduced modulo each prime-power group order — the same speed trick
        the Paillier secret key uses, worth ~4x on the crypto cloud's
        hottest operation (layer stripping).
        """
        return self.decrypt_batch([c], keypair)[0]

    def decrypt_batch(
        self, cts: list["LayeredCiphertext"], keypair: PaillierKeypair
    ) -> list[int]:
        """Batch decryption: the CRT constants and the backend's shared
        exponent/modulus setup are paid once for the whole batch."""
        if not cts:
            return []
        self._check_batch(cts, keypair)
        p_s1, q_s1, dp, dq, p_s1_inv = self._crt_exponents(keypair)
        aps = backend.powmod_vec([c.value % p_s1 for c in cts], dp, p_s1)
        aqs = backend.powmod_vec([c.value % q_s1 for c in cts], dq, q_s1)
        out = []
        for ap, aq in zip(aps, aqs):
            u = (aq - ap) * p_s1_inv % q_s1
            out.append(self._dlog((ap + p_s1 * u) % self.n_s1))
        return out

    def decrypt_inner(self, c: "LayeredCiphertext", keypair: PaillierKeypair) -> Ciphertext:
        """Strip the outer layer: ``E2(Enc(m))`` -> ``Enc(m)``.

        This is what the crypto cloud computes inside ``RecoverEnc``
        (Algorithm 5).
        """
        return self.decrypt_inner_batch([c], keypair)[0]

    def wrap_inner_value(self, value: int) -> Ciphertext:
        """Wrap a decrypted DJ plaintext as the inner Paillier ciphertext."""
        return Ciphertext(value % self.public_key.n_squared, self.public_key)

    def decrypt_inner_batch(
        self, cts: list["LayeredCiphertext"], keypair: PaillierKeypair
    ) -> list[Ciphertext]:
        """Batch layer stripping — the crypto cloud's hottest operation."""
        return [self.wrap_inner_value(v) for v in self.decrypt_batch(cts, keypair)]

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of one DJ ciphertext."""
        return (self.n_s1.bit_length() + 7) // 8


class LayeredCiphertext:
    """A Damgård–Jurik ciphertext with the outer-layer homomorphisms.

    ``a + b`` adds the (inner) plaintexts, ``a * k`` multiplies the inner
    plaintext by the integer ``k``, and ``a.scalar_ct(c)`` multiplies the
    inner plaintext by a Paillier ciphertext *value* — the operation
    written ``E2(t)^{Enc(x)}`` in the paper.
    """

    __slots__ = ("value", "scheme")

    def __init__(self, value: int, scheme: DamgardJurik):
        self.value = value
        self.scheme = scheme

    def _check(self, other: "LayeredCiphertext") -> None:
        if self.scheme != other.scheme:
            raise KeyMismatchError("cannot combine DJ ciphertexts across instances")

    def __add__(self, other):
        if isinstance(other, LayeredCiphertext):
            self._check(other)
            return LayeredCiphertext(
                self.value * other.value % self.scheme.n_s1, self.scheme
            )
        return NotImplemented

    def __neg__(self):
        # Group inverse == encryption of the negated plaintext.
        return LayeredCiphertext(
            backend.invert(self.value, self.scheme.n_s1), self.scheme
        )

    def __sub__(self, other):
        if isinstance(other, LayeredCiphertext):
            self._check(other)
            return self + (-other)
        return NotImplemented

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            return NotImplemented
        return LayeredCiphertext(
            backend.powmod(self.value, scalar % self.scheme.n_s, self.scheme.n_s1),
            self.scheme,
        )

    __rmul__ = __mul__

    def scalar_ct(self, inner: Ciphertext) -> "LayeredCiphertext":
        """Outer scalar-multiplication by a Paillier ciphertext value.

        Realizes ``E2(t)^{Enc(x)}``: the inner plaintext ``t`` becomes
        ``t * Enc(x) mod N^2``.  When ``t`` is a bit this selects either
        the zero word (``t = 0``) or the Paillier ciphertext ``Enc(x)``
        (``t = 1``) — the homomorphic multiplexer at the heart of
        ``SecWorst``/``SecBest``/``SecUpdate``.
        """
        if inner.public_key != self.scheme.public_key:
            raise KeyMismatchError("inner ciphertext under a different modulus")
        return self * inner.value

    def __repr__(self) -> str:
        return f"LayeredCiphertext(s={self.scheme.s}, 0x{self.value:x})"

    def serialized_size(self) -> int:
        """Byte size on the wire."""
        return self.scheme.ciphertext_bytes

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian serialization."""
        return self.value.to_bytes(self.scheme.ciphertext_bytes, "big")

    @classmethod
    def from_bytes(cls, data: bytes, scheme: DamgardJurik) -> "LayeredCiphertext":
        """Inverse of :meth:`to_bytes`."""
        return cls(int.from_bytes(data, "big"), scheme)


def layered_select(
    dj: DamgardJurik,
    bit: "LayeredCiphertext",
    if_one: Ciphertext,
    if_zero: Ciphertext,
) -> "LayeredCiphertext":
    """Homomorphic mux: ``E2(t*Enc(a) + (1-t)*Enc(b))`` for an encrypted bit.

    Semantically this is the paper's expression
    ``E2(t)^{Enc(a)} * (E2(1) * E2(t)^{-1})^{Enc(b)}`` from Algorithms 4
    and 6; we evaluate the algebraically identical (and cheaper) telescoped
    form ``E2(t)^{(Enc(a) - Enc(b))} * E2(Enc(b))`` — the inner value is
    ``t*(c_a - c_b) + c_b``, which is exactly ``c_a`` when ``t = 1`` and
    ``c_b`` when ``t = 0``.  One big exponentiation instead of three.
    """
    return layered_one_hot_select(dj, [bit], [if_one], if_zero)


def layered_one_hot_select(
    dj: DamgardJurik,
    bits: list["LayeredCiphertext"],
    options: list[Ciphertext],
    default: Ciphertext,
) -> "LayeredCiphertext":
    """Generalized mux over a one-hot encrypted selector.

    Given at most one ``bits[i] = E2(1)`` (all others ``E2(0)``), returns
    ``E2(Enc(options[i]))`` — or ``E2(Enc(default))`` when every bit is
    zero.  Inner value: ``Σ_i t_i (c_i - c_default) + c_default``; the
    integer cancellation leaves exactly one live ciphertext value.
    """
    n2 = dj.public_key.n_squared
    acc = dj.encrypt(default.value)
    for bit, option in zip(bits, options):
        acc = acc + bit * ((option.value - default.value) % n2)
    return acc

"""Python face of the GIL-free GMP batch kernel.

Two things live here:

* **The limb format.**  :func:`words_for`, :func:`pack_ints` and
  :func:`unpack_ints` define the one fixed-width integer wire format the
  native tier uses everywhere: arrays of 64-bit words, least-significant
  word first, little-endian bytes within each word.  The kernel's C side
  (``mpz_import``/``mpz_export`` with ``order=-1, endian=-1``) and the
  compute pool's shared-memory slab transport both speak exactly this
  format, so a slab written by :mod:`repro.crypto.parallel` could be
  handed to the kernel without translation.

* **:class:`GmpKernel`** — the loaded extension wrapped in the backend
  operation signatures (``powmod`` / ``powmod_vec`` / ``invert``).  The
  vector call packs the whole batch, makes *one* C call, and unpacks;
  cffi releases the GIL for the entire ``repro_powmod_vec`` loop, which
  is what lets thread-mode compute pools and shard workers scale with
  cores.  Results are bit-identical to the pure and gmpy2 backends
  (``tests/test_backend.py`` pins this).

Use :func:`load_kernel` / :func:`kernel_available`; both are no-raise —
a machine without cffi, a compiler or the GMP headers simply reports the
kernel absent and every caller falls back.
"""

from __future__ import annotations

from repro.crypto import _gmp_kernel

# ----------------------------------------------------------------------
# The limb format.
# ----------------------------------------------------------------------

#: Bytes per limb word (the kernel is specified in 64-bit words).
WORD_BYTES = 8


def words_for(value: int) -> int:
    """How many 64-bit words a non-negative integer needs (minimum 1)."""
    return max(1, (value.bit_length() + 63) // 64)


def pack_ints(values: list[int], words: int, out: memoryview | bytearray | None = None,
              offset: int = 0):
    """Pack non-negative integers into fixed-width little-endian words.

    Writes ``len(values) * words * 8`` bytes at ``offset`` into ``out``
    (allocated when omitted) and returns the buffer.  Every value must
    fit ``words`` words; ``int.to_bytes`` raises ``OverflowError``
    otherwise, which is the width-limit guarantee the shared-memory slab
    relies on.
    """
    stride = words * WORD_BYTES
    # Join-then-assign: one big copy into the target instead of a slice
    # write per value, and an oversize value aborts before any byte is
    # written (the join raises first).
    blob = b"".join(value.to_bytes(stride, "little") for value in values)
    if out is None:
        return bytearray(blob)
    view = memoryview(out)
    view[offset : offset + len(blob)] = blob
    return out


def unpack_ints(buf, words: int, count: int, offset: int = 0) -> list[int]:
    """Inverse of :func:`pack_ints`: read ``count`` integers."""
    stride = words * WORD_BYTES
    # One contiguous copy out of the (possibly shared) buffer, then
    # slice plain bytes: bytes slices convert faster than per-item
    # memoryview slices, and the copy decouples the result from a slab
    # another round may overwrite.
    data = bytes(memoryview(buf)[offset : offset + count * stride])
    from_bytes = int.from_bytes
    return [
        from_bytes(data[i * stride : (i + 1) * stride], "little") for i in range(count)
    ]


# ----------------------------------------------------------------------
# The kernel wrapper.
# ----------------------------------------------------------------------


class GmpKernel:
    """Batch modular arithmetic through the compiled GMP extension."""

    def __init__(self, ffi, lib):
        self._ffi = ffi
        self._lib = lib

    def powmod_vec(self, bases: list[int], exp: int, mod: int) -> list[int]:
        """``[b ** exp mod mod for b in bases]`` in one GIL-free C call."""
        if mod == 0:
            raise ValueError("pow() 3rd argument cannot be 0")
        if exp < 0:
            # The C kernel has no modular-inverse power path; this never
            # occurs on a hot path (inversions go through invert()).
            return [pow(b, exp, mod) for b in bases]
        if not bases:
            return []
        mod_words = words_for(mod)
        exp_words = words_for(exp)
        # Reduce up front: callers pass canonical residues already, and
        # the fixed-width packing requires values < mod anyway.
        reduced = [b % mod for b in bases]
        in_buf = pack_ints(reduced, mod_words)
        out_buf = bytearray(len(bases) * mod_words * WORD_BYTES)
        ffi = self._ffi
        rc = self._lib.repro_powmod_vec(
            ffi.from_buffer("uint64_t[]", in_buf),
            len(bases),
            mod_words,
            ffi.from_buffer("uint64_t[]", pack_ints([exp], exp_words)),
            exp_words,
            ffi.from_buffer("uint64_t[]", pack_ints([mod], mod_words)),
            mod_words,
            ffi.from_buffer("uint64_t[]", out_buf),
        )
        if rc != 0:  # pragma: no cover - zero modulus rejected above
            raise ValueError("kernel powmod_vec failed")
        return unpack_ints(out_buf, mod_words, len(bases))

    def powmod(self, base: int, exp: int, mod: int) -> int:
        """Scalar sugar over :meth:`powmod_vec`."""
        return self.powmod_vec([base], exp, mod)[0]

    def invert(self, a: int, mod: int) -> int:
        """Modular inverse; raises ``ValueError`` when none exists
        (the same error contract as the pure and gmpy2 backends)."""
        if mod == 0:
            raise ValueError("modulus cannot be 0")
        mod_words = words_for(mod)
        out_buf = bytearray(mod_words * WORD_BYTES)
        ffi = self._ffi
        rc = self._lib.repro_invert(
            ffi.from_buffer("uint64_t[]", pack_ints([a % mod], mod_words)),
            mod_words,
            ffi.from_buffer("uint64_t[]", pack_ints([mod], mod_words)),
            mod_words,
            ffi.from_buffer("uint64_t[]", out_buf),
        )
        if rc != 1:
            raise ValueError("base is not invertible for the given modulus")
        return unpack_ints(out_buf, mod_words, 1)[0]


_KERNEL: GmpKernel | None = None


def load_kernel() -> GmpKernel | None:
    """The process-wide :class:`GmpKernel`, or ``None`` when unavailable."""
    global _KERNEL
    if _KERNEL is None:
        loaded = _gmp_kernel.load()
        if loaded is None:
            return None
        _KERNEL = GmpKernel(*loaded)
    return _KERNEL


def kernel_available() -> bool:
    """Whether the compiled kernel can be used in this environment."""
    return load_kernel() is not None


def kernel_unavailable_reason() -> str | None:
    """Why the kernel failed to load (``None`` when it loaded)."""
    return _gmp_kernel.unavailable_reason()

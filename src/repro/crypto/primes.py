"""Primality testing and random prime generation.

Implements deterministic trial division by small primes followed by
Miller–Rabin with enough rounds for a < 2^-80 error bound, plus helpers to
generate the random primes Paillier and Damgård–Jurik key generation need.
No external cryptography packages are available in this environment, so
this module is the root of the whole crypto stack.  The Miller–Rabin
exponentiations — the cost of key generation — route through the
pluggable :mod:`repro.crypto.backend`.
"""

from __future__ import annotations

from repro.crypto import backend
from repro.crypto.rng import SecureRandom

# Small primes for fast trial-division pre-screening.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
    307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463,
)

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller–Rabin round: ``True`` if ``n`` passes for witness ``a``."""
    x = backend.powmod(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: SecureRandom | None = None) -> bool:
    """Return whether ``n`` is (probably) prime.

    For ``n`` below the deterministic bound the answer is exact; above it
    the error probability is at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or SecureRandom()
        witnesses = [rng.randint(2, n - 2) for _ in range(rounds)]
    return all(_miller_rabin_round(n, a, d, r) for a in witnesses)


def random_prime(bits: int, rng: SecureRandom | None = None) -> int:
    """Return a random prime of exactly ``bits`` bits.

    The top two bits are forced to one so that products of two such primes
    have exactly ``2 * bits`` bits, which keeps modulus sizes predictable.
    """
    if bits < 4:
        raise ValueError("prime size must be at least 4 bits")
    rng = rng or SecureRandom()
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_prime_pair(bits: int, rng: SecureRandom | None = None) -> tuple[int, int]:
    """Return two distinct random primes of ``bits`` bits each.

    Also enforces ``gcd(p*q, (p-1)*(q-1)) == 1``, the condition Paillier
    key generation requires (automatically true for same-size primes, but
    cheap to assert for the small primes used in tests).
    """
    import math

    rng = rng or SecureRandom()
    while True:
        p = random_prime(bits, rng)
        q = random_prime(bits, rng)
        if p == q:
            continue
        n = p * q
        if math.gcd(n, (p - 1) * (q - 1)) == 1:
            return p, q


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    import math

    return a // math.gcd(a, b) * b

"""Plaintext reference implementations (correctness oracles)."""

from __future__ import annotations

from repro.exceptions import QueryError


def plaintext_topk_join(
    left: list[list[int]],
    right: list[list[int]],
    join_on: tuple[int, int],
    order_by: tuple[int, int],
    k: int,
) -> list[tuple[int, int, int]]:
    """Equi-join + top-k oracle for the Section 12 operator.

    Returns up to ``k`` tuples ``(score, left_row, right_row)`` sorted by
    descending ``left[order_by[0]] + right[order_by[1]]``; ties broken by
    row ids for determinism.
    """
    if k < 1:
        raise QueryError("k must be >= 1")
    a, b = join_on
    c, d = order_by
    joined = [
        (lrow[c] + rrow[d], i, j)
        for i, lrow in enumerate(left)
        for j, rrow in enumerate(right)
        if lrow[a] == rrow[b]
    ]
    joined.sort(key=lambda t: (-t[0], t[1], t[2]))
    return joined[:k]


def plaintext_sknn_topk(rows: list[list[int]], k: int) -> list[tuple[int, int]]:
    """Top-k by ``Σ x_i^2`` — the scoring function the SkNN adaptation
    supports (Section 11.3)."""
    scored = [(o, sum(v * v for v in row)) for o, row in enumerate(rows)]
    scored.sort(key=lambda t: (-t[1], t[0]))
    return scored[:k]

"""Comparison baselines.

* :mod:`repro.baselines.sknn` — the secure k-nearest-neighbour scheme of
  Elmehdwi, Samanthula & Jiang (ICDE 2014), adapted to answer top-k
  selection queries the way Section 11.3 describes: restrict the scoring
  function to ``Σ x_i^2`` and query a maximal point.  Re-implemented over
  the same two-cloud channel so its ``O(n·m)`` per-query computation and
  communication can be compared with ``SecTopK`` directly.
* :mod:`repro.baselines.plaintext` — insecure plaintext reference
  implementations used for correctness checks and as a lower bound.
"""

from repro.baselines.sknn import SknnScheme
from repro.baselines.plaintext import plaintext_topk_join

__all__ = ["SknnScheme", "plaintext_topk_join"]

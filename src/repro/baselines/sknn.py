"""The secure-kNN comparator of Section 11.3 (Elmehdwi et al., ICDE 2014).

The paper compares ``SecTopK`` against the secure k-nearest-neighbour
scheme [21], adapted to top-k selection: define the score as ``Σ x_i^2``
and retrieve the ``k`` "nearest neighbours" of a maximal query point —
which are exactly the top-k objects under that score.

What matters for the comparison is the cost structure of [21], which this
re-implementation reproduces faithfully over the same accounting channel:

* **computation** ``O(n·m)`` heavyweight interactive operations *per
  query*: the scheme stores plain attribute encryptions and evaluates
  every record's squared distance through an interactive *secure
  multiplication* protocol (``SMP``) with the crypto cloud — no early
  termination, the whole relation is touched every time;
* **selection** via ``k`` rounds of a secure-minimum scan (their
  ``SMIN_n``), realized here with the bitwise DGK comparison — the same
  bit-decomposition cost family as [21]'s Section 5 sub-protocols — over
  ``n - 1`` pairs per round;
* **communication** ``O(n·m)``: every candidate's encrypted record
  crosses the inter-cloud link during each selection round (the behaviour
  Section 11.3 calls out: "[21] needs to send all of the encrypted
  records for each query execution").

Against this, ``SecTopK`` touches only ``D_q`` depths with per-depth cost
independent of ``n``, which is the source of the orders-of-magnitude gap
reported in Section 11.3.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass

from repro.crypto.damgard_jurik import DamgardJurik
from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import Ciphertext, PaillierKeypair
from repro.crypto.rng import SecureRandom
from repro.exceptions import DataError
from repro.net.messages import RecordShipment, SquareBlinded
from repro.protocols.base import S1Context, _wire_clouds
from repro.protocols.enc_compare import enc_compare
from repro.core.params import SystemParams

PROTOCOL = "SkNN"


@dataclass
class SknnEncryptedRelation:
    """Per-record encrypted attributes + record id."""

    records: list[dict]
    n_objects: int
    n_attributes: int

    def serialized_size(self) -> int:
        """Total encrypted size in bytes."""
        return sum(
            sum(c.serialized_size() for c in r["values"]) + r["record"].serialized_size()
            for r in self.records
        )


@dataclass
class SknnResult:
    """Outcome of one SkNN-adapted top-k query."""

    winners: list[tuple[Ciphertext, Ciphertext]]
    """``(Enc(record_id), Enc(score))`` pairs, best first."""

    channel_stats: object


class SknnScheme:
    """Data-owner API for the SkNN-adapted top-k baseline."""

    def __init__(self, params: SystemParams | None = None, seed: int | None = None):
        self.params = params or SystemParams.paper()
        self._rng = SecureRandom(seed)
        self.keypair = PaillierKeypair.generate(
            self.params.key_bits, self._rng.spawn("keygen")
        )
        self.public_key = self.keypair.public_key
        self.dj = DamgardJurik(self.public_key, s=2)
        self.encoder = SignedEncoder(
            self.public_key.n,
            score_bits=self.params.score_bits,
            blind_bits=self.params.blind_bits,
        )
        # Monotonic salt so every context draws independent randomness.
        self._ctx_counter = itertools.count()

    def encrypt(self, rows: list[list[int]]) -> SknnEncryptedRelation:
        """Encrypt the attribute values (the [21] storage format)."""
        if not rows:
            raise DataError("relation is empty")
        rng = self._rng.spawn("enc")
        max_sq = max(sum(v * v for v in row) for row in rows)
        if max_sq > self.encoder.max_score:
            raise DataError("squared scores exceed the encoding range")
        records = []
        for row_id, row in enumerate(rows):
            records.append(
                {
                    "values": [self.public_key.encrypt(v, rng) for v in row],
                    "record": self.public_key.encrypt(row_id, rng),
                }
            )
        return SknnEncryptedRelation(
            records=records, n_objects=len(rows), n_attributes=len(rows[0])
        )

    def make_clouds(self, transport: str = "inprocess") -> S1Context:
        """Wire up a fresh S1 context and S2 crypto cloud."""
        salt = f"#{next(self._ctx_counter)}"
        return _wire_clouds(
            self.keypair,
            self.dj,
            self.encoder,
            transport,
            self._rng.spawn("s1" + salt),
            self._rng.spawn("s2" + salt),
        )

    # ------------------------------------------------------------------

    def _secure_square(self, ctx: S1Context, ct: Ciphertext) -> Ciphertext:
        """[21]-style secure multiplication, specialized to squaring.

        S1 blinds ``Enc(x)`` additively, S2 decrypts and returns the
        square of the blinded value; S1 removes the cross terms:
        ``x^2 = (x + r)^2 - 2 r x - r^2``.
        """
        r = ctx.rng.randint_below(1 << (self.encoder.score_bits // 2 + self.encoder.blind_bits))
        blinded = ctx.public_key.rerandomize(ct + r, ctx.rng)
        squared = ctx.call(SquareBlinded(protocol=PROTOCOL, ct=blinded))
        return squared - ct * (2 * r) - r * r

    def query(
        self, relation: SknnEncryptedRelation, k: int, ctx: S1Context | None = None
    ) -> SknnResult:
        """Retrieve the top-k by ``Σ x_i^2`` the SkNN way (full scan)."""
        owns_ctx = ctx is None
        ctx = ctx or self.make_clouds()
        try:
            return self._query(relation, k, ctx)
        finally:
            if owns_ctx:
                ctx.close()

    def _query(
        self, relation: SknnEncryptedRelation, k: int, ctx: S1Context
    ) -> SknnResult:
        with ctx.channel.protocol(PROTOCOL):
            # Phase 1 — O(n·m) interactive secure multiplications.
            distances: list[Ciphertext] = []
            for record in relation.records:
                squares = [self._secure_square(ctx, ct) for ct in record["values"]]
                acc = squares[0]
                for sq in squares[1:]:
                    acc = acc + sq
                distances.append(acc)

            # Phase 2 — k rounds of a SMIN_n-style scan: n-1 bitwise (DGK)
            # comparisons each, shipping the candidate records across the
            # link as [21] does.
            winners: list[tuple[Ciphertext, Ciphertext]] = []
            excluded: set[int] = set()
            for _ in range(k):
                candidates = [i for i in range(len(distances)) if i not in excluded]
                ctx.call(
                    RecordShipment(
                        protocol=PROTOCOL,
                        objects=[
                            [ctx.public_key.rerandomize(v, ctx.rng) for v in relation.records[i]["values"]]
                            for i in candidates
                        ],
                    )
                )
                best = candidates[0]
                for idx in candidates[1:]:
                    if enc_compare(
                        ctx, distances[best], distances[idx], method="dgk",
                        protocol=PROTOCOL,
                    ):
                        best = idx
                excluded.add(best)
                winners.append((relation.records[best]["record"], distances[best]))
        return SknnResult(winners=winners, channel_stats=ctx.channel.snapshot())

    def reveal(self, result: SknnResult) -> list[tuple[int, int]]:
        """Decrypt the winners into ``(record_id, score)`` pairs."""
        sk = self.keypair.secret_key
        return [(sk.decrypt(rid), sk.decrypt(score)) for rid, score in result.winners]

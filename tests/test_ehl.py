"""Tests for EHL and EHL+ (Section 5): the ⊖ equality operator,
blinding, rerandomization and size accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import SecureRandom
from repro.exceptions import KeyMismatchError
from repro.structures.ehl import EhlFactory
from repro.structures.ehl_plus import EhlPlusFactory


@pytest.fixture()
def factory(keypair, rng):
    return EhlFactory(keypair.public_key, b"m" * 32, table_size=16, n_hashes=3, rng=rng)


@pytest.fixture()
def factory_plus(keypair, rng):
    return EhlPlusFactory(keypair.public_key, b"m" * 32, n_hashes=3, rng=rng)


class TestEhlEquality:
    """Lemma 5.2 for the bit-list EHL."""

    def test_same_object_yields_zero(self, factory, keypair, rng):
        a, b = factory.encode(42), factory.encode(42)
        assert keypair.secret_key.decrypt(a.minus(b, rng)) == 0

    def test_distinct_objects_yield_nonzero(self, factory, keypair, rng):
        hits = 0
        for i in range(20):
            a = factory.encode(("x", i).__repr__())
            b = factory.encode(("y", i).__repr__())
            if factory.positions(("x", i).__repr__()) == factory.positions(
                ("y", i).__repr__()
            ):
                continue  # genuine Bloom collision: ⊖ must report equal
            if keypair.secret_key.decrypt(a.minus(b, rng)) != 0:
                hits += 1
        assert hits >= 15  # overwhelming majority must separate

    def test_result_randomized(self, factory, keypair, rng):
        a, b = factory.encode(1), factory.encode(2)
        r1 = keypair.secret_key.decrypt(a.minus(b, rng))
        r2 = keypair.secret_key.decrypt(a.minus(b, rng))
        assert r1 != r2  # fresh random masks per invocation

    def test_length_mismatch(self, keypair, rng):
        f1 = EhlFactory(keypair.public_key, b"m" * 32, table_size=8, n_hashes=2, rng=rng)
        f2 = EhlFactory(keypair.public_key, b"m" * 32, table_size=16, n_hashes=2, rng=rng)
        with pytest.raises(KeyMismatchError):
            f1.encode(1).minus(f2.encode(1), rng)

    def test_rerandomize(self, factory, keypair, rng):
        a = factory.encode(5)
        b = a.rerandomized(rng)
        assert all(x.value != y.value for x, y in zip(a.cells, b.cells))
        assert keypair.secret_key.decrypt(a.minus(b, rng)) == 0


class TestEhlPlusEquality:
    """Section 5's EHL+ has the same ⊖ semantics at O(s) cost."""

    def test_same_object_yields_zero(self, factory_plus, keypair, rng):
        a, b = factory_plus.encode("alice"), factory_plus.encode("alice")
        assert keypair.secret_key.decrypt(a.minus(b, rng)) == 0

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=20)
    def test_equality_semantics(self, keypair, x, y):
        rng = SecureRandom(x ^ y)
        factory = EhlPlusFactory(keypair.public_key, b"m" * 32, n_hashes=3, rng=rng)
        result = keypair.secret_key.decrypt(
            factory.encode(x).minus(factory.encode(y), rng)
        )
        assert (result == 0) == (x == y)

    def test_blind_add_roundtrip(self, factory_plus, keypair, rng):
        n = keypair.public_key.n
        a = factory_plus.encode(9)
        alphas = [rng.randint_below(n) for _ in range(len(a))]
        blinded = a.blind_add(alphas)
        # Blinded structure no longer matches the original...
        assert keypair.secret_key.decrypt(a.minus(blinded, rng)) != 0
        # ...until the blind is removed.
        restored = blinded.blind_add([n - x for x in alphas])
        assert keypair.secret_key.decrypt(a.minus(restored, rng)) == 0

    def test_blind_arity_checked(self, factory_plus):
        with pytest.raises(KeyMismatchError):
            factory_plus.encode(1).blind_add([1, 2])

    def test_random_encode_distinct(self, factory_plus, keypair, rng):
        a = factory_plus.encode_random(rng)
        b = factory_plus.encode(1)
        assert keypair.secret_key.decrypt(a.minus(b, rng)) != 0


class TestIndistinguishabilityShape:
    """Lemma 5.1 sanity: encodings are probabilistic ciphertext lists."""

    def test_same_object_fresh_ciphertexts(self, factory_plus):
        a, b = factory_plus.encode(7), factory_plus.encode(7)
        assert all(x.value != y.value for x, y in zip(a.cells, b.cells))

    def test_hash_vector_deterministic(self, factory_plus):
        assert factory_plus.hash_vector(7) == factory_plus.hash_vector(7)


class TestSizes:
    def test_plus_smaller_than_bits(self, factory, factory_plus):
        # The headline claim behind Figure 7.
        assert factory_plus.structure_bytes() < factory.structure_bytes()

    def test_structure_bytes_matches_encoding(self, factory_plus):
        a = factory_plus.encode(3)
        assert a.serialized_size() == factory_plus.structure_bytes()

    def test_validation(self, keypair, rng):
        with pytest.raises(ValueError):
            EhlPlusFactory(keypair.public_key, b"m" * 32, n_hashes=0, rng=rng)
        with pytest.raises(ValueError):
            EhlFactory(
                keypair.public_key, b"m" * 32, table_size=2, n_hashes=5, rng=rng
            )

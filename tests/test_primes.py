"""Unit and property tests for primality testing and prime generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.primes import (
    is_probable_prime,
    lcm,
    random_prime,
    random_prime_pair,
)
from repro.crypto.rng import SecureRandom

SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 101, 997, 7919]
SMALL_COMPOSITES = [1, 4, 6, 9, 15, 21, 100, 561, 1105, 999, 7917]
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_primes_accepted(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", SMALL_COMPOSITES)
    def test_composites_rejected(self, c):
        assert not is_probable_prime(c)

    @pytest.mark.parametrize("c", CARMICHAEL)
    def test_carmichael_rejected(self, c):
        """Carmichael numbers fool Fermat but not Miller–Rabin."""
        assert not is_probable_prime(c)

    def test_negative_and_small(self):
        assert not is_probable_prime(-7)
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime((1 << 127) - 1)

    def test_large_known_composite(self):
        # 2^128 + 1 is composite (it has factor 59649589127497217).
        assert not is_probable_prime((1 << 128) + 1)

    @given(st.integers(min_value=2, max_value=5000))
    @settings(max_examples=60)
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
        assert is_probable_prime(n) == trial


class TestRandomPrime:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_exact_bit_length(self, bits):
        rng = SecureRandom(1)
        for _ in range(5):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_forced(self):
        p = random_prime(32, SecureRandom(2))
        assert p >> 30 == 0b11

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_prime(3)

    def test_pair_distinct_and_sized(self):
        rng = SecureRandom(3)
        p, q = random_prime_pair(40, rng)
        assert p != q
        assert (p * q).bit_length() == 80

    def test_deterministic_given_seed(self):
        assert random_prime(32, SecureRandom(9)) == random_prime(32, SecureRandom(9))


class TestLcm:
    @pytest.mark.parametrize(
        "a,b,expected", [(4, 6, 12), (3, 5, 15), (10, 10, 10), (1, 7, 7)]
    )
    def test_values(self, a, b, expected):
        assert lcm(a, b) == expected

    @given(st.integers(1, 1000), st.integers(1, 1000))
    @settings(max_examples=30)
    def test_divisibility(self, a, b):
        m = lcm(a, b)
        assert m % a == 0 and m % b == 0

"""Backend parity and batch entry-point tests for the compute layer.

Every public op of :mod:`repro.crypto.backend` must be bit-identical
under the pure-Python, gmpy2 and compiled gmp-kernel backends (the
accelerated halves skip where the package/extension is absent), and the
batch entry points must match their per-item equivalents exactly —
including randomness stream order, so seeded transcripts are invariant
to batching.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.params import SystemParams
from repro.core.scheme import SecTopK
from repro.crypto import backend
from repro.crypto.damgard_jurik import DamgardJurik
from repro.crypto.paillier import (
    PaillierKeypair,
    decrypt_vector,
    encrypt_vector,
)
from repro.crypto.rng import SecureRandom

needs_gmpy2 = pytest.mark.skipif(
    not backend.gmpy2_available(), reason="gmpy2 not installed"
)
needs_kernel = pytest.mark.skipif(
    not backend.kernel_available(), reason="gmp kernel unavailable"
)


@pytest.fixture(scope="module")
def keypair():
    return PaillierKeypair.generate(128, SecureRandom(11))


@pytest.fixture(scope="module")
def dj(keypair):
    return DamgardJurik(keypair.public_key, s=2)


class TestSelection:
    def test_pure_always_available(self):
        assert "pure" in backend.available_backends()

    def test_set_backend_round_trip(self):
        previous = backend.set_backend("pure")
        try:
            assert backend.get_backend().name == "pure"
        finally:
            backend.set_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            backend.set_backend("quantum")

    def test_auto_resolution_matches_availability(self):
        previous = backend.set_backend("auto")
        try:
            if backend.gmpy2_available():
                expected = "gmpy2"
            elif backend.kernel_available():
                expected = "gmp-kernel"
            else:
                expected = "pure"
            assert backend.get_backend().name == expected
        finally:
            backend.set_backend(previous)

    def test_use_backend_is_thread_local(self):
        import threading

        previous = backend.set_backend("pure")
        seen = {}
        try:
            with backend.use_backend("pure") as override:
                assert backend.get_backend() is override

                def probe():
                    seen["other"] = backend.get_backend().name

                t = threading.Thread(target=probe)
                t.start()
                t.join()
            # The override is gone outside the block; the other thread
            # never saw it (it read the process-wide selection).
            assert backend.get_backend().name == "pure"
            assert seen["other"] == "pure"
        finally:
            backend.set_backend(previous)

    def test_use_backend_nests_and_restores(self):
        previous = backend.set_backend("pure")
        try:
            inner = backend.PurePythonBackend()
            outer = backend.PurePythonBackend()
            with backend.use_backend(outer):
                assert backend.get_backend() is outer
                with backend.use_backend(inner):
                    assert backend.get_backend() is inner
                assert backend.get_backend() is outer
            assert backend.get_backend().name == "pure"
        finally:
            backend.set_backend(previous)


class TestPureOps:
    def test_powmod_matches_builtin(self):
        b = backend.PurePythonBackend()
        assert b.powmod(12345, 678, 997) == pow(12345, 678, 997)

    def test_powmod_vec_matches_loop(self):
        b = backend.PurePythonBackend()
        bases = [3, 5, 7, 11**20]
        assert b.powmod_vec(bases, 65537, 10**9 + 7) == [
            pow(x, 65537, 10**9 + 7) for x in bases
        ]

    def test_invert(self):
        b = backend.PurePythonBackend()
        assert b.invert(3, 11) * 3 % 11 == 1
        with pytest.raises(ValueError):
            b.invert(6, 9)

    def test_gcd(self):
        b = backend.PurePythonBackend()
        assert b.gcd(48, 36) == 12


@needs_gmpy2
class TestGmpy2Parity:
    """Bit-identical results for every public backend op."""

    CASES = [
        (2, 10, 1_000),
        (0, 5, 77),
        (1, 0, 77),
        (123456789, 987654321, 2**127 - 1),
    ]

    def test_powmod(self):
        pure, fast = backend.PurePythonBackend(), backend.Gmpy2Backend()
        rng = SecureRandom(3)
        cases = list(self.CASES) + [
            (rng.randbits(256), rng.randbits(256), rng.randbits(256) | 1)
            for _ in range(20)
        ]
        for base, exp, mod in cases:
            assert pure.powmod(base, exp, mod) == fast.powmod(base, exp, mod)

    def test_powmod_vec(self):
        pure, fast = backend.PurePythonBackend(), backend.Gmpy2Backend()
        rng = SecureRandom(4)
        bases = [rng.randbits(256) for _ in range(16)]
        exp, mod = rng.randbits(256), rng.randbits(256) | 1
        assert pure.powmod_vec(bases, exp, mod) == fast.powmod_vec(bases, exp, mod)

    def test_invert(self):
        pure, fast = backend.PurePythonBackend(), backend.Gmpy2Backend()
        rng = SecureRandom(5)
        mod = (2**89 - 1) * (2**107 - 1)  # composite, mostly coprime draws
        for _ in range(20):
            a = rng.randint(1, mod - 1)
            if pure.gcd(a, mod) != 1:
                continue
            assert pure.invert(a, mod) == fast.invert(a, mod)
        with pytest.raises(ValueError):
            fast.invert(2**89 - 1, mod)

    def test_gcd(self):
        pure, fast = backend.PurePythonBackend(), backend.Gmpy2Backend()
        rng = SecureRandom(6)
        for _ in range(20):
            a, b = rng.randbits(300), rng.randbits(300)
            assert pure.gcd(a, b) == fast.gcd(a, b)

    def test_whole_query_invariant_under_backend(self):
        """A seeded scheme reveals identical winners on both backends."""
        revealed = []
        for name in ("pure", "gmpy2"):
            previous = backend.set_backend(name)
            try:
                rng = SecureRandom(77)
                rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(8)]
                scheme = SecTopK(SystemParams.tiny(), seed=13)
                relation = scheme.encrypt(rows)
                result = scheme.query(relation, scheme.token([0, 1], k=2))
                revealed.append(sorted(scheme.reveal(result)))
            finally:
                backend.set_backend(previous)
        assert revealed[0] == revealed[1]


@needs_kernel
class TestKernelParity:
    """The compiled gmp-kernel backend is bit-identical to pure."""

    CASES = [
        (2, 10, 1_000),
        (0, 5, 77),
        (1, 0, 77),
        (123456789, 987654321, 2**127 - 1),
    ]

    def test_powmod(self):
        pure, fast = backend.PurePythonBackend(), backend.GmpKernelBackend()
        rng = SecureRandom(3)
        cases = list(self.CASES) + [
            (rng.randbits(256), rng.randbits(256), rng.randbits(256) | 1)
            for _ in range(20)
        ]
        for base, exp, mod in cases:
            assert pure.powmod(base, exp, mod) == fast.powmod(base, exp, mod)

    def test_powmod_vec(self):
        pure, fast = backend.PurePythonBackend(), backend.GmpKernelBackend()
        rng = SecureRandom(4)
        bases = [rng.randbits(256) for _ in range(16)]
        exp, mod = rng.randbits(256), rng.randbits(256) | 1
        assert pure.powmod_vec(bases, exp, mod) == fast.powmod_vec(bases, exp, mod)

    def test_powmod_vec_mixed_widths(self):
        """Exponent and base words differ from modulus words (the
        Paillier-encrypt shape: half-width exponent, double-width mod)."""
        pure, fast = backend.PurePythonBackend(), backend.GmpKernelBackend()
        rng = SecureRandom(12)
        mod = rng.randbits(512) | (1 << 511) | 1
        bases = [rng.randbits(700) for _ in range(8)] + [0, 1, mod - 1, mod, mod + 1]
        for exp in (0, 1, 65537, rng.randbits(256)):
            assert pure.powmod_vec(bases, exp, mod) == fast.powmod_vec(bases, exp, mod)

    def test_powmod_vec_edges(self):
        fast = backend.GmpKernelBackend()
        assert fast.powmod_vec([], 3, 7) == []
        with pytest.raises(ValueError):
            fast.powmod_vec([2], 3, 0)
        # Negative exponents take the pure fallback path.
        assert fast.powmod_vec([3], -1, 11) == [pow(3, -1, 11)]

    def test_invert(self):
        pure, fast = backend.PurePythonBackend(), backend.GmpKernelBackend()
        rng = SecureRandom(5)
        mod = (2**89 - 1) * (2**107 - 1)
        for _ in range(20):
            a = rng.randint(1, mod - 1)
            if pure.gcd(a, mod) != 1:
                continue
            assert pure.invert(a, mod) == fast.invert(a, mod)
        with pytest.raises(ValueError):
            fast.invert(2**89 - 1, mod)

    def test_whole_query_invariant_under_backend(self):
        """A seeded scheme reveals identical winners on both backends."""
        revealed = []
        for name in ("pure", "gmp-kernel"):
            previous = backend.set_backend(name)
            try:
                rng = SecureRandom(77)
                rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(8)]
                scheme = SecTopK(SystemParams.tiny(), seed=13)
                relation = scheme.encrypt(rows)
                result = scheme.query(relation, scheme.token([0, 1], k=2))
                revealed.append(sorted(scheme.reveal(result)))
            finally:
                backend.set_backend(previous)
        assert revealed[0] == revealed[1]


class TestBatchEntryPoints:
    def test_encrypt_batch_matches_encrypt_stream(self, keypair):
        """Batching must not change the randomness stream."""
        pk = keypair.public_key
        values = [0, 1, 17, pk.n - 1]
        batch = pk.encrypt_batch(values, SecureRandom(42))
        rng = SecureRandom(42)
        singles = [pk.encrypt(v, rng) for v in values]
        assert [c.value for c in batch] == [c.value for c in singles]

    def test_decrypt_batch_matches_singles(self, keypair):
        pk, sk = keypair.public_key, keypair.secret_key
        cts = pk.encrypt_batch([5, 0, 999, pk.n - 3], SecureRandom(8))
        assert sk.decrypt_batch(cts) == [sk.decrypt(c) for c in cts]
        assert sk.decrypt_signed_batch(cts) == [sk.decrypt_signed(c) for c in cts]

    def test_module_level_entry_points(self, keypair):
        pk, sk = keypair.public_key, keypair.secret_key
        values = [3, 1, 4, 1, 5]
        cts = backend.encrypt_batch(pk, values, SecureRandom(9))
        assert backend.decrypt_batch(sk, cts) == values

    def test_vector_helpers_round_trip(self, keypair):
        pk, sk = keypair.public_key, keypair.secret_key
        values = [10, 20, 30]
        assert decrypt_vector(sk, encrypt_vector(pk, values, SecureRandom(1))) == values

    def test_dj_batch_matches_singles(self, keypair, dj):
        rng = SecureRandom(21)
        lcs = [dj.encrypt(v, rng) for v in (0, 1, 12345)]
        assert dj.decrypt_batch(lcs, keypair) == [
            dj.decrypt(lc, keypair) for lc in lcs
        ]
        inner = [dj.encrypt_ciphertext(keypair.public_key.encrypt(7, rng), rng)]
        assert dj.decrypt_inner_batch(inner, keypair)[0].value == dj.decrypt_inner(
            inner[0], keypair
        ).value


class TestPickling:
    def test_public_key_pool_excluded(self, keypair):
        pk = keypair.public_key
        pk.encrypt(1)  # force pool + hoisted rng to exist
        assert pk._pool is not None and pk._rng is not None
        clone = pickle.loads(pickle.dumps(pk))
        assert clone._pool is None and clone._rng is None
        assert clone == pk
        # The clone still encrypts (pool rebuilt lazily) and round-trips.
        assert keypair.secret_key.decrypt(clone.encrypt(41)) == 41

    def test_dj_pool_excluded(self, keypair, dj):
        dj.encrypt(1)
        clone = pickle.loads(pickle.dumps(dj))
        assert clone._pool is None and clone._rng is None
        assert dj.decrypt(clone.encrypt(9), keypair) == 9

    def test_scheme_round_trips(self):
        scheme = SecTopK(SystemParams.tiny(), seed=2)
        relation = scheme.encrypt([[1, 2], [3, 4], [5, 6]])
        clone = pickle.loads(pickle.dumps(scheme))
        result = clone.query(relation, clone.token([0, 1], k=1))
        assert len(clone.reveal(result)) == 1

"""Tests for the Bloom filter and the Section 5 FPR analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prf import derive_keys
from repro.structures.bloom import (
    BloomFilter,
    bloom_false_positive_rate,
    ehl_plus_false_positive_bound,
    optimal_hash_count,
)


@pytest.fixture(scope="module")
def prfs():
    return derive_keys(b"bloom-master", 5)


class TestBloomFilter:
    def test_membership(self, prfs):
        bf = BloomFilter(64, prfs)
        for item in range(10):
            bf.add(item)
        assert all(item in bf for item in range(10))

    def test_deterministic_positions(self, prfs):
        bf = BloomFilter(64, prfs)
        assert bf.positions(42) == bf.positions(42)

    def test_bit_vector_matches_positions(self, prfs):
        bf = BloomFilter(32, prfs)
        vector = bf.bit_vector("obj")
        positions = set(bf.positions("obj"))
        assert all((vector[i] == 1) == (i in positions) for i in range(32))

    def test_validation(self, prfs):
        with pytest.raises(ValueError):
            BloomFilter(0, prfs)
        with pytest.raises(ValueError):
            BloomFilter(10, [])

    @given(st.integers(0, 10_000))
    @settings(max_examples=25)
    def test_no_false_negatives(self, prfs, item):
        bf = BloomFilter(128, prfs)
        bf.add(item)
        assert item in bf


class TestAnalysis:
    def test_optimal_hash_count(self):
        # Section 5: s = (H/n) ln 2.
        assert optimal_hash_count(23, 2) == 8
        assert optimal_hash_count(10, 100) == 1

    def test_optimal_hash_validation(self):
        with pytest.raises(ValueError):
            optimal_hash_count(0, 5)

    def test_fpr_monotone_in_items(self):
        rates = [bloom_false_positive_rate(64, 4, n) for n in (1, 4, 16, 64)]
        assert rates == sorted(rates)
        assert all(0 <= r <= 1 for r in rates)

    def test_ehl_plus_bound_negligible(self):
        """Section 5: with 256-bit N and s=4, FPR negligible for millions."""
        bound = ehl_plus_false_positive_bound(1 << 256, 4, 10**6)
        assert bound < 2**-900

    def test_ehl_plus_bound_union(self):
        # n^2 / N^s exactly (up to float error).
        bound = ehl_plus_false_positive_bound(2**20, 1, 2**5)
        assert bound == pytest.approx((2**5) ** 2 / 2**20)

    def test_fpr_empirical_sanity(self, prfs):
        """Measured single-pair collision rate stays near the analytic rate."""
        size, n_hashes = 16, 2
        bf = BloomFilter(size, prfs[:n_hashes])
        collisions = 0
        trials = 400
        for i in range(trials):
            a = bf.positions(("a", i).__repr__())
            b = bf.positions(("b", i).__repr__())
            if sorted(set(a)) == sorted(set(b)):
                collisions += 1
        analytic = bloom_false_positive_rate(size, n_hashes, 1)
        assert collisions / trials < max(5 * analytic, 0.1)

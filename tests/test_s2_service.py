"""The standalone S2 daemon: handshake, registration, multiplexing,
failure modes.

Each test spins up an in-process :class:`S2Service` on an ephemeral
TCP port (or a temp Unix socket) — the same code path the
``python -m repro.server.s2_service`` daemon runs — and talks to it
through the real client stack.  A CI leg additionally launches the
daemon as a separate OS process and points ``REPRO_REMOTE_S2`` here,
which activates :class:`TestExternalDaemon` against it.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time

import pytest

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.exceptions import PeerDisconnected, RemoteS2Error, TransportError
from repro.net import messages
from repro.net.socket_transport import disconnect_all, parse_address
from repro.server import S2Service, TopKServer

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


@pytest.fixture()
def daemon():
    service = S2Service("tcp://127.0.0.1:0")
    address = service.start()
    yield service, address
    disconnect_all()
    service.close()


def _fresh_deployment(seed: int = 55):
    rng = SecureRandom(123)
    rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=seed)
    return scheme, scheme.encrypt(rows), rows


def _leakage_tuples(result):
    return [
        (e.observer, e.protocol, e.kind, repr(e.payload))
        for e in result.leakage_events
    ]


def _requests(scheme):
    return [
        (scheme.token([0, 1], k=2), QueryConfig(variant="elim")),
        (scheme.token([1, 2], k=2), QueryConfig(variant="elim")),
        (scheme.token([0, 1, 2], k=3), QueryConfig(variant="elim")),
    ]


class TestRegistration:
    def test_second_query_skips_relation_upload(self, daemon):
        """Acceptance: repeated queries against a registered relation
        perform no re-upload — the daemon sees exactly one registration
        payload no matter how many sessions follow."""
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        with TopKServer(scheme, relation, transport=address) as server:
            server.execute(scheme.token([0, 1], k=2))
            after_first = service.stats()
            server.execute(scheme.token([1, 2], k=2))
            after_second = service.stats()

        assert after_first["registrations"] == 1
        assert after_first["registration_uploads"] == 1
        # The second query opened a fresh session but shipped no blob.
        assert after_second["sessions_opened"] == 2
        assert after_second["registration_uploads"] == 1
        assert after_second["registration_bytes"] == after_first["registration_bytes"]

    def test_two_relations_register_separately(self, daemon):
        service, address = daemon
        scheme_a, relation_a, _ = _fresh_deployment(seed=55)
        scheme_b, relation_b, _ = _fresh_deployment(seed=56)
        assert relation_a.relation_id() != relation_b.relation_id()
        with TopKServer(scheme_a, relation_a, transport=address) as server:
            server.execute(scheme_a.token([0], k=1))
        with TopKServer(scheme_b, relation_b, transport=address) as server:
            server.execute(scheme_b.token([0], k=1))
        assert service.stats()["registrations"] == 2

    def test_local_s2_workers_rejected_for_remote(self, daemon):
        _, address = daemon
        scheme, relation, _ = _fresh_deployment()
        with pytest.raises(ValueError, match="--s2-workers"):
            TopKServer(scheme, relation, transport=address, s2_workers=2)


class TestMultiplexing:
    def test_concurrent_sessions_share_one_connection(self, daemon):
        """Thread-mode execute_many interleaves several sessions' rounds
        over a single socket; results match the sequential in-process
        run and the daemon confirms exactly one connection carried it."""
        service, address = daemon
        scheme_a, relation_a, rows = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            baseline = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b, transport=address) as server:
            multiplexed = server.execute_many(_requests(scheme_b), concurrency=3)

        for a, b in zip(baseline, multiplexed):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert a.halting_depth == b.halting_depth
            assert a.channel_stats.rounds == b.channel_stats.rounds
            assert a.channel_stats.total_bytes == b.channel_stats.total_bytes
        stats = service.stats()
        assert stats["connections_total"] == 1
        assert stats["sessions_opened"] == len(multiplexed)
        assert stats["sessions_active"] == 0

    def test_process_mode_workers_reuse_registration(self, daemon):
        """Process-mode worker processes open their own connections but
        find the relation already registered — no blob re-upload."""
        service, address = daemon
        # Both servers run the same warm-up query first: request salts
        # derive from session ids, so the remote batch replays the local
        # one only if their id sequences line up.
        scheme_a, relation_a, _ = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            server.execute(scheme_a.token([0], k=1))
            baseline = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b, transport=address) as server:
            # The warm-up also registers the relation from the parent, so
            # the worker-side upload *skip* is what the stats assert.
            server.execute(scheme_b.token([0], k=1))
            results = server.execute_many(
                _requests(scheme_b), concurrency=2, mode="process"
            )

        for a, b in zip(baseline, results):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert _leakage_tuples(a) == _leakage_tuples(b)
        stats = service.stats()
        assert stats["registration_uploads"] == 1
        assert stats["connections_total"] >= 2  # parent + workers


class TestFailureModes:
    def test_daemon_death_raises_typed_error_not_hang(self, daemon):
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme.make_clouds(transport=address, relation=relation)
        service.close()
        with pytest.raises(PeerDisconnected):
            ctx.call(
                messages.ZeroTestBatch(
                    protocol="probe", cts=[scheme.public_key.encrypt(0)]
                )
            )
        ctx.close()  # tolerates the dead daemon

    def test_client_drop_tears_down_daemon_sessions(self, daemon):
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme.make_clouds(transport=address, relation=relation)
        assert service.stats()["sessions_active"] == 1
        # Abrupt departure: sever the socket without a CLOSE frame.
        ctx.transport._client.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            stats = service.stats()
            if stats["sessions_active"] == 0 and stats["connections_active"] == 0:
                break
            time.sleep(0.02)
        assert service.stats()["sessions_active"] == 0
        assert service.stats()["connections_active"] == 0

    def test_dispatch_failure_surfaces_remote_kind(self, daemon):
        """A daemon-side dispatch error travels back typed: the remote
        exception class name is preserved and the connection survives."""
        _, address = daemon
        scheme, relation, _ = _fresh_deployment()
        foreign = SecTopK(SystemParams.tiny(), seed=91)
        ctx = scheme.make_clouds(transport=address, relation=relation)
        try:
            with pytest.raises(RemoteS2Error) as excinfo:
                ctx.call(
                    messages.ZeroTestBatch(
                        protocol="probe", cts=[foreign.public_key.encrypt(0)]
                    )
                )
            assert excinfo.value.kind == "KeyMismatchError"
        finally:
            ctx.close()

    def test_unregistered_relation_autoregisters(self, daemon):
        """The OPEN -> unknown-relation -> REGISTER -> OPEN dance is
        invisible to callers: a bare make_clouds works on first contact."""
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme.make_clouds(transport=address, relation=relation)
        ctx.close()
        assert service.stats()["registrations"] == 1

    def test_non_daemon_peer_fails_cleanly(self):
        """Connecting to a socket that does not speak the protocol must
        raise, not hang."""
        listener = socket_module.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        rogue: list[socket_module.socket] = []

        def _accept_and_garbage():
            sock, _ = listener.accept()
            rogue.append(sock)
            sock.sendall(b"HTTP/1.1 400 Bad Request\r\n\r\n" + b"\x00" * 64)

        thread = threading.Thread(target=_accept_and_garbage, daemon=True)
        thread.start()
        try:
            from repro.net.socket_transport import S2Client

            with pytest.raises(TransportError):
                S2Client(f"tcp://127.0.0.1:{port}", timeout=5.0)
        finally:
            thread.join()
            for sock in rogue:
                sock.close()
            listener.close()


class TestGaugeRegression:
    """The in-flight/active gauges must return to zero on *every* exit
    path — clean completion, dispatch errors, mid-request socket death,
    daemon shutdown — or ``/metrics`` drifts permanently."""

    @staticmethod
    def _settled(service, deadline_s: float = 5.0) -> dict:
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            stats = service.stats()
            if (
                stats["requests_in_flight"] == 0
                and stats["sessions_active"] == 0
                and stats["connections_active"] == 0
            ):
                return stats
            time.sleep(0.02)
        return service.stats()

    def test_midrequest_socket_death_returns_gauges_to_zero(self, daemon):
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme.make_clouds(transport=address, relation=relation)
        severed = threading.Event()

        def _spam():
            try:
                while not severed.is_set():
                    ctx.call(
                        messages.ZeroTestBatch(
                            protocol="probe",
                            cts=[scheme.public_key.encrypt(0) for _ in range(8)],
                        )
                    )
            except Exception:
                pass  # PeerDisconnected mid-call is the point

        thread = threading.Thread(target=_spam, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if service.stats()["requests_served"] >= 1:
                break
            time.sleep(0.005)
        # Sever the socket with requests (possibly) on the wire.
        ctx.transport._client.close()
        severed.set()
        thread.join(timeout=10)
        stats = self._settled(service)
        assert stats["requests_in_flight"] == 0
        assert stats["sessions_active"] == 0
        assert stats["connections_active"] == 0
        assert stats["requests_in_flight_peak"] >= 1

    def test_dispatch_error_still_decrements_in_flight(self, daemon):
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        foreign = SecTopK(SystemParams.tiny(), seed=92)
        ctx = scheme.make_clouds(transport=address, relation=relation)
        try:
            with pytest.raises(RemoteS2Error):
                ctx.call(
                    messages.ZeroTestBatch(
                        protocol="probe", cts=[foreign.public_key.encrypt(0)]
                    )
                )
            assert service.stats()["requests_in_flight"] == 0
            assert service.stats()["requests_served"] >= 1
        finally:
            ctx.close()

    def test_service_close_with_live_session_zeroes_gauges(self):
        service = S2Service("tcp://127.0.0.1:0")
        address = service.start()
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme.make_clouds(transport=address, relation=relation)
        try:
            assert service.stats()["sessions_active"] == 1
            assert service.stats()["connections_active"] == 1
            service.close()
            stats = self._settled(service)
            assert stats["sessions_active"] == 0
            assert stats["connections_active"] == 0
            assert stats["requests_in_flight"] == 0
        finally:
            ctx.close()  # tolerates the dead daemon
            disconnect_all()


@pytest.mark.skipif(
    not hasattr(socket_module, "AF_UNIX"), reason="no Unix-domain sockets"
)
class TestUnixSocket:
    def test_query_over_unix_socket(self, tmp_path):
        service = S2Service(f"unix://{tmp_path}/s2.sock")
        address = service.start()
        try:
            scheme, relation, rows = _fresh_deployment()
            with TopKServer(scheme, relation, transport=address) as server:
                result = server.execute(scheme.token([0, 2], k=2))
            from repro.nra import SortedLists, nra_topk

            winners = {o for o, _ in scheme.reveal(result)}
            expected = nra_topk(SortedLists(rows, [0, 2]), 2).topk
            assert winners == {o for o, _ in expected}
        finally:
            disconnect_all()
            service.close()
        assert not os.path.exists(f"{tmp_path}/s2.sock")


class TestPersistentRegistry:
    """``--state-dir``: registrations survive a daemon restart."""

    def test_restarted_daemon_serves_registered_relations(self, tmp_path):
        state_dir = str(tmp_path / "registry")
        scheme, relation, rows = _fresh_deployment()

        first = S2Service("tcp://127.0.0.1:0", state_dir=state_dir)
        address = first.start()
        try:
            with TopKServer(scheme, relation, transport=address) as server:
                baseline = server.execute(scheme.token([0, 1], k=2))
            stats = first.stats()
            assert stats["registrations"] == 1
            assert stats["registration_uploads"] == 1
        finally:
            disconnect_all()
            first.close()
        spills = os.listdir(state_dir)
        assert spills == [f"{relation.relation_id()}.reg"]

        # Restart: a fresh service over the same state dir serves the
        # relation id without any client re-upload.
        second = S2Service("tcp://127.0.0.1:0", state_dir=state_dir)
        address = second.start()
        try:
            assert second.stats()["registrations_restored"] == 1
            with TopKServer(scheme, relation, transport=address) as server:
                revived = server.execute(scheme.token([0, 1], k=2))
            assert second.stats()["registration_uploads"] == 0
            assert scheme.reveal(revived) == scheme.reveal(baseline)
        finally:
            disconnect_all()
            second.close()

    def test_corrupt_spill_is_skipped_not_fatal(self, tmp_path):
        import pickle

        state_dir = tmp_path / "registry"
        state_dir.mkdir()
        (state_dir / "deadbeef.reg").write_bytes(b"not a pickle")
        # Valid pickles of the wrong shape must be skipped too.
        (state_dir / "cafe.reg").write_bytes(pickle.dumps([1, 2, 3]))
        (state_dir / "f00d.reg").write_bytes(
            pickle.dumps({"relation_id": "f00d"})  # missing key material
        )
        service = S2Service("tcp://127.0.0.1:0", state_dir=str(state_dir))
        address = service.start()
        try:
            assert service.stats()["registrations_restored"] == 0
            scheme, relation, _ = _fresh_deployment()
            with TopKServer(scheme, relation, transport=address) as server:
                result = server.execute(scheme.token([0, 1], k=2))
            assert len(result.items) == 2
        finally:
            disconnect_all()
            service.close()


class TestJobSessionsOverTheWire:
    def test_submitted_jobs_are_attributed_daemon_side(self, daemon):
        service, address = daemon
        scheme, relation, _ = _fresh_deployment()
        import repro

        with repro.connect(scheme, relation, address) as client:
            job = client.submit(client.token([0, 1], k=2))
            assert len(job.result(timeout=120).items) == 2
        assert service.stats()["job_sessions"] >= 1


@pytest.mark.skipif(
    not os.environ.get("REPRO_REMOTE_S2"),
    reason="REPRO_REMOTE_S2 not set (CI socket-smoke leg launches the daemon)",
)
class TestExternalDaemon:
    """Query-suite smoke against a daemon in a *separate OS process*.

    The CI socket-smoke job launches ``python -m repro.server.s2_service``
    on localhost and exports its address; everything the in-process
    tests pin (parity, registration skip) must hold across a real
    process boundary too.
    """

    def test_query_suite_parity(self):
        address = os.environ["REPRO_REMOTE_S2"]
        parse_address(address)  # fail fast on a malformed env var
        scheme_a, relation_a, _ = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            baseline = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        try:
            with TopKServer(scheme_b, relation_b, transport=address) as server:
                remote = server.execute_many(_requests(scheme_b), concurrency=1)
                again = server.execute(scheme_b.token([0, 2], k=1))
        finally:
            disconnect_all()
        assert len(again.items) == 1
        for a, b in zip(baseline, remote):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert a.halting_depth == b.halting_depth
            assert a.channel_stats.rounds == b.channel_stats.rounds
            assert a.channel_stats.total_bytes == b.channel_stats.total_bytes
            assert _leakage_tuples(a) == _leakage_tuples(b)

    def test_engines_over_external_daemon(self):
        address = os.environ["REPRO_REMOTE_S2"]
        scheme, relation, rows = _fresh_deployment()
        from repro.nra import SortedLists, nra_topk

        try:
            with TopKServer(scheme, relation, transport=address) as server:
                for engine in ("eager", "literal"):
                    result = server.execute(
                        scheme.token([0, 1], k=2),
                        QueryConfig(variant="elim", engine=engine),
                    )
                    winners = {o for o, _ in scheme.reveal(result)}
                    expected = nra_topk(SortedLists(rows, [0, 1]), 2).topk
                    assert winners == {o for o, _ in expected}
        finally:
            disconnect_all()

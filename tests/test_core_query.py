"""Differential tests: SecQuery vs the plaintext NRA oracle.

These are the capstone integration tests — the oblivious engine must
return exactly the plaintext algorithm's answers.  Relations are kept
small (the crypto is pure Python) but cover duplicates, ties in local
scores, every variant/engine combination and both halting rules.
"""

import pytest

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.exceptions import QueryError
from repro.nra import SortedLists, naive_topk, nra_topk


@pytest.fixture(scope="module")
def rows():
    rng = SecureRandom(314)
    # Tie-free aggregates with duplicated *local* scores (small range).
    rows = []
    seen_sums = set()
    while len(rows) < 14:
        candidate = [rng.randint_below(40) for _ in range(3)]
        if sum(candidate) not in seen_sums:
            seen_sums.add(sum(candidate))
            rows.append(candidate)
    return rows


@pytest.fixture(scope="module")
def scheme():
    return SecTopK(SystemParams.tiny(), seed=21)


@pytest.fixture(scope="module")
def encrypted(scheme, rows):
    return scheme.encrypt(rows)


def _oracle(rows, attributes, k, halting="strict", weights=None):
    """Plaintext NRA run matching what the secure engine executes.

    NRA reports *worst-at-halt* scores, which may be below the exact
    aggregates (Section 3.4: "NRA may not report the exact object
    scores") — so differential tests must compare against this oracle,
    not against the exact-score naive top-k.
    """
    if weights is not None:
        rows = [[w * row[a] for w, a in zip(weights, attributes)] for row in rows]
        attributes = list(range(len(weights)))
    return nra_topk(SortedLists(rows, attributes), k, halting=halting)


class TestEagerVariants:
    @pytest.mark.parametrize("variant", ["elim", "full", "batch"])
    def test_matches_oracle_exactly(self, scheme, encrypted, rows, variant):
        """Same top-k ids, same scores, same halting depth as plain NRA."""
        config = QueryConfig(
            variant=variant, batch_p=3, engine="eager", halting="strict"
        )
        token = scheme.token([0, 1, 2], k=3)
        result = scheme.query(encrypted, token, config)
        oracle = _oracle(rows, [0, 1, 2], 3)
        got = scheme.reveal(result)
        if variant != "batch":
            # Same algorithm, same depth: ids AND worst scores agree.
            assert got == oracle.topk
            assert result.halting_depth == oracle.halting_depth
        else:
            # Batched checks halt at the next check point, where worst
            # bounds have grown; the winning id set is what must agree.
            assert {o for o, _ in got} == {o for o, _ in oracle.topk}
            assert result.halting_depth >= oracle.halting_depth

    def test_paper_halting_correct(self, scheme, encrypted, rows):
        config = QueryConfig(variant="elim", engine="eager", halting="paper")
        token = scheme.token([0, 1, 2], k=2)
        result = scheme.query(encrypted, token, config)
        got = scheme.reveal(result)
        oracle = _oracle(rows, [0, 1, 2], 2, halting="paper")
        assert got == oracle.topk

    def test_two_attributes(self, scheme, encrypted, rows):
        token = scheme.token([0, 2], k=2)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        got = scheme.reveal(result)
        assert [o for o, _ in got] == [
            o for o, _ in _oracle(rows, [0, 2], 2).topk
        ]

    def test_k_equals_one(self, scheme, encrypted, rows):
        token = scheme.token([0, 1, 2], k=1)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        got = scheme.reveal(result)
        assert got == _oracle(rows, [0, 1, 2], 1).topk
        # The winner is also the exact-score winner.
        assert got[0][0] == naive_topk(rows, [0, 1, 2], 1)[0][0]

    def test_weights(self, scheme, encrypted, rows):
        token = scheme.token([0, 1], k=2, weights=[2, 3])
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        oracle = _oracle(rows, [0, 1], 2, weights=[2, 3])
        assert scheme.reveal(result) == oracle.topk


class TestLiteralEngine:
    def test_correct_topk_elim(self, scheme, encrypted, rows):
        token = scheme.token([0, 1], k=2)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="literal")
        )
        oracle = _oracle(rows, [0, 1], 2)
        got = scheme.reveal(result)
        # Literal halts at or after the oracle (stale upper bounds), so
        # the id set matches but worst bounds may have grown.
        assert {o for o, _ in got} == {o for o, _ in oracle.topk}
        assert result.halting_depth >= oracle.halting_depth

    def test_correct_topk_full(self, scheme, encrypted, rows):
        token = scheme.token([0, 1], k=2)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="full", engine="literal")
        )
        got = scheme.reveal(result)
        oracle = _oracle(rows, [0, 1], 2)
        assert {o for o, _ in got} == {o for o, _ in oracle.topk}


class TestEdgeCases:
    def test_duplicate_heavy_relation(self):
        """Small value range -> many within-depth duplicates."""
        rng = SecureRandom(55)
        rows = [[rng.randint_below(4) for _ in range(3)] for _ in range(10)]
        scheme = SecTopK(SystemParams.tiny(), seed=91)
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1, 2], k=3)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        got = scheme.reveal(result)
        oracle = _oracle(rows, [0, 1, 2], 3)
        assert sorted(s for _, s in got) == sorted(s for _, s in oracle.topk)

    def test_k_equals_n(self):
        rows = [[5, 1], [3, 3], [1, 9], [2, 2]]
        scheme = SecTopK(SystemParams.tiny(), seed=92)
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=4)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        got = scheme.reveal(result)
        oracle = _oracle(rows, [0, 1], 4)
        assert got == oracle.topk
        # Every object is reported; the id set is exactly 0..n-1.
        assert {o for o, _ in got} == {0, 1, 2, 3}

    def test_k_too_large_rejected(self, scheme, encrypted):
        token = scheme.token([0, 1], k=100)
        with pytest.raises(QueryError):
            scheme.query(encrypted, token)

    def test_max_depth_cap(self, scheme, encrypted, rows):
        token = scheme.token([0, 1, 2], k=3)
        result = scheme.query(
            encrypted,
            token,
            QueryConfig(variant="elim", engine="eager", max_depth=2),
        )
        assert result.halting_depth <= 2
        assert len(result.items) == 3  # best-effort answer still k items

    def test_depth_timings_collected(self, scheme, encrypted):
        token = scheme.token([0, 1], k=2)
        result = scheme.query(encrypted, token)
        assert len(result.depth_seconds) == result.halting_depth
        assert result.time_per_depth > 0

    def test_channel_stats_populated(self, scheme, encrypted):
        token = scheme.token([0, 1], k=2)
        result = scheme.query(encrypted, token)
        assert result.channel_stats.total_bytes > 0
        assert result.channel_stats.rounds > 0


class TestQueryConfig:
    def test_validation(self):
        with pytest.raises(QueryError):
            QueryConfig(variant="bogus")
        with pytest.raises(QueryError):
            QueryConfig(engine="bogus")
        with pytest.raises(QueryError):
            QueryConfig(halting="bogus")
        with pytest.raises(QueryError):
            QueryConfig(variant="batch", batch_p=0)

    def test_check_every(self):
        assert QueryConfig(variant="elim").check_every() == 1
        assert QueryConfig(variant="batch", batch_p=7).check_every() == 7

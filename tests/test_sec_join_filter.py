"""Tests for SecJoin (Algorithm 11) and SecFilter (Algorithm 12)."""

import pytest

from repro.protocols.sec_filter import JoinedTuple, sec_filter
from repro.protocols.sec_join import SCORE_OFFSET, sec_join
from repro.structures.ehl_plus import EhlPlusFactory


@pytest.fixture()
def factory(ctx):
    return EhlPlusFactory(ctx.public_key, b"j" * 32, n_hashes=3, rng=ctx.rng)


def _tuple(ctx, factory, values, record=0):
    return {
        "ehl": [factory.encode(v) for v in values],
        "scores": [ctx.encrypt(v) for v in values],
        "record": ctx.encrypt(record),
    }


class TestSecFilter:
    def test_drops_zero_scores(self, ctx, keypair, own_keypair):
        tuples = [
            JoinedTuple(score=ctx.encrypt(5), attributes=[ctx.encrypt(50)]),
            JoinedTuple(score=ctx.encrypt(0), attributes=[ctx.encrypt(60)]),
            JoinedTuple(score=ctx.encrypt(9), attributes=[ctx.encrypt(70)]),
        ]
        result = sec_filter(ctx, tuples, own_keypair)
        sk = keypair.secret_key
        got = sorted((sk.decrypt(t.score), sk.decrypt(t.attributes[0])) for t in result)
        assert got == [(5, 50), (9, 70)]

    def test_all_dropped(self, ctx, own_keypair):
        tuples = [JoinedTuple(score=ctx.encrypt(0), attributes=[]) for _ in range(3)]
        assert sec_filter(ctx, tuples, own_keypair) == []

    def test_empty_input(self, ctx, own_keypair):
        assert sec_filter(ctx, [], own_keypair) == []

    def test_fresh_encryptions(self, ctx, own_keypair):
        t = JoinedTuple(score=ctx.encrypt(5), attributes=[ctx.encrypt(1)])
        result = sec_filter(ctx, [t], own_keypair)
        assert result[0].score.value != t.score.value
        assert result[0].attributes[0].value != t.attributes[0].value

    def test_cardinality_leakage_recorded(self, ctx, own_keypair):
        tuples = [
            JoinedTuple(score=ctx.encrypt(5), attributes=[]),
            JoinedTuple(score=ctx.encrypt(0), attributes=[]),
        ]
        sec_filter(ctx, tuples, own_keypair)
        flags = ctx.leakage.by_kind("filter_flag")
        assert flags[-1].payload == 1  # one survivor


class TestSecJoin:
    def test_cross_product_size(self, ctx, factory):
        left = [_tuple(ctx, factory, [1, 10], r) for r in range(2)]
        right = [_tuple(ctx, factory, [1, 20], r) for r in range(3)]
        combined = sec_join(ctx, left, right, (0, 0), (1, 1))
        assert len(combined) == 6

    def test_matching_pair_scored(self, ctx, factory, keypair):
        left = [_tuple(ctx, factory, [7, 10])]
        right = [_tuple(ctx, factory, [7, 32])]
        combined = sec_join(ctx, left, right, (0, 0), (1, 1))
        score = keypair.secret_key.decrypt(combined[0].score)
        assert score == 10 + 32 + SCORE_OFFSET

    def test_non_matching_pair_zeroed(self, ctx, factory, keypair):
        left = [_tuple(ctx, factory, [7, 10])]
        right = [_tuple(ctx, factory, [8, 32])]
        combined = sec_join(ctx, left, right, (0, 0), (1, 1))
        assert keypair.secret_key.decrypt(combined[0].score) == 0

    def test_carried_attributes(self, ctx, factory, keypair):
        left = [_tuple(ctx, factory, [7, 10, 3], record=11)]
        right = [_tuple(ctx, factory, [7, 32, 4], record=22)]
        combined = sec_join(
            ctx, left, right, (0, 0), (1, 1), carry_attrs=([1, 2], [1, 2])
        )
        sk = keypair.secret_key
        values = [sk.decrypt(a) for a in combined[0].attributes]
        # carried: left attrs 1,2 then right attrs 1,2 then both records.
        assert values == [10, 3, 32, 4, 11, 22]

    def test_join_then_filter(self, ctx, factory, keypair, own_keypair):
        left = [_tuple(ctx, factory, [1, 10]), _tuple(ctx, factory, [2, 20])]
        right = [_tuple(ctx, factory, [1, 5]), _tuple(ctx, factory, [3, 9])]
        combined = sec_join(ctx, left, right, (0, 0), (1, 1))
        survivors = sec_filter(ctx, combined, own_keypair)
        assert len(survivors) == 1
        score = keypair.secret_key.decrypt(survivors[0].score) - SCORE_OFFSET
        assert score == 15

    def test_zero_scores_still_join(self, ctx, factory, keypair, own_keypair):
        """A legitimate pair whose combined score is 0 must survive the
        filter thanks to SCORE_OFFSET."""
        left = [_tuple(ctx, factory, [4, 0])]
        right = [_tuple(ctx, factory, [4, 0])]
        combined = sec_join(ctx, left, right, (0, 0), (1, 1))
        survivors = sec_filter(ctx, combined, own_keypair)
        assert len(survivors) == 1
        assert keypair.secret_key.decrypt(survivors[0].score) == SCORE_OFFSET

"""End-to-end tests for the secure top-k join (Section 12)."""

import pytest

from repro.baselines.plaintext import plaintext_topk_join
from repro.core.params import SystemParams
from repro.crypto.rng import SecureRandom
from repro.exceptions import DataError, QueryError
from repro.join import SecTopKJoin


@pytest.fixture(scope="module")
def join_scheme():
    return SecTopKJoin(SystemParams.tiny(), seed=71)


@pytest.fixture(scope="module")
def tables():
    rng = SecureRandom(72)
    left = [[rng.randint_below(4), rng.randint_below(60)] for _ in range(7)]
    right = [[rng.randint_below(4), rng.randint_below(60)] for _ in range(9)]
    return left, right


class TestJoinEncryption:
    def test_shape(self, join_scheme, tables):
        left, _ = tables
        encrypted = join_scheme.encrypt("L", left)
        assert encrypted.n_tuples == len(left)
        assert encrypted.n_attributes == 2
        assert encrypted.serialized_size() > 0

    def test_validation(self, join_scheme):
        with pytest.raises(DataError):
            join_scheme.encrypt("X", [])
        with pytest.raises(DataError):
            join_scheme.encrypt("X", [[1], [1, 2]])

    def test_token_validation(self):
        from repro.join.scheme import JoinToken

        with pytest.raises(QueryError):
            JoinToken(t1=0, t2=0, t3=1, t4=1, k=0)


class TestJoinQuery:
    def test_matches_plaintext_oracle(self, join_scheme, tables):
        left, right = tables
        er1 = join_scheme.encrypt("L", left)
        er2 = join_scheme.encrypt("R", right)
        token = join_scheme.token("L", "R", join_on=(0, 0), order_by=(1, 1), k=4)
        result = join_scheme.join_query(er1, er2, token)
        got = join_scheme.reveal(result)
        oracle = plaintext_topk_join(left, right, (0, 0), (1, 1), 4)
        assert [g[0] for g in got] == [o[0] for o in oracle]

    def test_join_cardinality(self, join_scheme, tables):
        left, right = tables
        er1 = join_scheme.encrypt("L2", left)
        er2 = join_scheme.encrypt("R2", right)
        token = join_scheme.token("L2", "R2", join_on=(0, 0), order_by=(1, 1), k=3)
        result = join_scheme.join_query(er1, er2, token)
        expected = sum(1 for l in left for r in right if l[0] == r[0])
        assert result.join_cardinality == expected

    def test_no_matches(self, join_scheme):
        left = [[1, 10]]
        right = [[2, 20]]
        er1 = join_scheme.encrypt("L3", left)
        er2 = join_scheme.encrypt("R3", right)
        token = join_scheme.token("L3", "R3", join_on=(0, 0), order_by=(1, 1), k=2)
        result = join_scheme.join_query(er1, er2, token)
        assert result.join_cardinality == 0
        assert result.tuples == []

    def test_k_larger_than_matches(self, join_scheme):
        left = [[1, 10], [1, 20]]
        right = [[1, 5]]
        er1 = join_scheme.encrypt("L4", left)
        er2 = join_scheme.encrypt("R4", right)
        token = join_scheme.token("L4", "R4", join_on=(0, 0), order_by=(1, 1), k=10)
        result = join_scheme.join_query(er1, er2, token)
        got = join_scheme.reveal(result)
        assert [g[0] for g in got] == [25, 15]

    def test_channel_accounting(self, join_scheme):
        left = [[1, 10]]
        right = [[1, 5]]
        er1 = join_scheme.encrypt("L5", left)
        er2 = join_scheme.encrypt("R5", right)
        token = join_scheme.token("L5", "R5", join_on=(0, 0), order_by=(1, 1), k=1)
        result = join_scheme.join_query(er1, er2, token)
        assert result.channel_stats.total_bytes > 0

"""Security-oriented tests: the leakage audit of Section 9.

CQA security says the servers learn nothing beyond the declared leakage
functions.  We check that empirically: after full protocol runs, every
observation either server recorded must be classified by the declared
profile, S1 must never hold key material, and the equality patterns S2
sees must match the (permuted) ground truth — no more, no less.
"""

import pytest

from repro.core.leakage import ALLOWED_KINDS, audit, equality_pattern_matrices
from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.crypto.paillier import PaillierSecretKey
from repro.crypto.rng import SecureRandom


@pytest.fixture(scope="module")
def query_run():
    """One full secure query, returning (scheme, ctx-leakage, result)."""
    rng = SecureRandom(77)
    rows = [[rng.randint_below(30) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=31)
    encrypted = scheme.encrypt(rows)
    token = scheme.token([0, 1, 2], k=2)
    ctx = scheme.make_clouds()
    result = scheme.query(
        encrypted, token, QueryConfig(variant="elim", engine="eager"), ctx=ctx
    )
    return scheme, ctx, result, rows


class TestLeakageAudit:
    def test_full_query_is_clean(self, query_run):
        _, ctx, _, _ = query_run
        report = audit(ctx.leakage)
        assert report.clean, report.unclassified

    def test_only_declared_kinds(self, query_run):
        _, ctx, _, _ = query_run
        kinds = {e.kind for e in ctx.leakage.events}
        assert kinds <= set(ALLOWED_KINDS)

    def test_query_pattern_and_depth_recorded(self, query_run):
        _, ctx, result, _ = query_run
        s1_kinds = {e.kind for e in ctx.leakage.by_observer("S1")}
        assert "query_pattern" in s1_kinds
        assert "halting_depth" in s1_kinds
        depth_events = [
            e for e in ctx.leakage.by_observer("S1") if e.kind == "halting_depth"
        ]
        assert depth_events[-1].payload == result.halting_depth

    def test_dgk_and_network_paths_also_clean(self):
        rng = SecureRandom(11)
        rows = [[rng.randint_below(30) for _ in range(2)] for _ in range(8)]
        scheme = SecTopK(SystemParams.tiny(), seed=41)
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=2)
        ctx = scheme.make_clouds()
        scheme.query(
            encrypted,
            token,
            QueryConfig(
                variant="elim",
                engine="eager",
                compare_method="dgk",
                sort_method="network",
            ),
            ctx=ctx,
        )
        report = audit(ctx.leakage)
        assert report.clean, report.unclassified

    def test_join_run_is_clean(self, own_keypair):
        from repro.join import SecTopKJoin

        scheme = SecTopKJoin(SystemParams.tiny(), seed=13)
        er1 = scheme.encrypt("A", [[1, 5], [2, 6]])
        er2 = scheme.encrypt("B", [[1, 7], [3, 8]])
        ctx = scheme.make_clouds()
        scheme.join_query(er1, er2, scheme.token("A", "B", (0, 0), (1, 1), 1), ctx=ctx)
        report = audit(ctx.leakage)
        assert report.clean, report.unclassified


class TestS1HoldsNoSecrets:
    def test_context_has_no_secret_key(self, query_run):
        """No PaillierSecretKey is reachable from the S1 context except
        through the CryptoCloud boundary object (which stands in for the
        remote S2)."""
        _, ctx, _, _ = query_run
        assert not isinstance(getattr(ctx, "secret_key", None), PaillierSecretKey)
        for attr in ("public_key", "dj", "encoder", "channel", "rng"):
            value = getattr(ctx, attr)
            assert not isinstance(value, PaillierSecretKey)
            assert not any(
                isinstance(v, PaillierSecretKey) for v in vars(value).values()
            ) if hasattr(value, "__dict__") else True

    def test_s2_private_key_is_name_mangled_away(self, query_run):
        """The crypto cloud sits behind the transport's dispatcher; even
        there the keypair is a private attribute, not ``secret_key``."""
        _, ctx, _, _ = query_run
        cloud = ctx.transport.dispatcher.cloud
        assert not hasattr(cloud, "secret_key")

    def test_s1_protocol_code_holds_no_s2_handle(self, query_run):
        """The transport boundary is real: the context exposes no ``s2``
        attribute for protocol code to call around the message layer."""
        _, ctx, _, _ = query_run
        assert not hasattr(ctx, "s2")


class TestEqualityPatternSemantics:
    def test_eq_bits_count_matches_truth(self, keypair, own_keypair):
        """S2's per-batch equality bits have the ground-truth multiset
        (the permutation hides positions, not the count)."""
        from repro.protocols.base import make_parties
        from repro.protocols.sec_worst import sec_worst
        from repro.structures.ehl_plus import EhlPlusFactory
        from repro.structures.items import EncryptedItem

        ctx = make_parties(keypair, rng=SecureRandom(3))
        factory = EhlPlusFactory(ctx.public_key, b"q" * 32, n_hashes=3, rng=ctx.rng)
        item = EncryptedItem(ehl=factory.encode("x"), score=ctx.encrypt(1))
        others = [
            EncryptedItem(ehl=factory.encode(o), score=ctx.encrypt(1))
            for o in ("x", "y", "x", "z")
        ]
        sec_worst(ctx, item, others)
        matrices = equality_pattern_matrices(ctx.leakage)
        assert len(matrices) == 1
        assert sorted(matrices[0]) == [0, 0, 1, 1]

    def test_no_plaintext_scores_in_log(self, query_run):
        """Blinded-value observations must not carry payloads."""
        _, ctx, _, rows = query_run
        blinded_kinds = {"sort_key_blinded", "dedup_matrix", "dgk_blinded"}
        for event in ctx.leakage.events:
            if event.kind in blinded_kinds:
                assert event.payload is None

"""Tests for the multi-query server front-end."""

from __future__ import annotations

import pytest

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.server import TopKServer


@pytest.fixture(scope="module")
def deployment():
    rng = SecureRandom(123)
    rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=55)
    relation = scheme.encrypt(rows)
    return scheme, relation, rows


def _oracle_topk(rows, attrs, k):
    from repro.nra import SortedLists, nra_topk

    return {o for o, _ in nra_topk(SortedLists(rows, attrs), k).topk}


class TestSessions:
    def test_sequential_sessions_are_isolated(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation) as server:
            token = scheme.token([0, 1], k=2)
            with server.session() as first:
                result_a = first.query(token, QueryConfig(variant="elim"))
            with server.session() as second:
                result_b = second.query(token, QueryConfig(variant="elim"))

            # Per-session observability: each log/channel covers exactly
            # its own query — no cross-query state bleed.
            assert first.channel_stats.rounds == result_a.channel_stats.rounds
            assert second.channel_stats.rounds == result_b.channel_stats.rounds
            assert first.leakage.events is not second.leakage.events
            a_pattern = [e for e in first.leakage.events if e.kind == "query_pattern"]
            b_pattern = [e for e in second.leakage.events if e.kind == "query_pattern"]
            assert len(a_pattern) == len(b_pattern) == 1
            # The query-pattern history itself is shared (it IS the L1
            # leakage): the second run of the same token is a repeat.
            assert a_pattern[0].payload is False
            assert b_pattern[0].payload is True

    def test_results_match_oracle(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation) as server:
            result = server.execute(scheme.token([0, 2], k=2))
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, [0, 2], 2)

    def test_closed_session_rejects_queries(self, deployment):
        scheme, relation, _ = deployment
        with TopKServer(scheme, relation) as server:
            session = server.session()
            session.close()
            with pytest.raises(RuntimeError):
                session.query(scheme.token([0], k=1))

    def test_threaded_transport_sessions(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation, transport="threaded") as server:
            result = server.execute(scheme.token([1, 2], k=2))
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, [1, 2], 2)


class TestExecuteMany:
    def test_concurrent_matches_sequential(self, deployment):
        scheme, relation, rows = deployment
        requests = [
            (scheme.token([0, 1], k=2), QueryConfig(variant="elim")),
            (scheme.token([1, 2], k=2), QueryConfig(variant="elim")),
            (scheme.token([0, 2], k=3), QueryConfig(variant="elim")),
            (scheme.token([0, 1, 2], k=2), QueryConfig(variant="elim")),
        ]
        attrs_and_k = [([0, 1], 2), ([1, 2], 2), ([0, 2], 3), ([0, 1, 2], 2)]
        with TopKServer(scheme, relation) as server:
            concurrent = server.execute_many(requests, concurrency=3)
        for result, (attrs, k) in zip(concurrent, attrs_and_k):
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, attrs, k)

    def test_results_keep_request_order(self, deployment):
        scheme, relation, _ = deployment
        requests = [
            (scheme.token([0], k=1), None),
            (scheme.token([0, 1, 2], k=4), None),
        ]
        with TopKServer(scheme, relation) as server:
            results = server.execute_many(requests, concurrency=2)
        assert len(results[0].items) == 1
        assert len(results[1].items) == 4

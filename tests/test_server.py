"""Tests for the multi-query server front-end."""

from __future__ import annotations

import pytest

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.server import TopKServer


@pytest.fixture(scope="module")
def deployment():
    rng = SecureRandom(123)
    rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=55)
    relation = scheme.encrypt(rows)
    return scheme, relation, rows


def _oracle_topk(rows, attrs, k):
    from repro.nra import SortedLists, nra_topk

    return {o for o, _ in nra_topk(SortedLists(rows, attrs), k).topk}


class TestSessions:
    def test_sequential_sessions_are_isolated(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation) as server:
            token = scheme.token([0, 1], k=2)
            with server.session() as first:
                result_a = first.query(token, QueryConfig(variant="elim"))
            with server.session() as second:
                result_b = second.query(token, QueryConfig(variant="elim"))

            # Per-session observability: each log/channel covers exactly
            # its own query — no cross-query state bleed.
            assert first.channel_stats.rounds == result_a.channel_stats.rounds
            assert second.channel_stats.rounds == result_b.channel_stats.rounds
            assert first.leakage.events is not second.leakage.events
            a_pattern = [e for e in first.leakage.events if e.kind == "query_pattern"]
            b_pattern = [e for e in second.leakage.events if e.kind == "query_pattern"]
            assert len(a_pattern) == len(b_pattern) == 1
            # The query-pattern history itself is shared (it IS the L1
            # leakage): the second run of the same token is a repeat.
            assert a_pattern[0].payload is False
            assert b_pattern[0].payload is True

    def test_results_match_oracle(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation) as server:
            result = server.execute(scheme.token([0, 2], k=2))
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, [0, 2], 2)

    def test_closed_session_rejects_queries(self, deployment):
        scheme, relation, _ = deployment
        with TopKServer(scheme, relation) as server:
            session = server.session()
            session.close()
            with pytest.raises(RuntimeError):
                session.query(scheme.token([0], k=1))

    def test_threaded_transport_sessions(self, deployment):
        scheme, relation, rows = deployment
        with TopKServer(scheme, relation, transport="threaded") as server:
            result = server.execute(scheme.token([1, 2], k=2))
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, [1, 2], 2)


def _fresh_deployment():
    """An identically-seeded deployment per call (parity comparisons need
    two independent servers whose request ids start from zero)."""
    rng = SecureRandom(123)
    rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=55)
    return scheme, scheme.encrypt(rows), rows


def _requests(scheme):
    return [
        (scheme.token([0, 1], k=2), QueryConfig(variant="elim")),
        (scheme.token([1, 2], k=2), QueryConfig(variant="elim")),
        (scheme.token([0, 1, 2], k=3), QueryConfig(variant="elim")),
    ]


def _leakage_tuples(result):
    return [
        (e.observer, e.protocol, e.kind, repr(e.payload))
        for e in result.leakage_events
    ]


class TestProcessMode:
    """Process-pool execution must be replay-identical to sequential."""

    def test_process_matches_sequential(self):
        scheme_a, relation_a, rows = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            sequential = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b) as server:
            process = server.execute_many(
                _requests(scheme_b), concurrency=2, mode="process"
            )
            # The pool is persistent: a second batch reuses the workers.
            again = server.execute_many(
                [(scheme_b.token([0, 2], k=1), None)], concurrency=2, mode="process"
            )
        assert len(again) == 1 and len(again[0].items) == 1

        for a, b in zip(sequential, process):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert a.halting_depth == b.halting_depth
            assert a.channel_stats.rounds == b.channel_stats.rounds
            assert a.channel_stats.total_bytes == b.channel_stats.total_bytes
            # Identical leakage event sequences per request — which makes
            # the batch multisets identical too.
            assert _leakage_tuples(a) == _leakage_tuples(b)

    def test_cross_batch_repeat_detected_in_workers(self):
        """A token repeated across process batches must read as a repeat
        regardless of which worker serves it (the parent ships each
        request its sequential-equivalent history)."""
        scheme, relation, _ = _fresh_deployment()
        token = scheme.token([0, 1], k=2)
        with TopKServer(scheme, relation) as server:
            first = server.execute_many([(token, None)], concurrency=2, mode="process")
            second = server.execute_many([(token, None)], concurrency=2, mode="process")

        def pattern(result):
            return [
                e.payload for e in result.leakage_events if e.kind == "query_pattern"
            ]

        assert pattern(first[0]) == [False]
        assert pattern(second[0]) == [True]

    def test_servers_sharing_a_scheme_draw_disjoint_streams(self):
        """Two servers on one scheme must not reuse request salts."""
        scheme, relation, _ = _fresh_deployment()
        server_a = TopKServer(scheme, relation)
        server_b = TopKServer(scheme, relation)
        assert server_a._salt_namespace != server_b._salt_namespace
        assert server_a._request_salt(0) != server_b._request_salt(0)
        server_a.close()
        server_b.close()

    def test_process_history_syncs_to_parent(self):
        scheme, relation, _ = _fresh_deployment()
        token = scheme.token([0, 1], k=2)
        with TopKServer(scheme, relation) as server:
            server.execute_many([(token, None)], concurrency=2, mode="process")
            # The parent folded the batch into its history: the same
            # token now reads as a repeat (L1 query-pattern leakage).
            with server.session() as session:
                session.query(token)
                pattern = [
                    e.payload
                    for e in session.leakage.events
                    if e.kind == "query_pattern"
                ]
        assert pattern == [True]

    def test_unknown_mode_rejected(self, deployment):
        scheme, relation, _ = deployment
        with TopKServer(scheme, relation) as server:
            with pytest.raises(ValueError):
                server.execute_many([(scheme.token([0], k=1), None)], mode="fiber")


class TestS2ComputePool:
    def test_pool_matches_plain_and_audits_clean(self):
        from repro.core.leakage import audit
        from repro.protocols.base import LeakageLog

        scheme_a, relation_a, _ = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            plain = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b, s2_workers=2) as server:
            pooled = server.execute_many(_requests(scheme_b), concurrency=1)

        for a, b in zip(plain, pooled):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert _leakage_tuples(a) == _leakage_tuples(b)
            log = LeakageLog()
            log.events = list(b.leakage_events)
            assert audit(log).clean

    @pytest.mark.parametrize(
        "s2_mode,transport",
        [("process", "shm"), ("process", "pickle"), ("thread", None)],
    )
    def test_pool_modes_are_transcript_identical(self, s2_mode, transport):
        """Every pool mode × transport replays the pool-less transcript
        bit for bit (decryption draws no randomness, so fan-out shape is
        invisible)."""
        from repro.crypto import backend

        if s2_mode == "thread" and not backend.kernel_available():
            pytest.skip("gmp kernel unavailable")

        scheme_a, relation_a, _ = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            plain = server.execute_many(_requests(scheme_a), concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b, s2_workers=2, s2_mode=s2_mode) as server:
            assert server._compute.mode == s2_mode
            if transport == "pickle":
                server._compute.transport = "pickle"
            elif transport is not None:
                assert server._compute.transport == transport
            pooled = server.execute_many(_requests(scheme_b), concurrency=1)

        for a, b in zip(plain, pooled):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert _leakage_tuples(a) == _leakage_tuples(b)


class TestRelationStore:
    """The process-wide relation store behind process-mode worker pools:
    exports are keyed by relation id, shared across servers over the
    same relation, pickled at most once, and released with the last
    server."""

    def test_exported_for_server_lifetime(self):
        from repro.server import topk_server as ts

        scheme, relation, _ = _fresh_deployment()
        key = relation.relation_id()
        assert key not in ts._RELATION_STORE
        with TopKServer(scheme, relation):
            stored_scheme, stored_relation = ts._RELATION_STORE[key]
            assert stored_scheme is scheme and stored_relation is relation
            assert ts._RELATION_REFS[key] == 1
        assert key not in ts._RELATION_STORE
        assert key not in ts._RELATION_REFS

    def test_sibling_servers_share_one_export(self):
        from repro.server import topk_server as ts

        scheme, relation, _ = _fresh_deployment()
        key = relation.relation_id()
        server_a = TopKServer(scheme, relation)
        server_b = TopKServer(scheme, relation)
        assert ts._RELATION_REFS[key] == 2
        server_a.close()
        assert ts._RELATION_REFS[key] == 1  # close is idempotent too
        server_a.close()
        assert ts._RELATION_REFS[key] == 1
        server_b.close()
        assert key not in ts._RELATION_STORE

    def test_blob_pickled_at_most_once(self):
        from repro.server import topk_server as ts

        scheme, relation, _ = _fresh_deployment()
        with TopKServer(scheme, relation):
            key = relation.relation_id()
            first = ts._relation_blob(key)
            assert ts._relation_blob(key) is first

    def test_workers_resolve_relation_from_store(self):
        """The initializer path spawn platforms use: a worker that
        receives the blob installs it under the relation id, and a
        worker whose store already holds the id (fork inheritance, or a
        rebuilt pool on spawn) skips the payload entirely."""
        import pickle

        from repro.crypto import backend
        from repro.server import topk_server as ts

        active = backend.get_backend().name
        scheme, relation, _ = _fresh_deployment()
        key = relation.relation_id()
        blob = pickle.dumps((scheme, relation))
        try:
            ts._init_query_worker(key, blob, "inprocess", 0.0, active)
            assert ts._QUERY_WORKER["relation"].relation_id() == key
            # Second pool build over the same relation: no payload needed.
            ts._QUERY_WORKER.clear()
            ts._init_query_worker(key, None, "inprocess", 0.0, active)
            assert ts._QUERY_WORKER["relation"].relation_id() == key
        finally:
            ts._QUERY_WORKER.clear()
            ts._RELATION_STORE.pop(key, None)

    def test_relation_id_stable_across_pickling(self):
        import pickle

        _, relation, _ = _fresh_deployment()
        copied = pickle.loads(pickle.dumps(relation))
        assert copied.relation_id() == relation.relation_id()


class TestExecuteMany:
    def test_concurrent_matches_sequential(self, deployment):
        scheme, relation, rows = deployment
        requests = [
            (scheme.token([0, 1], k=2), QueryConfig(variant="elim")),
            (scheme.token([1, 2], k=2), QueryConfig(variant="elim")),
            (scheme.token([0, 2], k=3), QueryConfig(variant="elim")),
            (scheme.token([0, 1, 2], k=2), QueryConfig(variant="elim")),
        ]
        attrs_and_k = [([0, 1], 2), ([1, 2], 2), ([0, 2], 3), ([0, 1, 2], 2)]
        with TopKServer(scheme, relation) as server:
            concurrent = server.execute_many(requests, concurrency=3)
        for result, (attrs, k) in zip(concurrent, attrs_and_k):
            winners = {o for o, _ in scheme.reveal(result)}
            assert winners == _oracle_topk(rows, attrs, k)

    def test_results_keep_request_order(self, deployment):
        scheme, relation, _ = deployment
        requests = [
            (scheme.token([0], k=1), None),
            (scheme.token([0, 1, 2], k=4), None),
        ]
        with TopKServer(scheme, relation) as server:
            results = server.execute_many(requests, concurrency=2)
        assert len(results[0].items) == 1
        assert len(results[1].items) == 4

"""Unit and property tests for the PRF / PRP constructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prf import Prf, derive_keys, encode_object_id, random_key
from repro.crypto.prp import FeistelPrp, Prp
from repro.crypto.rng import SecureRandom


class TestPrf:
    def test_deterministic(self):
        prf = Prf(b"k" * 32)
        assert prf.digest(b"msg") == prf.digest(b"msg")

    def test_key_dependence(self):
        assert Prf(b"a" * 32).digest(b"m") != Prf(b"b" * 32).digest(b"m")

    def test_message_dependence(self):
        prf = Prf(b"k" * 32)
        assert prf.digest(b"m1") != prf.digest(b"m2")

    def test_long_output(self):
        prf = Prf(b"k" * 32)
        out = prf.digest(b"m", out_bytes=100)
        assert len(out) == 100
        assert out[:32] == prf.digest(b"m", out_bytes=32)

    def test_to_int_range(self):
        prf = Prf(b"k" * 32)
        for bits in (1, 8, 100, 300):
            assert 0 <= prf.to_int(b"m", bits) < (1 << bits)

    def test_to_range(self):
        prf = Prf(b"k" * 32)
        for modulus in (2, 97, 1 << 128):
            assert 0 <= prf.to_range(b"m", modulus) < modulus

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"")

    def test_derive_keys_distinct(self):
        prfs = derive_keys(b"master", 5)
        outputs = {p.digest(b"x") for p in prfs}
        assert len(outputs) == 5

    def test_derive_keys_label_separation(self):
        a = derive_keys(b"master", 1, label="x")[0]
        b = derive_keys(b"master", 1, label="y")[0]
        assert a.digest(b"m") != b.digest(b"m")

    def test_random_key_length(self):
        assert len(random_key(SecureRandom(1))) == 32


class TestEncodeObjectId:
    def test_types_supported(self):
        for value in (0, -5, 123456789, "alice", b"\x00\x01"):
            assert isinstance(encode_object_id(value), bytes)

    def test_injective_across_types(self):
        values = [1, -1, "1", b"1", "a", b"a", 0, ""]
        encodings = [encode_object_id(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_object_id(1.5)

    @given(st.integers(), st.integers())
    @settings(max_examples=40)
    def test_injective_ints(self, a, b):
        if a != b:
            assert encode_object_id(a) != encode_object_id(b)


class TestPrp:
    @pytest.mark.parametrize("size", [1, 2, 5, 16, 100])
    def test_bijection(self, size):
        prp = Prp(b"k" * 32, size)
        assert sorted(prp.forward(i) for i in range(size)) == list(range(size))

    @pytest.mark.parametrize("size", [1, 7, 64])
    def test_inverse(self, size):
        prp = Prp(b"k" * 32, size)
        assert all(prp.inverse(prp.forward(i)) == i for i in range(size))

    def test_key_dependence(self):
        a = Prp(b"a" * 32, 50).as_list()
        b = Prp(b"b" * 32, 50).as_list()
        assert a != b

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Prp(b"k" * 32, 0)


class TestFeistelPrp:
    @pytest.mark.parametrize("size", [2, 10, 100, 1000])
    def test_bijection(self, size):
        prp = FeistelPrp(b"k" * 32, size)
        values = [prp.forward(i) for i in range(size)]
        assert sorted(values) == list(range(size))

    @pytest.mark.parametrize("size", [2, 37, 256])
    def test_inverse(self, size):
        prp = FeistelPrp(b"k" * 32, size)
        assert all(prp.inverse(prp.forward(i)) == i for i in range(size))

    def test_domain_bounds(self):
        prp = FeistelPrp(b"k" * 32, 10)
        with pytest.raises(ValueError):
            prp.forward(10)
        with pytest.raises(ValueError):
            prp.inverse(-1)

    def test_tiny_domain_rejected(self):
        with pytest.raises(ValueError):
            FeistelPrp(b"k" * 32, 1)

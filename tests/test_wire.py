"""Unit tests for the wire codec, typed messages and round batcher."""

from __future__ import annotations

import pytest

from repro.crypto.damgard_jurik import DamgardJurik
from repro.exceptions import ProtocolError
from repro.net.batching import RoundBatcher, single_message_flow
from repro.net.channel import Channel, measure_size
from repro.net.dispatch import S2Dispatcher
from repro.net.messages import (
    MESSAGE_TYPES,
    DedupBatch,
    StripLayerBatch,
    ZeroTestBatch,
    message_class,
    message_fields,
    message_type_id,
)
from repro.net.transport import InProcessTransport, ThreadedTransport
from repro.net.wire import WireCodec, _Reader
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import JoinedTuple, ListPrefix, ScoredItem


@pytest.fixture()
def dj(keypair):
    return DamgardJurik(keypair.public_key, s=2)


def _roundtrip(value):
    encoder = WireCodec()
    out = bytearray()
    encoder.encode_value(value, out)
    decoder = WireCodec()
    return decoder.decode_value(_Reader(bytes(out)))


class TestWireValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            12345678901234567890,
            -987654321,
            b"",
            b"\x00\xffabc",
            "protocol-name",
            [1, [2, None], (True, b"x")],
            (),
        ],
    )
    def test_primitives(self, value):
        assert _roundtrip(value) == value

    def test_ciphertext(self, keypair, rng):
        ct = keypair.public_key.encrypt(42, rng)
        back = _roundtrip(ct)
        assert back.value == ct.value
        assert back.public_key == keypair.public_key
        assert keypair.secret_key.decrypt(back) == 42

    def test_ciphertexts_under_two_keys(self, keypair, own_keypair, rng):
        a = keypair.public_key.encrypt(1, rng)
        b = own_keypair.public_key.encrypt(2, rng)
        back_a, back_b = _roundtrip([a, b])
        assert keypair.secret_key.decrypt(back_a) == 1
        assert own_keypair.secret_key.decrypt(back_b) == 2

    def test_layered_ciphertext(self, keypair, dj, rng):
        lc = dj.encrypt(7, rng)
        back = _roundtrip(lc)
        assert back.value == lc.value
        assert dj.decrypt(back, keypair) == 7

    def test_layered_first_keeps_registries_in_sync(
        self, keypair, own_keypair, dj, rng
    ):
        """A LayeredCiphertext introducing a key must register it on both
        endpoints identically, or later index-based ciphertext references
        resolve to different keys (regression: encoder skipped the
        registration the decoder performed)."""
        encoder, decoder = WireCodec(), WireCodec()
        stream = [
            dj.encrypt(3, rng),                       # introduces keypair's n
            own_keypair.public_key.encrypt(1, rng),   # second key
            keypair.public_key.encrypt(2, rng),       # back-reference first key
        ]
        out = bytearray()
        for value in stream:
            encoder.encode_value(value, out)
        reader = _Reader(bytes(out))
        decoded = [decoder.decode_value(reader) for _ in stream]
        assert dj.decrypt(decoded[0], keypair) == 3
        assert own_keypair.secret_key.decrypt(decoded[1]) == 1
        assert keypair.secret_key.decrypt(decoded[2]) == 2

    def test_scored_item_with_state(self, keypair, dj, rng):
        factory = EhlPlusFactory(keypair.public_key, b"k" * 32, n_hashes=2, rng=rng)
        item = ScoredItem(
            ehl=factory.encode("obj"),
            worst=keypair.public_key.encrypt(3, rng),
            best=keypair.public_key.encrypt(9, rng),
            list_scores=[keypair.public_key.encrypt(1, rng)],
            seen_bits=[dj.encrypt(1, rng)],
            record=keypair.public_key.encrypt(5, rng),
            uid=17,
        )
        back = _roundtrip(item)
        assert type(back.ehl) is type(item.ehl)
        assert [c.value for c in back.ehl.cells] == [c.value for c in item.ehl.cells]
        assert keypair.secret_key.decrypt(back.worst) == 3
        assert keypair.secret_key.decrypt(back.best) == 9
        assert back.uid == 17
        assert dj.decrypt(back.seen_bits[0], keypair) == 1

    def test_joined_tuple(self, keypair, rng):
        jt = JoinedTuple(
            score=keypair.public_key.encrypt(4, rng),
            attributes=[keypair.public_key.encrypt(8, rng)],
        )
        back = _roundtrip(jt)
        assert keypair.secret_key.decrypt(back.score) == 4
        assert keypair.secret_key.decrypt(back.attributes[0]) == 8

    def test_unserializable_rejected(self):
        with pytest.raises(ProtocolError):
            _roundtrip(object())

    def test_encoding_is_size_faithful(self, keypair, rng):
        """Framing overhead stays small next to the accounted payload."""
        cts = [keypair.public_key.encrypt(i, rng) for i in range(8)]
        out = bytearray()
        WireCodec().encode_value(cts, out)
        payload = measure_size(cts)
        assert payload <= len(out) <= payload + 128


class TestMessageEnvelopes:
    def test_registry_is_bijective(self):
        for cls in MESSAGE_TYPES:
            assert message_class(message_type_id(cls)) is cls
            assert message_fields(cls)[0] == "protocol"

    def test_envelope_roundtrip(self, keypair, dj, rng):
        msgs = [
            ZeroTestBatch(protocol="SecWorst", cts=[keypair.public_key.encrypt(0, rng)]),
            StripLayerBatch(protocol="RecoverEnc", cts=[dj.encrypt(1, rng)]),
            DedupBatch(
                protocol="SecDedup",
                matrix=[],
                items=[],
                companions=[],
                ranks=[0, 1],
                own_public=keypair.public_key,
                sentinel=-(1 << 40),
                eliminate=True,
            ),
        ]
        codec_out, codec_in = WireCodec(), WireCodec()
        back = codec_in.decode_envelope(codec_out.encode_envelope(msgs))
        assert [type(m) for m in back] == [type(m) for m in msgs]
        assert back[0].protocol == "SecWorst"
        assert back[0].cts[0].value == msgs[0].cts[0].value
        assert back[2].ranks == [0, 1]
        assert back[2].sentinel == -(1 << 40)
        assert back[2].eliminate is True
        assert back[2].own_public == keypair.public_key

    def test_request_payload_excludes_metadata(self, keypair, rng):
        msg = DedupBatch(
            protocol="SecDedup",
            matrix=[keypair.public_key.encrypt(0, rng)],
            items=[],
            companions=[],
            ranks=[0],
            own_public=keypair.public_key,
            sentinel=-5,
            eliminate=False,
        )
        payload = msg.request_payload()
        assert payload == (msg.matrix, msg.items, msg.companions, msg.ranks)


class TestRoundBatcher:
    def _parties(self, keypair, seed=5):
        from repro.crypto.rng import SecureRandom
        from repro.protocols.base import make_parties

        return make_parties(keypair, rng=SecureRandom(seed))

    def test_single_call_is_one_round(self, keypair, rng):
        ctx = self._parties(keypair)
        ct = ctx.public_key.encrypt(0, ctx.rng)
        bits = ctx.call(ZeroTestBatch(protocol="P", cts=[ct]))
        assert len(bits) == 1
        assert ctx.channel.stats.rounds == 1
        assert ctx.channel.stats.per_protocol_rounds["P"] == 1
        assert ctx.channel.stats.per_protocol_bytes["P"] > 0

    def test_coalesced_flows_share_one_round(self, keypair):
        ctx = self._parties(keypair)
        msgs = [
            ZeroTestBatch(protocol="P", cts=[ctx.public_key.encrypt(i, ctx.rng)])
            for i in range(4)
        ]
        replies = ctx.run_flows([single_message_flow(m) for m in msgs])
        assert len(replies) == 4
        assert ctx.channel.stats.rounds == 1
        assert ctx.channel.stats.per_protocol_rounds["P"] == 1

    def test_mixed_length_flows(self, keypair):
        """Flows of different stage counts coalesce stage by stage."""
        ctx = self._parties(keypair)

        def two_stage():
            first = yield ZeroTestBatch(
                protocol="A", cts=[ctx.public_key.encrypt(0, ctx.rng)]
            )
            second = yield ZeroTestBatch(
                protocol="A", cts=[ctx.public_key.encrypt(1, ctx.rng)]
            )
            return (first, second)

        def no_stage():
            return "done"
            yield  # pragma: no cover

        results = ctx.run_flows(
            [
                two_stage(),
                single_message_flow(
                    ZeroTestBatch(
                        protocol="B", cts=[ctx.public_key.encrypt(2, ctx.rng)]
                    )
                ),
                no_stage(),
            ]
        )
        assert results[2] == "done"
        assert len(results[0]) == 2
        # Stage 1 carried A+B coalesced; stage 2 carried A alone.
        assert ctx.channel.stats.rounds == 2
        assert ctx.channel.stats.per_protocol_rounds["A"] == 2
        assert ctx.channel.stats.per_protocol_rounds["B"] == 1

    def test_threaded_transport_propagates_errors(self, keypair):
        from repro.crypto.rng import SecureRandom
        from repro.protocols.base import make_parties

        ctx = make_parties(keypair, rng=SecureRandom(6), transport="threaded")
        try:
            batcher = RoundBatcher(Channel(), ctx.transport)
            with pytest.raises(ProtocolError, match="S2 dispatch failed"):
                # A DJ ciphertext is not a valid Paillier ciphertext.
                batcher.call(
                    ZeroTestBatch(
                        protocol="P",
                        cts=[DamgardJurik(keypair.public_key, s=2).encrypt(0, ctx.rng)],
                    )
                )
        finally:
            ctx.close()

    def test_transport_close_is_idempotent(self, keypair):
        from repro.protocols.base import make_parties

        ctx = make_parties(keypair, transport="threaded")
        assert isinstance(ctx.transport, ThreadedTransport)
        ctx.close()
        ctx.close()
        with pytest.raises(ProtocolError):
            ctx.call(ZeroTestBatch(protocol="P", cts=[]))


class TestListPrefix:
    def test_view_semantics(self):
        backing = list(range(10))
        view = ListPrefix(backing, 4)
        assert len(view) == 4
        assert view[0] == 0
        assert view[-1] == 3
        assert list(view) == [0, 1, 2, 3]
        with pytest.raises(IndexError):
            view[4]
        with pytest.raises(IndexError):
            view[-5]
        with pytest.raises(TypeError):
            view[1:2]

    def test_dispatcher_rejects_unknown_message(self, keypair):
        from repro.protocols.base import make_parties

        ctx = make_parties(keypair)
        assert isinstance(ctx.transport, InProcessTransport)
        with pytest.raises(ProtocolError):
            ctx.transport.dispatcher.dispatch(object())
"""Unit and property tests for the Paillier cryptosystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import (
    Ciphertext,
    PaillierKeypair,
    decrypt_vector,
    encrypt_vector,
)
from repro.crypto.rng import SecureRandom
from repro.exceptions import DecryptionError, KeyMismatchError


@pytest.fixture(scope="module")
def other_keypair():
    return PaillierKeypair.generate(128, SecureRandom(55))


class TestRoundtrip:
    @pytest.mark.parametrize("m", [0, 1, 2, 255, 10**9])
    def test_encrypt_decrypt(self, keypair, m, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        assert sk.decrypt(pk.encrypt(m, rng)) == m

    def test_modulus_edge(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        assert sk.decrypt(pk.encrypt(pk.n - 1, rng)) == pk.n - 1
        assert sk.decrypt(pk.encrypt(pk.n, rng)) == 0

    def test_probabilistic(self, keypair, rng):
        pk = keypair.public_key
        assert pk.encrypt(5, rng).value != pk.encrypt(5, rng).value

    def test_signed_roundtrip(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        for m in (-1, -12345, 12345, 0):
            assert sk.decrypt_signed(pk.encrypt_signed(m, rng)) == m

    def test_rerandomize_preserves_plaintext(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        c = pk.encrypt(77, rng)
        c2 = pk.rerandomize(c, rng)
        assert c2.value != c.value
        assert sk.decrypt(c2) == 77

    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=25)
    def test_roundtrip_property(self, keypair, m):
        rng = SecureRandom(m)
        assert keypair.secret_key.decrypt(keypair.public_key.encrypt(m, rng)) == m


class TestHomomorphisms:
    @given(st.integers(0, 2**40), st.integers(0, 2**40))
    @settings(max_examples=25)
    def test_addition(self, keypair, x, y):
        rng = SecureRandom(x * 31 + y)
        pk, sk = keypair.public_key, keypair.secret_key
        assert sk.decrypt(pk.encrypt(x, rng) + pk.encrypt(y, rng)) == x + y

    @given(st.integers(0, 2**30), st.integers(0, 2**20))
    @settings(max_examples=25)
    def test_scalar_multiplication(self, keypair, x, a):
        rng = SecureRandom(x + a)
        pk, sk = keypair.public_key, keypair.secret_key
        assert sk.decrypt(pk.encrypt(x, rng) * a) == x * a % pk.n

    def test_plaintext_addition(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        assert sk.decrypt(pk.encrypt(10, rng) + 32) == 42
        assert sk.decrypt(32 + pk.encrypt(10, rng)) == 42

    def test_negation_and_subtraction(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.secret_key
        a, b = pk.encrypt(50, rng), pk.encrypt(8, rng)
        assert sk.decrypt(a - b) == 42
        assert sk.decrypt_signed(b - a) == -42
        assert sk.decrypt(-(-a)) == 50
        assert sk.decrypt(a - 8) == 42

    def test_operator_type_errors(self, keypair, rng):
        c = keypair.public_key.encrypt(1, rng)
        with pytest.raises(TypeError):
            c + 1.5
        with pytest.raises(TypeError):
            c * 2.5


class TestKeySeparation:
    def test_cross_key_add_rejected(self, keypair, other_keypair, rng):
        a = keypair.public_key.encrypt(1, rng)
        b = other_keypair.public_key.encrypt(1, rng)
        with pytest.raises(KeyMismatchError):
            a + b

    def test_cross_key_decrypt_rejected(self, keypair, other_keypair, rng):
        c = other_keypair.public_key.encrypt(1, rng)
        with pytest.raises(KeyMismatchError):
            keypair.secret_key.decrypt(c)

    def test_secret_key_requires_matching_primes(self, keypair, other_keypair):
        from repro.crypto.paillier import PaillierSecretKey

        with pytest.raises(KeyMismatchError):
            PaillierSecretKey(
                other_keypair.secret_key.p,
                other_keypair.secret_key.q,
                keypair.public_key,
            )


class TestValidation:
    def test_decrypt_out_of_range(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.secret_key.raw_decrypt(0)
        with pytest.raises(DecryptionError):
            keypair.secret_key.raw_decrypt(keypair.public_key.n_squared + 1)

    def test_decrypt_non_unit(self, keypair):
        with pytest.raises(DecryptionError):
            keypair.secret_key.raw_decrypt(keypair.secret_key.p)


class TestSerialization:
    def test_bytes_roundtrip(self, keypair, rng):
        pk = keypair.public_key
        c = pk.encrypt(12345, rng)
        restored = Ciphertext.from_bytes(c.to_bytes(), pk)
        assert restored.value == c.value
        assert len(c.to_bytes()) == pk.ciphertext_bytes

    def test_vector_helpers(self, keypair, rng):
        values = [1, 2, 3, 999]
        cts = encrypt_vector(keypair.public_key, values, rng)
        assert decrypt_vector(keypair.secret_key, cts) == values

    def test_serialized_size_constant(self, keypair, rng):
        pk = keypair.public_key
        assert (
            pk.encrypt(0, rng).serialized_size()
            == pk.encrypt(pk.n - 1, rng).serialized_size()
        )


class TestKeypairGeneration:
    def test_modulus_size(self):
        kp = PaillierKeypair.generate(96, SecureRandom(2))
        assert kp.public_key.n.bit_length() == 96

    def test_deterministic_generation(self):
        a = PaillierKeypair.generate(96, SecureRandom(3))
        b = PaillierKeypair.generate(96, SecureRandom(3))
        assert a.public_key.n == b.public_key.n

"""Edge-path tests for the query engines and supporting containers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import BenchContext, SeriesReport, measure_query, oracle_halting_depth
from repro.core.params import SystemParams
from repro.core.results import QueryConfig, QueryResult
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.data.synthetic import Relation, gaussian_relation
from repro.exceptions import QueryError
from repro.nra import SortedLists, nra_topk


@pytest.fixture(scope="module")
def scheme():
    return SecTopK(SystemParams.tiny(), seed=123)


class TestSingleListQueries:
    """m = 1: the degenerate NRA where depth d reveals the d-th best."""

    def test_single_attribute(self, scheme):
        rows = [[9], [3], [7], [1], [5]]
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0], k=2)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        got = scheme.reveal(result)
        assert got == [(0, 9), (2, 7)]
        # m=1: halting as soon as k+1 items prove the bound -> depth k+1
        # at most (the k-th worst equals the exact k-th score).
        assert result.halting_depth <= 3


class TestAlternativeBuildingBlocks:
    def test_query_with_dgk_and_network(self, scheme):
        rows = [[7, 1], [2, 8], [5, 4], [1, 2], [9, 9], [0, 3]]
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=2)
        result = scheme.query(
            encrypted,
            token,
            QueryConfig(
                variant="elim",
                engine="eager",
                compare_method="dgk",
                sort_method="network",
            ),
        )
        oracle = nra_topk(SortedLists(rows, [0, 1]), 2)
        assert scheme.reveal(result) == oracle.topk
        assert result.halting_depth == oracle.halting_depth

    def test_literal_with_batching(self, scheme):
        rows = [[7, 1], [2, 8], [5, 4], [1, 2], [9, 9], [0, 3]]
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=2)
        result = scheme.query(
            encrypted,
            token,
            QueryConfig(variant="batch", batch_p=2, engine="literal"),
        )
        oracle = nra_topk(SortedLists(rows, [0, 1]), 2)
        got = scheme.reveal(result)
        assert {o for o, _ in got} == {o for o, _ in oracle.topk}


class TestPropertyEndToEnd:
    @given(
        st.lists(
            st.lists(st.integers(0, 25), min_size=2, max_size=2),
            min_size=4,
            max_size=7,
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_random_small_relations(self, rows):
        """Hypothesis-driven differential test on tiny relations."""
        scheme = SecTopK(SystemParams.tiny(), seed=sum(map(sum, rows)) + len(rows))
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=2)
        result = scheme.query(
            encrypted, token, QueryConfig(variant="elim", engine="eager")
        )
        oracle = nra_topk(SortedLists(rows, [0, 1]), 2)
        got = scheme.reveal(result)
        assert sorted(s for _, s in got) == sorted(s for _, s in oracle.topk)
        assert result.halting_depth == oracle.halting_depth


class TestHarness:
    def test_series_report_render_and_emit(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        report = SeriesReport(title="T", header=["a", "bb"])
        report.add([1, 22])
        report.add([333, 4])
        report.note("n")
        text = report.render()
        assert "== T ==" in text
        assert "note: n" in text
        report.emit("out.txt")
        assert (tmp_path / "out.txt").read_text().startswith("== T ==")

    def test_bench_context_caches(self):
        ctx = BenchContext(SystemParams.tiny(), seed=5)
        relation = gaussian_relation(6, 2, seed=2, name="cache-test")
        first = ctx.encrypted(relation)
        assert ctx.encrypted(relation) is first
        assert ctx.scheme_for(relation) is ctx.scheme_for(relation)

    def test_measure_query_metrics(self):
        ctx = BenchContext(SystemParams.tiny(), seed=6)
        relation = gaussian_relation(8, 2, seed=3, name="measure-test", max_value=200)
        metrics = measure_query(
            ctx,
            relation,
            [0, 1],
            2,
            QueryConfig(variant="elim", engine="eager", max_depth=3),
            "X",
        )
        assert metrics.dataset == "measure-test"
        assert metrics.bytes_total > 0
        assert metrics.time_per_depth > 0
        assert metrics.latency_modeled > 0
        assert len(metrics.row()) == len(metrics.HEADER)

    def test_oracle_halting_depth(self):
        relation = Relation(name="x", rows=[[9, 9], [1, 1], [2, 2], [0, 0]])
        depth = oracle_halting_depth(relation, [0, 1], 1)
        assert depth == nra_topk(SortedLists(relation.rows, [0, 1]), 1, halting="paper").halting_depth


class TestResultContainers:
    def test_time_per_depth_empty(self):
        result = QueryResult(items=[], halting_depth=0, channel_stats=None)
        assert result.time_per_depth == 0.0

    def test_relation_list_for_missing(self, scheme):
        encrypted = scheme.encrypt([[1, 2], [3, 4]])
        with pytest.raises(QueryError):
            encrypted.list_for(99)


class TestRepeatedQueries:
    def test_fresh_clouds_per_query(self, scheme):
        """Each query() call gets independent channel accounting."""
        rows = [[5, 1], [2, 8], [7, 3], [1, 1]]
        encrypted = scheme.encrypt(rows)
        token = scheme.token([0, 1], k=2)
        r1 = scheme.query(encrypted, token)
        r2 = scheme.query(encrypted, token)
        got1, got2 = scheme.reveal(r1), scheme.reveal(r2)
        assert got1 == got2
        assert r1.channel_stats.total_bytes == r2.channel_stats.total_bytes

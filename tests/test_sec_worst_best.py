"""Tests for SecWorst (Algorithm 4) and SecBest (Algorithm 6) against
their plaintext NRA specifications."""

import pytest

from repro.protocols.sec_best import sec_best
from repro.protocols.sec_worst import sec_worst
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import EncryptedItem


@pytest.fixture()
def factory(ctx):
    return EhlPlusFactory(ctx.public_key, b"w" * 32, n_hashes=3, rng=ctx.rng)


def _item(ctx, factory, object_id, score):
    return EncryptedItem(ehl=factory.encode(object_id), score=ctx.encrypt(score))


class TestSecWorst:
    def test_no_matches(self, ctx, factory, keypair):
        """Fig 3a: depth-1 worst of X1 when other lists show X2, X4."""
        item = _item(ctx, factory, "X1", 10)
        others = [_item(ctx, factory, "X2", 8), _item(ctx, factory, "X4", 8)]
        worst = sec_worst(ctx, item, others)
        assert keypair.secret_key.decrypt(worst) == 10

    def test_single_match(self, ctx, factory, keypair):
        item = _item(ctx, factory, "X1", 10)
        others = [_item(ctx, factory, "X1", 3), _item(ctx, factory, "X2", 8)]
        assert keypair.secret_key.decrypt(sec_worst(ctx, item, others)) == 13

    def test_all_match(self, ctx, factory, keypair):
        item = _item(ctx, factory, "X", 1)
        others = [_item(ctx, factory, "X", 2), _item(ctx, factory, "X", 3)]
        assert keypair.secret_key.decrypt(sec_worst(ctx, item, others)) == 6

    def test_empty_others(self, ctx, factory, keypair):
        item = _item(ctx, factory, "X", 7)
        assert keypair.secret_key.decrypt(sec_worst(ctx, item, [])) == 7

    def test_output_is_fresh(self, ctx, factory):
        item = _item(ctx, factory, "X", 7)
        worst = sec_worst(ctx, item, [_item(ctx, factory, "Y", 1)])
        assert worst.value != item.score.value

    def test_equality_leakage_shape(self, ctx, factory):
        """S2 sees exactly one equality-bit batch with |H| entries."""
        item = _item(ctx, factory, "X", 1)
        others = [_item(ctx, factory, "Y", 2), _item(ctx, factory, "X", 3)]
        sec_worst(ctx, item, others)
        batches = ctx.leakage.by_kind("eq_bits")
        assert len(batches) == 1
        assert sorted(batches[0].payload) == [0, 1]


class TestSecBest:
    def test_fig3_depth1_best(self, ctx, factory, keypair):
        """Fig 3a: B(X1) after depth 1 = 10 + 8 + 8 = 26."""
        item = _item(ctx, factory, "X1", 10)
        prefixes = [
            [_item(ctx, factory, "X2", 8)],   # list R2 down to depth 1
            [_item(ctx, factory, "X4", 8)],   # list R3 down to depth 1
        ]
        assert keypair.secret_key.decrypt(sec_best(ctx, item, prefixes)) == 26

    def test_fig3_depth2_best_x4(self, ctx, factory, keypair):
        """Fig 3b: B(X4) after depth 2 = 3(R1 bottom)... computed for the
        R3 occurrence: 8 + bottom(R1)=8? -> follow the example: X4 best
        at depth 2 over lists R1, R2 with prefixes shown is
        8 + 8(R1 unseen bottom=8) + 7(R2 unseen bottom=7) = 23."""
        item = _item(ctx, factory, "X4", 8)
        prefixes = [
            [_item(ctx, factory, "X1", 10), _item(ctx, factory, "X2", 8)],
            [_item(ctx, factory, "X2", 8), _item(ctx, factory, "X3", 7)],
        ]
        assert keypair.secret_key.decrypt(sec_best(ctx, item, prefixes)) == 23

    def test_seen_score_used_over_bottom(self, ctx, factory, keypair):
        item = _item(ctx, factory, "A", 5)
        prefixes = [
            [_item(ctx, factory, "A", 9), _item(ctx, factory, "B", 2)],
        ]
        # A appeared in the other list with score 9: best = 5 + 9.
        assert keypair.secret_key.decrypt(sec_best(ctx, item, prefixes)) == 14

    def test_no_other_lists(self, ctx, factory, keypair):
        item = _item(ctx, factory, "A", 5)
        assert keypair.secret_key.decrypt(sec_best(ctx, item, [])) == 5

    def test_multiple_depths_bottom(self, ctx, factory, keypair):
        item = _item(ctx, factory, "A", 5)
        prefixes = [
            [
                _item(ctx, factory, "B", 9),
                _item(ctx, factory, "C", 6),
                _item(ctx, factory, "D", 4),
            ]
        ]
        # A unseen in the other list: best = 5 + bottom(4).
        assert keypair.secret_key.decrypt(sec_best(ctx, item, prefixes)) == 9

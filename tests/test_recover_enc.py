"""Tests for RecoverEnc (Algorithm 5)."""

import pytest

from repro.protocols.recover_enc import recover_enc, recover_enc_batch


class TestRecoverEnc:
    def test_single_roundtrip(self, ctx, keypair):
        inner = ctx.public_key.encrypt(123, ctx.rng)
        layered = ctx.dj.encrypt_ciphertext(inner, ctx.rng)
        recovered = recover_enc(ctx, layered)
        assert keypair.secret_key.decrypt(recovered) == 123

    def test_batch_roundtrip(self, ctx, keypair):
        values = [0, 1, 7, 10**6, ctx.public_key.n - 1]
        layered = [
            ctx.dj.encrypt_ciphertext(ctx.public_key.encrypt(v, ctx.rng), ctx.rng)
            for v in values
        ]
        recovered = recover_enc_batch(ctx, layered)
        assert [keypair.secret_key.decrypt(c) for c in recovered] == values

    def test_empty_batch(self, ctx):
        assert recover_enc_batch(ctx, []) == []

    def test_one_round_per_batch(self, ctx):
        layered = [
            ctx.dj.encrypt_ciphertext(ctx.public_key.encrypt(v, ctx.rng), ctx.rng)
            for v in range(5)
        ]
        before = ctx.channel.stats.rounds
        recover_enc_batch(ctx, layered)
        assert ctx.channel.stats.rounds == before + 1

    def test_output_differs_from_input(self, ctx, keypair):
        """The recovered ciphertext is a fresh-looking encryption."""
        inner = ctx.public_key.encrypt(5, ctx.rng)
        layered = ctx.dj.encrypt_ciphertext(inner, ctx.rng)
        recovered = recover_enc(ctx, layered)
        assert recovered.value != inner.value
        assert keypair.secret_key.decrypt(recovered) == 5

    def test_s2_sees_only_blinded(self, ctx, keypair):
        """S2's view during RecoverEnc must be the blinded inner value,
        never the true plaintext (checked via the leakage log kinds)."""
        inner = ctx.public_key.encrypt(99, ctx.rng)
        recover_enc(ctx, ctx.dj.encrypt_ciphertext(inner, ctx.rng))
        kinds = {e.kind for e in ctx.leakage.events}
        assert kinds == {"recover_batch"}

    def test_works_after_layered_arithmetic(self, ctx, keypair):
        """RecoverEnc composes with the layered homomorphism."""
        a = ctx.public_key.encrypt(10, ctx.rng)
        b = ctx.public_key.encrypt(32, ctx.rng)
        layered = ctx.dj.encrypt_ciphertext(a, ctx.rng).scalar_ct(b)
        recovered = recover_enc(ctx, layered)
        assert keypair.secret_key.decrypt(recovered) == 42

"""Tests for SecUpdate (Algorithm 9): merging a depth batch into T."""

import pytest

from repro.protocols.sec_update import sec_update
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import ScoredItem


@pytest.fixture()
def factory(ctx):
    return EhlPlusFactory(ctx.public_key, b"u" * 32, n_hashes=3, rng=ctx.rng)


def _scored(ctx, factory, object_id, worst, best):
    return ScoredItem(
        ehl=factory.encode(object_id),
        worst=ctx.encrypt(worst),
        best=ctx.encrypt(best),
        record=ctx.encrypt(0),
    )


def _pairs(items, keypair):
    sk = keypair.secret_key
    return sorted((sk.decrypt_signed(i.worst), sk.decrypt_signed(i.best)) for i in items)


class TestSecUpdate:
    def test_empty_t_appends_all(self, ctx, factory, keypair, own_keypair):
        gamma = [_scored(ctx, factory, "a", 1, 10), _scored(ctx, factory, "b", 2, 20)]
        result = sec_update(ctx, [], gamma, own_keypair, eliminate=True)
        assert _pairs(result, keypair) == [(1, 10), (2, 20)]

    def test_empty_gamma_keeps_t(self, ctx, factory, keypair, own_keypair):
        t = [_scored(ctx, factory, "a", 5, 9)]
        result = sec_update(ctx, t, [], own_keypair, eliminate=True)
        assert _pairs(result, keypair) == [(5, 9)]

    def test_matched_accumulates_worst_refreshes_best(
        self, ctx, factory, keypair, own_keypair
    ):
        """A matched candidate's worst grows by the depth contribution and
        its best is replaced by the freshly computed bound."""
        t = [_scored(ctx, factory, "a", 10, 100)]
        gamma = [_scored(ctx, factory, "a", 7, 80)]
        result = sec_update(ctx, t, gamma, own_keypair, eliminate=True)
        assert _pairs(result, keypair) == [(17, 80)]

    def test_unmatched_appended(self, ctx, factory, keypair, own_keypair):
        t = [_scored(ctx, factory, "a", 10, 100)]
        gamma = [_scored(ctx, factory, "b", 7, 80)]
        result = sec_update(ctx, t, gamma, own_keypair, eliminate=True)
        assert _pairs(result, keypair) == [(7, 80), (10, 100)]

    def test_mixed_batch(self, ctx, factory, keypair, own_keypair):
        t = [
            _scored(ctx, factory, "a", 10, 100),
            _scored(ctx, factory, "b", 20, 200),
        ]
        gamma = [
            _scored(ctx, factory, "b", 5, 150),   # matches b
            _scored(ctx, factory, "c", 1, 50),    # new
        ]
        result = sec_update(ctx, t, gamma, own_keypair, eliminate=True)
        assert _pairs(result, keypair) == [(1, 50), (10, 100), (25, 150)]

    def test_bury_mode_keeps_length(self, ctx, factory, keypair, own_keypair):
        t = [_scored(ctx, factory, "a", 10, 100)]
        gamma = [_scored(ctx, factory, "a", 7, 80)]
        result = sec_update(ctx, t, gamma, own_keypair, eliminate=False)
        assert len(result) == 2  # merged entry + buried husk
        sentinel = -ctx.encoder.sentinel
        assert (17, 80) in _pairs(result, keypair)
        assert (sentinel, sentinel) in _pairs(result, keypair)

    def test_accumulation_over_multiple_updates(
        self, ctx, factory, keypair, own_keypair
    ):
        """Simulates three depths of one object being seen repeatedly."""
        t = []
        for depth, (w, b) in enumerate([(4, 40), (3, 30), (2, 20)]):
            gamma = [_scored(ctx, factory, "obj", w, b)]
            t = sec_update(ctx, t, gamma, own_keypair, eliminate=True)
        assert _pairs(t, keypair) == [(9, 20)]

    def test_junk_in_t_never_matches(self, ctx, factory, keypair, own_keypair):
        """Buried husks in T must not absorb new items' scores."""
        t = [_scored(ctx, factory, "a", 1, 2), _scored(ctx, factory, "a", 1, 2)]
        t = sec_update(ctx, [], t, own_keypair, eliminate=False)  # bury one
        gamma = [_scored(ctx, factory, "a", 10, 20)]
        result = sec_update(ctx, t, gamma, own_keypair, eliminate=False)
        pairs = _pairs(result, keypair)
        assert (11, 20) in pairs  # the live entry absorbed the new score

"""Tests for the item blinding shared by EncSort/SecDedup/SecDupElim."""

import pytest

from repro.protocols.blinding import SEED_BYTES, ItemBlinder, junk_item
from repro.exceptions import ProtocolError
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import ScoredItem


@pytest.fixture()
def blinder(ctx):
    return ItemBlinder(ctx.public_key, ctx.dj)


@pytest.fixture()
def item(ctx):
    factory = EhlPlusFactory(ctx.public_key, b"b" * 32, n_hashes=3, rng=ctx.rng)
    return ScoredItem(
        ehl=factory.encode("obj"),
        worst=ctx.encrypt(10),
        best=ctx.encrypt(20),
        list_scores=[ctx.encrypt(3), ctx.encrypt(7)],
        seen_bits=[ctx.dj.encrypt(1, ctx.rng), ctx.dj.encrypt(0, ctx.rng)],
        record=ctx.encrypt(5),
    )


def _decrypt_item(item, ctx, keypair):
    sk = keypair.secret_key
    return {
        "worst": sk.decrypt_signed(item.worst),
        "best": sk.decrypt_signed(item.best),
        "scores": [sk.decrypt_signed(c) for c in item.list_scores],
        "seen": [ctx.dj.decrypt(b, keypair) for b in item.seen_bits],
        "record": sk.decrypt(item.record),
    }


class TestBlindUnblind:
    def test_roundtrip_single_seed(self, blinder, item, ctx, keypair):
        seed = blinder.fresh_seed(ctx.rng)
        blinded = blinder.blind(item, seed, ctx.rng)
        restored = blinder.unblind(blinded, [seed])
        assert _decrypt_item(restored, ctx, keypair) == _decrypt_item(item, ctx, keypair)

    def test_roundtrip_double_seed(self, blinder, item, ctx, keypair):
        s1, s2 = blinder.fresh_seed(ctx.rng), blinder.fresh_seed(ctx.rng)
        blinded = blinder.blind(blinder.blind(item, s1, ctx.rng), s2, ctx.rng)
        restored = blinder.unblind(blinded, [s2, s1])  # order-independent
        assert _decrypt_item(restored, ctx, keypair) == _decrypt_item(item, ctx, keypair)

    def test_blinding_changes_plaintexts(self, blinder, item, ctx, keypair):
        seed = blinder.fresh_seed(ctx.rng)
        blinded = blinder.blind(item, seed, ctx.rng)
        assert keypair.secret_key.decrypt(blinded.worst) != 10

    def test_blinding_breaks_equality(self, blinder, item, ctx, keypair):
        seed = blinder.fresh_seed(ctx.rng)
        blinded = blinder.blind(item, seed, ctx.rng)
        assert keypair.secret_key.decrypt(item.ehl.minus(blinded.ehl, ctx.rng)) != 0

    def test_plain_item_without_state(self, blinder, ctx, keypair):
        factory = EhlPlusFactory(ctx.public_key, b"b" * 32, n_hashes=2, rng=ctx.rng)
        item = ScoredItem(ehl=factory.encode(1), worst=ctx.encrypt(1), best=ctx.encrypt(2))
        seed = blinder.fresh_seed(ctx.rng)
        restored = blinder.unblind(blinder.blind(item, seed, ctx.rng), [seed])
        assert keypair.secret_key.decrypt(restored.worst) == 1
        assert restored.list_scores is None


class TestSeedTransport:
    def test_encrypt_decrypt_seed(self, blinder, ctx, own_keypair):
        seed = blinder.fresh_seed(ctx.rng)
        companion = blinder.encrypt_seed(own_keypair.public_key, seed, ctx.rng)
        assert blinder.decrypt_seeds(own_keypair, [companion]) == [seed]

    def test_seed_size(self, blinder, ctx):
        assert len(blinder.fresh_seed(ctx.rng)) == SEED_BYTES

    def test_non_seed_value_rejected(self, blinder, ctx, own_keypair):
        bogus = own_keypair.public_key.encrypt(1 << (8 * SEED_BYTES), ctx.rng)
        with pytest.raises(ProtocolError):
            blinder.decrypt_seeds(own_keypair, [bogus])


class TestJunkItem:
    def test_sentinel_scores(self, ctx, item, keypair):
        junk = junk_item(ctx.public_key, ctx.dj, item, -ctx.encoder.sentinel, ctx.rng)
        sk = keypair.secret_key
        assert sk.decrypt_signed(junk.worst) == -ctx.encoder.sentinel
        assert sk.decrypt_signed(junk.best) == -ctx.encoder.sentinel

    def test_eager_state_recomputes_to_sentinel(self, ctx, item, keypair):
        """worst = sum(list_scores) and best = worst + unseen bottoms must
        both land on the sentinel after an eager-engine refresh."""
        junk = junk_item(ctx.public_key, ctx.dj, item, -ctx.encoder.sentinel, ctx.rng)
        sk = keypair.secret_key
        total = sum(sk.decrypt_signed(c) for c in junk.list_scores)
        assert total == -ctx.encoder.sentinel
        assert all(ctx.dj.decrypt(b, keypair) == 1 for b in junk.seen_bits)

    def test_random_identity(self, ctx, item, keypair):
        junk = junk_item(ctx.public_key, ctx.dj, item, -1, ctx.rng)
        assert keypair.secret_key.decrypt(item.ehl.minus(junk.ehl, ctx.rng)) != 0

    def test_shape_matches_template(self, ctx, item):
        junk = junk_item(ctx.public_key, ctx.dj, item, -1, ctx.rng)
        assert len(junk.ehl.cells) == len(item.ehl.cells)
        assert len(junk.list_scores) == len(item.list_scores)
        assert len(junk.seen_bits) == len(item.seen_bits)
        assert junk.record is not None

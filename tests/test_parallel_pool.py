"""ComputePool unit tests: chunking, modes, slab transport, lifecycle.

The server-level invariant (a pooled query's transcript is bit-identical
to an unpooled one) lives in ``tests/test_server.py``; here the pool is
exercised directly — balanced chunk geometry, the thread / process /
inline compute paths, the shared-memory slab round-trip, and the
failure-mode contract (closed pools, dead pools, drain-on-close).
"""

from __future__ import annotations

import pytest

from repro.crypto import backend, kernels
from repro.crypto.damgard_jurik import DamgardJurik, LayeredCiphertext
from repro.crypto.parallel import ComputePool, _chunk_count, _chunks, pool_start_method
from repro.crypto.rng import SecureRandom
from repro.exceptions import ComputePoolError

needs_kernel = pytest.mark.skipif(
    not backend.kernel_available(), reason="gmp kernel unavailable"
)


@pytest.fixture(scope="module")
def dj(keypair):
    return DamgardJurik(keypair.public_key, s=2)


@pytest.fixture(scope="module")
def payload(keypair, dj):
    """Ciphertext values plus their expected plaintexts/inner values."""
    rng = SecureRandom(31)
    plains = list(range(24))
    dec_vals = [keypair.public_key.encrypt(v, rng).value for v in plains]
    strip_vals = [dj.encrypt(v, rng).value for v in plains]
    ref_dec = keypair.secret_key.raw_decrypt_batch(dec_vals)
    ref_strip = dj.decrypt_batch(
        [LayeredCiphertext(v, dj) for v in strip_vals], keypair
    )
    return dec_vals, ref_dec, strip_vals, ref_strip


class TestChunking:
    def test_chunks_are_balanced(self):
        for n, parts in [(25, 3), (40, 3), (7, 7), (100, 4), (5, 1)]:
            chunks = _chunks(list(range(n)), parts)
            sizes = [len(c) for c in chunks]
            assert len(chunks) == parts
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1
            # Contiguous and order-preserving.
            assert [x for c in chunks for x in c] == list(range(n))

    def test_no_chunk_below_min_batch(self):
        # The historical regression: 25 items over 3 workers with
        # min_batch=8 must not emit a 7-item runt tail.
        for n in range(1, 200):
            for workers in (1, 2, 3, 4, 8):
                for min_batch in (1, 4, 8):
                    parts = _chunk_count(n, workers, min_batch)
                    sizes = [len(c) for c in _chunks(list(range(n)), parts)]
                    assert parts <= workers
                    if parts > 1:
                        assert min(sizes) >= min_batch

    def test_chunk_count_zero_min_batch(self):
        assert _chunk_count(10, 4, 0) == 4  # guarded against division by 0


class TestComputePaths:
    """decrypt/strip results are identical on every mode × transport."""

    def _check(self, pool, payload):
        dec_vals, ref_dec, strip_vals, ref_strip = payload
        try:
            assert pool.decrypt_values(dec_vals) == ref_dec
            assert pool.strip_values(strip_vals) == ref_strip
        finally:
            pool.close()

    def test_inline_below_min_batch(self, keypair, dj, payload):
        dec_vals, ref_dec, _, _ = payload
        pool = ComputePool(keypair, dj, workers=4, min_batch=64, mode="process",
                           transport="pickle")
        try:
            # 24 values < min_batch=64: computed inline, no fan-out.
            assert pool.decrypt_values(dec_vals) == ref_dec
        finally:
            pool.close()

    @needs_kernel
    def test_thread_mode(self, keypair, dj, payload):
        pool = ComputePool(keypair, dj, workers=3, min_batch=4, mode="thread")
        assert pool.transport == "none"
        self._check(pool, payload)

    def test_process_pickle(self, keypair, dj, payload):
        pool = ComputePool(keypair, dj, workers=3, min_batch=4, mode="process",
                           transport="pickle")
        self._check(pool, payload)

    def test_process_shm(self, keypair, dj, payload):
        pool = ComputePool(keypair, dj, workers=3, min_batch=4, mode="process",
                           transport="shm")
        self._check(pool, payload)

    def test_process_shm_oversize_chunk_falls_back(self, keypair, dj, payload):
        # slab_items=2 < chunk size: every chunk takes the pickle path.
        pool = ComputePool(keypair, dj, workers=3, min_batch=4, mode="process",
                           transport="shm", slab_items=2)
        self._check(pool, payload)

    def test_auto_mode_resolves(self, keypair, dj):
        pool = ComputePool(keypair, dj, workers=2)
        try:
            expected = "thread" if backend.kernel_available() else "process"
            assert pool.mode == expected
        finally:
            pool.close()

    def test_spawn_initializer_path(self, keypair, dj, payload, monkeypatch):
        """Workers started without fork inheritance (the initializer
        carries all state) still produce identical results."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn not available")
        monkeypatch.setattr(
            "repro.crypto.parallel.pool_start_method", lambda: "spawn"
        )
        pool = ComputePool(keypair, dj, workers=2, min_batch=4, mode="process",
                           transport="shm")
        self._check(pool, payload)


class TestValidation:
    def test_unknown_mode_rejected(self, keypair, dj):
        with pytest.raises(ValueError):
            ComputePool(keypair, dj, mode="fiber")

    def test_unknown_transport_rejected(self, keypair, dj):
        with pytest.raises(ValueError):
            ComputePool(keypair, dj, mode="process", transport="carrier-pigeon")

    def test_thread_mode_requires_kernel(self, keypair, dj, monkeypatch):
        monkeypatch.setattr(backend, "kernel_available", lambda: False)
        with pytest.raises(ValueError, match="gmp-kernel"):
            ComputePool(keypair, dj, mode="thread")


class TestLifecycle:
    def test_closed_pool_rejects_batches(self, keypair, dj, payload):
        dec_vals = payload[0]
        pool = ComputePool(keypair, dj, workers=2, min_batch=4, mode="process",
                           transport="pickle")
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.decrypt_values(dec_vals)
        pool.close()  # idempotent

    def test_close_wait_drains(self, keypair, dj, payload):
        dec_vals, ref_dec, _, _ = payload
        pool = ComputePool(keypair, dj, workers=2, min_batch=4, mode="process",
                           transport="shm")
        assert pool.decrypt_values(dec_vals) == ref_dec
        pool.close(wait=True)
        pool.close(wait=True)

    def test_slab_released_on_close(self, keypair, dj):
        from multiprocessing import shared_memory

        pool = ComputePool(keypair, dj, workers=2, mode="process", transport="shm")
        name = pool._shm.name
        pool.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_dead_pool_raises_typed_error(self, keypair, dj, payload):
        dec_vals = payload[0]
        pool = ComputePool(keypair, dj, workers=2, min_batch=4, mode="process",
                           transport="pickle")
        try:
            # Kill the workers underneath the pool: the next batch must
            # surface as the typed ComputePoolError, not BrokenProcessPool.
            for proc in pool._executor._processes.values():
                proc.terminate()
            with pytest.raises(ComputePoolError):
                pool.decrypt_values(dec_vals)
        finally:
            pool.close()


class TestLimbFormat:
    """The fixed-width word format shared by the kernel and the slab."""

    def test_round_trip(self):
        values = [0, 1, 2**63, 2**64 - 1, 2**64, 2**191, 2**192 - 1]
        words = kernels.words_for(max(values))
        buf = kernels.pack_ints(values, words)
        assert kernels.unpack_ints(buf, words, len(values)) == values

    def test_round_trip_at_offset(self):
        values = [7, 2**127 - 1]
        buf = bytearray(200)
        kernels.pack_ints(values, 2, out=buf, offset=40)
        assert kernels.unpack_ints(buf, 2, 2, 40) == values

    def test_width_limit_enforced(self):
        # A value too wide for its slot must fail loudly, not truncate —
        # the guarantee the slab transport's correctness rests on.
        with pytest.raises(OverflowError):
            kernels.pack_ints([2**64], 1)
        assert kernels.unpack_ints(kernels.pack_ints([2**64 - 1], 1), 1, 1) == [
            2**64 - 1
        ]

    def test_words_for(self):
        assert kernels.words_for(0) == 1
        assert kernels.words_for(2**64 - 1) == 1
        assert kernels.words_for(2**64) == 2


def test_pool_start_method_is_fork_when_available():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        assert pool_start_method() == "fork"
    else:
        assert pool_start_method() in multiprocessing.get_all_start_methods()

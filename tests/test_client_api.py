"""The job-oriented client API: ``repro.connect`` / ``TopKClient``.

Covers the PR-4 acceptance criteria:

* ``submit(...).result()`` is bit-identical (results, rounds, bytes,
  leakage profile) to the legacy ``TopKServer.execute`` path, across
  the in-process, threaded and TCP-daemon transports;
* cancellation at a round boundary and per-job timeouts resolve the
  job without wedging the server — subsequent jobs are served;
* the streaming event taxonomy arrives in order;
* the engine registry serves eager/literal plus the plaintext/sknn
  baselines through the same ``QueryConfig``;
* ``QueryStats`` carries the uniform cost profile;
* the curated ``repro.__all__`` leads with the client façade and the
  legacy spellings warn.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro import JobCancelled, JobStatus, JobTimeout, QueryConfig
from repro.core.params import SystemParams
from repro.core.scheme import SecTopK
from repro.crypto.rng import SecureRandom
from repro.events import (
    CandidateFinalized,
    DepthAdvanced,
    JobFinished,
    JobQueued,
    JobStarted,
    RoundTrip,
)
from repro.exceptions import QueryError, TransportError
from repro.net.socket_transport import disconnect_all
from repro.server import S2Service, TopKServer

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


def _fresh_deployment(seed: int = 55):
    rng = SecureRandom(123)
    rows = [[rng.randint_below(40) for _ in range(3)] for _ in range(10)]
    scheme = SecTopK(SystemParams.tiny(), seed=seed)
    return scheme, scheme.encrypt(rows), rows


def _oracle_topk(rows, attrs, k):
    from repro.nra import naive_topk

    return naive_topk(rows, attrs, k)


def _leakage_tuples(result):
    return [
        (e.observer, e.protocol, e.kind, repr(e.payload))
        for e in result.leakage_events
    ]


@pytest.fixture(scope="module")
def tcp_daemon():
    service = S2Service("tcp://127.0.0.1:0")
    address = service.start()
    yield service, address
    disconnect_all()
    service.close()


class TestSubmitExecuteParity:
    """The acceptance criterion: submit == execute, bit for bit."""

    CONFIGS = [
        pytest.param(QueryConfig(variant="elim", engine="eager"), id="eager"),
        pytest.param(QueryConfig(variant="elim", engine="literal"), id="literal"),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("transport", ["inprocess", "threaded", "tcp"])
    def test_bit_identical(self, transport, config, request):
        if transport == "tcp":
            _, transport = request.getfixturevalue("tcp_daemon")

        scheme_a, relation_a, _ = _fresh_deployment()
        token_a = scheme_a.token([0, 1, 2], k=2)
        with TopKServer(scheme_a, relation_a, transport=transport) as server:
            legacy = server.execute(token_a, config)

        scheme_b, relation_b, _ = _fresh_deployment()
        token_b = scheme_b.token([0, 1, 2], k=2)
        with repro.connect(scheme_b, relation_b, transport) as client:
            job = client.submit(token_b, config)
            modern = job.result(timeout=120)

        assert scheme_a.reveal(legacy) == scheme_b.reveal(modern)
        assert legacy.halting_depth == modern.halting_depth
        assert legacy.channel_stats.rounds == modern.channel_stats.rounds
        assert (
            legacy.channel_stats.bytes_s1_to_s2
            == modern.channel_stats.bytes_s1_to_s2
        )
        assert (
            legacy.channel_stats.bytes_s2_to_s1
            == modern.channel_stats.bytes_s2_to_s1
        )
        assert _leakage_tuples(legacy) == _leakage_tuples(modern)
        assert job.status == JobStatus.DONE and job.done()

    def test_submit_many_overlap_matches_execute_many(self):
        scheme_a, relation_a, _ = _fresh_deployment()
        requests_a = [
            (scheme_a.token([0, 1], k=2), None),
            (scheme_a.token([1, 2], k=2), None),
            (scheme_a.token([0, 2], k=2), None),
        ]
        with TopKServer(scheme_a, relation_a) as server:
            batch = server.execute_many(requests_a, concurrency=1)

        scheme_b, relation_b, _ = _fresh_deployment()
        requests_b = [
            (scheme_b.token([0, 1], k=2), None),
            (scheme_b.token([1, 2], k=2), None),
            (scheme_b.token([0, 2], k=2), None),
        ]
        with repro.connect(scheme_b, relation_b) as client:
            jobs = client.submit_many(requests_b)
            piped = [job.result(timeout=120) for job in jobs]

        for a, b in zip(batch, piped):
            assert scheme_a.reveal(a) == scheme_b.reveal(b)
            assert a.channel_stats.rounds == b.channel_stats.rounds
            assert a.channel_stats.total_bytes == b.channel_stats.total_bytes


class TestEventStream:
    def test_event_taxonomy_and_ordering(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(scheme, relation) as client:
            job = client.submit(client.token([0, 1], k=2))
            events = list(job.events())

        kinds = [type(e) for e in events]
        assert kinds[0] is JobQueued and events[0].job_id == job.job_id
        assert kinds[1] is JobStarted
        assert kinds[-1] is JobFinished and events[-1].status == JobStatus.DONE

        depths = [e.depth for e in events if isinstance(e, DepthAdvanced)]
        assert depths == sorted(depths) and len(set(depths)) == len(depths)
        assert depths, "no DepthAdvanced events emitted"

        rounds = [e.rounds for e in events if isinstance(e, RoundTrip)]
        assert rounds == sorted(rounds) and rounds[-1] >= len(rounds)

        finals = [e for e in events if isinstance(e, CandidateFinalized)]
        assert [e.rank for e in finals] == [1, 2]
        assert all(e.depth == depths[-1] for e in finals)
        # Finalization comes after the last depth and before the finish.
        last_depth_idx = max(
            i for i, e in enumerate(events) if isinstance(e, DepthAdvanced)
        )
        assert all(events.index(e) > last_depth_idx for e in finals)

        # Replays see the identical stream.
        assert list(job.events()) == events

    def test_listener_does_not_change_transcript(self):
        scheme_a, relation_a, _ = _fresh_deployment()
        with repro.connect(scheme_a, relation_a) as client:
            silent = client.submit(client.token([0, 1], k=2)).result()

        scheme_b, relation_b, _ = _fresh_deployment()
        with repro.connect(scheme_b, relation_b) as client:
            job = client.submit(client.token([0, 1], k=2))
            consumed = sum(1 for _ in job.events())
            watched = job.result()
        assert consumed > 0
        assert scheme_a.reveal(silent) == scheme_b.reveal(watched)
        assert silent.channel_stats.rounds == watched.channel_stats.rounds
        assert _leakage_tuples(silent) == _leakage_tuples(watched)


class TestCancellationAndTimeouts:
    def test_cancel_at_round_boundary_then_serve_next_job(self):
        scheme, relation, rows = _fresh_deployment()
        # 20 ms per round stretches the query well past the cancel.
        with repro.connect(scheme, relation, rtt_ms=20.0) as client:
            job = client.submit(client.token([0, 1, 2], k=2))
            for event in job.events():
                if isinstance(event, RoundTrip):
                    assert job.cancel() is True
                    break
            with pytest.raises(JobCancelled):
                job.result(timeout=60)
            assert job.status == JobStatus.CANCELLED and job.done()
            assert job.cancel() is False  # too late — already terminal

            # The server (and its transports) survive the abort.
            after = client.query(client.token([0, 1], k=2))
            winners = {o for o, _ in client.reveal(after)}
            assert winners == {o for o, _ in _oracle_topk(rows, [0, 1], 2)}

    def test_cancel_while_queued_never_starts(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(
            scheme, relation, rtt_ms=20.0, scheduler_workers=1
        ) as client:
            blocker = client.submit(client.token([0, 1, 2], k=2))
            queued = client.submit(client.token([0, 1], k=2))
            assert queued.cancel() is True
            with pytest.raises(JobCancelled):
                queued.result(timeout=60)
            assert not any(
                isinstance(e, JobStarted) for e in queued.events()
            ), "a cancelled-while-queued job must never start"
            blocker.result(timeout=120)  # the worker was never wedged

    def test_per_job_timeout(self):
        scheme, relation, rows = _fresh_deployment()
        with repro.connect(scheme, relation, rtt_ms=20.0) as client:
            job = client.submit(client.token([0, 1, 2], k=2), timeout=0.1)
            with pytest.raises(JobTimeout):
                job.result(timeout=60)
            assert job.status == JobStatus.FAILED
            # Later jobs are unaffected.
            after = client.query(client.token([0, 2], k=2))
            winners = {o for o, _ in client.reveal(after)}
            assert winners == {o for o, _ in _oracle_topk(rows, [0, 2], 2)}

    def test_result_wait_timeout_is_not_a_job_failure(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(scheme, relation, rtt_ms=10.0) as client:
            job = client.submit(client.token([0, 1], k=2))
            with pytest.raises(TimeoutError):
                job.result(timeout=0.01)
            result = job.result(timeout=120)  # still running, then done
            assert job.status == JobStatus.DONE
            assert len(result.items) == 2


class TestEngineRegistry:
    def test_registry_lists_all_engines(self):
        from repro.core.engine import engine_names

        assert set(engine_names()) >= {"eager", "literal", "plaintext", "sknn"}
        assert repro.TopKClient.engines() == engine_names()

    def test_unknown_engine_rejected(self):
        with pytest.raises(QueryError):
            QueryConfig(engine="quantum")

    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(QueryConfig(engine="plaintext"), id="plaintext"),
            pytest.param(
                QueryConfig(engine="sknn", compare_method="blinded"), id="sknn"
            ),
        ],
    )
    def test_baselines_match_oracle(self, config):
        scheme, relation, rows = _fresh_deployment()
        with repro.connect(scheme, relation) as client:
            result = client.query(client.token([0, 1, 2], k=3), config)
        assert client.reveal(result) == _oracle_topk(rows, [0, 1, 2], 3)
        assert result.halting_depth == len(rows)  # full scan, by design
        assert result.stats.engine == config.engine

    def test_plaintext_engine_transport_equivalent(self):
        runs = {}
        for transport in ("inprocess", "threaded"):
            scheme, relation, _ = _fresh_deployment()
            with repro.connect(scheme, relation, transport) as client:
                result = client.query(
                    client.token([0, 1], k=2), QueryConfig(engine="plaintext")
                )
                runs[transport] = (
                    client.reveal(result),
                    result.channel_stats.rounds,
                    result.channel_stats.total_bytes,
                    tuple(_leakage_tuples(result)),
                )
        assert runs["inprocess"] == runs["threaded"]

    def test_naive_engine_ships_everything_once(self):
        scheme, relation, rows = _fresh_deployment()
        with repro.connect(scheme, relation) as client:
            result = client.query(
                client.token([0, 1, 2], k=2), QueryConfig(engine="plaintext")
            )
        # One round, O(n·m) payload: the strawman's cost signature.
        assert result.channel_stats.rounds == 1
        reveals = [e for e in result.leakage_events if e.kind == "full_reveal"]
        assert reveals and reveals[0].payload == (3 * len(rows), len(rows))


class TestQueryStats:
    def test_stats_mirror_channel_and_leakage(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(scheme, relation) as client:
            result = client.query(client.token([0, 1], k=2))
        stats = result.stats
        assert stats.rounds == result.channel_stats.rounds
        assert stats.bytes_s1_to_s2 == result.channel_stats.bytes_s1_to_s2
        assert stats.bytes_s2_to_s1 == result.channel_stats.bytes_s2_to_s1
        assert stats.total_bytes == result.channel_stats.total_bytes
        assert stats.halting_depth == result.halting_depth
        assert stats.depths_scanned == len(result.depth_seconds)
        assert stats.engine == "eager" and stats.variant == "elim"
        assert stats.leakage == tuple(
            (e.observer, e.protocol, e.kind, repr(e.payload))
            for e in result.leakage_events
        )
        assert stats.leakage[0][2] == "query_pattern"

    def test_stats_uniform_across_execution_modes(self):
        scheme_a, relation_a, _ = _fresh_deployment()
        with TopKServer(scheme_a, relation_a) as server:
            seq = server.execute_many(
                [(scheme_a.token([0, 1], k=2), None)], concurrency=1
            )[0]
        scheme_b, relation_b, _ = _fresh_deployment()
        with TopKServer(scheme_b, relation_b) as server:
            proc = server.execute_many(
                [(scheme_b.token([0, 1], k=2), None)], concurrency=2, mode="process"
            )[0]
        from dataclasses import replace

        # Identical modulo wall-clock (elapsed is measured, not derived).
        assert replace(seq.stats, elapsed_seconds=0.0) == replace(
            proc.stats, elapsed_seconds=0.0
        )

    def test_per_query_leakage_slices_in_shared_session(self):
        scheme, relation, _ = _fresh_deployment()
        with TopKServer(scheme, relation) as server:
            with server.session() as session:
                first = session.query(scheme.token([0, 1], k=2))
                second = session.query(scheme.token([1, 2], k=2))
        # Each result carries only its own query's events, while the
        # session log holds both.
        assert len(session.leakage.events) == len(first.leakage_events) + len(
            second.leakage_events
        )
        assert first.leakage_events[0].kind == "query_pattern"
        assert second.leakage_events[0].kind == "query_pattern"
        # Channel accounting is per-query too: the session's cumulative
        # counters are the sum of the per-result deltas.
        assert (
            session.channel_stats.rounds
            == first.stats.rounds + second.stats.rounds
        )
        assert (
            session.channel_stats.total_bytes
            == first.stats.total_bytes + second.stats.total_bytes
        )


class TestSchedulerRaces:
    """The untested edge windows: cancel vs completion, close vs queued
    submit, and a deadline landing exactly on a round boundary."""

    def test_cancel_racing_completion_never_corrupts_state(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(scheme, relation, rtt_ms=1.0) as client:
            # A cancel that definitively lost the race is a clean no-op.
            done_job = client.submit(client.token([0, 1], k=2))
            events = list(done_job.events())  # drains to JobFinished
            assert isinstance(events[-1], JobFinished)
            assert done_job.cancel() is False
            assert done_job.status == JobStatus.DONE
            assert len(done_job.result(timeout=1).items) == 2

            # Cancels fired at staggered offsets race the job's own
            # completion; whatever side wins, the job must settle in a
            # coherent terminal state (DONE with a result, or CANCELLED
            # raising JobCancelled) and the server must keep serving.
            for attempt in range(4):
                job = client.submit(client.token([0, 1, 2], k=2))
                canceller = threading.Timer(0.05 * attempt, job.cancel)
                canceller.start()
                try:
                    result = job.result(timeout=120)
                except JobCancelled:
                    assert job.status == JobStatus.CANCELLED
                else:
                    assert job.status == JobStatus.DONE
                    assert len(result.items) == 2
                finally:
                    canceller.cancel()
                assert job.done()
            follow_up = client.query(client.token([0, 1], k=2))
            assert len(follow_up.items) == 2

    def test_close_racing_queued_submits(self):
        scheme, relation, _ = _fresh_deployment()
        client = repro.connect(scheme, relation, rtt_ms=10.0, scheduler_workers=1)
        jobs: list = []
        rejected = threading.Event()

        def submitter():
            try:
                for _ in range(32):
                    jobs.append(client.submit(client.token([0, 1], k=2)))
            except RuntimeError:
                rejected.set()  # close won the race mid-stream

        feeder = threading.Thread(target=submitter)
        feeder.start()
        while not jobs and feeder.is_alive():
            time.sleep(0.001)
        client.close()
        feeder.join(timeout=120)
        assert not feeder.is_alive()
        # Every job that made it through submit() must settle: finished
        # normally or cancelled by the shutdown — never stranded.
        for job in jobs:
            assert job._done.wait(timeout=120), "job stranded by close()"
            assert job.status in (JobStatus.DONE, JobStatus.CANCELLED)
        # And the post-close surface is consistently closed.
        with pytest.raises(RuntimeError):
            client.submit(client.token([0], k=1))

    def test_deadline_expiry_on_a_round_boundary(self):
        scheme, relation, rows = _fresh_deployment()
        with repro.connect(scheme, relation, rtt_ms=20.0) as client:
            job = client.submit(client.token([0, 1, 2], k=2), timeout=3600.0)
            for event in job.events():
                if isinstance(event, RoundTrip):
                    # Land the deadline exactly on the boundary the next
                    # before-round check observes (the event fires from
                    # the after-round hook of the previous boundary).
                    job._control._deadline = time.monotonic()
                    break
            with pytest.raises(JobTimeout):
                job.result(timeout=120)
            assert job.status == JobStatus.FAILED
            finished = [e for e in job.events() if isinstance(e, JobFinished)]
            assert finished and finished[0].status == JobStatus.FAILED
            # The boundary abort left the server fully serviceable.
            after = client.query(client.token([0, 1], k=2))
            winners = {o for o, _ in client.reveal(after)}
            assert winners == {o for o, _ in _oracle_topk(rows, [0, 1], 2)}


class TestListenerRobustness:
    """A broken ``events`` listener must observe, never corrupt."""

    def test_raising_listener_swallowed_and_recorded(self):
        scheme_a, relation_a, _ = _fresh_deployment()
        with repro.connect(scheme_a, relation_a) as client:
            clean = client.submit(client.token([0, 1], k=2)).result()

        scheme_b, relation_b, _ = _fresh_deployment()
        with repro.connect(scheme_b, relation_b) as client:
            job = client.submit(client.token([0, 1], k=2))
            job.add_listener(self._explode)
            watched = job.result(timeout=120)
        assert job.status == JobStatus.DONE
        assert job.listener_errors, "listener exceptions were not recorded"
        assert all(isinstance(e, RuntimeError) for e in job.listener_errors)
        # Bit-parity with the listener-free run: the round loop never
        # saw the exceptions.
        assert scheme_a.reveal(clean) == scheme_b.reveal(watched)
        assert clean.channel_stats.rounds == watched.channel_stats.rounds
        assert clean.channel_stats.total_bytes == watched.channel_stats.total_bytes
        assert _leakage_tuples(clean) == _leakage_tuples(watched)

    def test_context_on_event_hook_guarded(self):
        """The low-level hook path: a raising ``on_event`` on the S1
        context is swallowed into ``ctx.hook_errors`` mid-round."""
        scheme, relation, _ = _fresh_deployment()
        ctx = scheme._make_context(on_event=self._explode)
        try:
            result = scheme.query(relation, scheme.token([0, 1], k=2), ctx=ctx)
        finally:
            ctx.close()
        assert len(result.items) == 2
        assert ctx.hook_errors
        assert all(isinstance(e, RuntimeError) for e in ctx.hook_errors)

    @staticmethod
    def _explode(event):
        raise RuntimeError(f"broken listener saw {type(event).__name__}")


class TestCuratedSurface:
    def test_all_leads_with_client_facade(self):
        assert repro.__all__[:5] == [
            "connect",
            "TopKClient",
            "QueryJob",
            "WatchJob",
            "JobStatus",
        ]
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_legacy_spellings_warn_toward_connect(self):
        scheme, relation, _ = _fresh_deployment()
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            ctx = scheme.make_clouds()
        ctx.close()

        from repro.protocols.base import wire_clouds

        with pytest.warns(DeprecationWarning, match="repro.connect"):
            ctx = wire_clouds(
                scheme.keypair,
                scheme.dj,
                scheme.encoder,
                "inprocess",
                SecureRandom(1),
                SecureRandom(2),
            )
        ctx.close()


class TestSchedulerRobustness:
    def test_bounded_queue_backpressure_drains(self):
        scheme, relation, _ = _fresh_deployment()
        with repro.connect(
            scheme, relation, max_pending=2, scheduler_workers=2
        ) as client:
            jobs = [client.submit(client.token([0, 1], k=1)) for _ in range(6)]
            assert all(len(j.result(timeout=120).items) == 1 for j in jobs)

    def test_close_cancels_queued_jobs(self):
        scheme, relation, _ = _fresh_deployment()
        client = repro.connect(scheme, relation, rtt_ms=20.0, scheduler_workers=1)
        running = client.submit(client.token([0, 1, 2], k=2))
        queued = client.submit(client.token([0, 1], k=2))
        closer = threading.Thread(target=client.close)
        closer.start()
        closer.join(timeout=120)
        assert not closer.is_alive()
        assert running.done() and queued.done()
        with pytest.raises(JobCancelled):
            queued.result(timeout=1)
        with pytest.raises(RuntimeError):
            client.submit(client.token([0], k=1))

    def test_server_close_idempotent_after_daemon_death(self):
        service = S2Service("tcp://127.0.0.1:0")
        address = service.start()
        try:
            scheme, relation, _ = _fresh_deployment()
            client = repro.connect(scheme, relation, address)
            first = client.query(client.token([0, 1], k=2))
            assert len(first.items) == 2
            service.close()
            with pytest.raises(TransportError):
                client.query(client.token([1, 2], k=2))
            # Teardown over the dead link must not raise a secondary
            # PeerDisconnected — and must stay idempotent.
            client.close()
            client.close()
            client.server.close()
        finally:
            disconnect_all()
            service.close()

"""Tests for the dataset generators and query workloads."""

import pytest

from repro.data import (
    anticorrelated_relation,
    correlated_relation,
    diabetes,
    gaussian_relation,
    insurance,
    pamap,
    paper_datasets,
    random_queries,
    synthetic_1m,
    uniform_relation,
)
from repro.data.uci import PAPER_SIZES
from repro.exceptions import DataError, QueryError
from repro.nra import SortedLists, nra_topk


class TestGenerators:
    @pytest.mark.parametrize(
        "gen", [gaussian_relation, uniform_relation, correlated_relation, anticorrelated_relation]
    )
    def test_shape_and_range(self, gen):
        relation = gen(50, 4, seed=1)
        assert relation.n_objects == 50
        assert relation.n_attributes == 4
        assert all(0 <= v <= 1000 for row in relation.rows for v in row)

    @pytest.mark.parametrize(
        "gen", [gaussian_relation, uniform_relation, correlated_relation, anticorrelated_relation]
    )
    def test_deterministic(self, gen):
        assert gen(20, 3, seed=9).rows == gen(20, 3, seed=9).rows
        assert gen(20, 3, seed=9).rows != gen(20, 3, seed=10).rows

    def test_correlation_affects_halting_depth(self):
        """The NRA-facing property the generators exist for: correlated
        data halts shallower than anti-correlated data."""
        corr = correlated_relation(60, 3, seed=4, correlation=0.95)
        anti = anticorrelated_relation(60, 3, seed=4)
        d_corr = nra_topk(SortedLists(corr.rows), 3).halting_depth
        d_anti = nra_topk(SortedLists(anti.rows), 3).halting_depth
        assert d_corr < d_anti

    def test_correlation_validation(self):
        with pytest.raises(DataError):
            correlated_relation(10, 2, correlation=1.5)

    def test_relation_validation(self):
        from repro.data.synthetic import Relation

        with pytest.raises(DataError):
            Relation(name="x", rows=[])
        with pytest.raises(DataError):
            Relation(name="x", rows=[[1], [1, 2]])

    def test_attribute_names_default(self):
        relation = gaussian_relation(5, 3, seed=0)
        assert relation.attribute_names == ["a0", "a1", "a2"]


class TestUciStandins:
    @pytest.mark.parametrize(
        "loader,name",
        [(insurance, "insurance"), (diabetes, "diabetes"), (pamap, "PAMAP"), (synthetic_1m, "synthetic")],
    )
    def test_schema_shapes(self, loader, name):
        relation = loader(scale=0.002)
        paper_n, paper_m = PAPER_SIZES[name]
        assert relation.name == name
        assert relation.n_attributes == paper_m
        assert relation.n_objects == max(8, round(paper_n * 0.002))

    def test_scale_validation(self):
        with pytest.raises(DataError):
            insurance(scale=0)
        with pytest.raises(DataError):
            insurance(scale=1.5)

    def test_insurance_is_duplicate_heavy(self):
        relation = insurance(scale=0.02)
        first_column = [row[0] for row in relation.rows]
        assert len(set(first_column)) < len(first_column) / 2

    def test_paper_datasets_helper(self):
        ds = paper_datasets(scale=0.001)
        assert [d.name for d in ds] == ["insurance", "diabetes", "PAMAP", "synthetic"]

    def test_values_nonnegative(self):
        for relation in paper_datasets(scale=0.001):
            assert all(v >= 0 for row in relation.rows for v in row)


class TestWorkloads:
    def test_spec_shapes(self):
        queries = random_queries(20, n_attributes=10, seed=3)
        assert len(queries) == 20
        for q in queries:
            assert 2 <= len(q.attributes) <= 8
            assert 2 <= q.k <= 20
            assert all(0 <= a < 10 for a in q.attributes)

    def test_deterministic(self):
        assert random_queries(5, 10, seed=1) == random_queries(5, 10, seed=1)

    def test_validation(self):
        with pytest.raises(QueryError):
            random_queries(1, 4, m_range=(2, 8))
        from repro.data.workloads import QuerySpec

        with pytest.raises(QueryError):
            QuerySpec(attributes=(1, 1), k=2)
        with pytest.raises(QueryError):
            QuerySpec(attributes=(1,), k=0)

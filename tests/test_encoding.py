"""Tests for the signed score encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.encoding import SignedEncoder
from repro.exceptions import EncodingRangeError

MODULUS = (1 << 127) + 1  # stand-in 128-bit odd modulus


@pytest.fixture(scope="module")
def encoder():
    return SignedEncoder(MODULUS, score_bits=16, blind_bits=24)


class TestConstruction:
    def test_too_small_modulus_rejected(self):
        with pytest.raises(EncodingRangeError):
            SignedEncoder(1 << 40, score_bits=32, blind_bits=40)

    def test_paper_sizes_fit(self):
        SignedEncoder((1 << 255) + 1, score_bits=32, blind_bits=40)


class TestEncodeDecode:
    @given(st.integers(min_value=-(MODULUS // 2) + 1, max_value=MODULUS // 2))
    @settings(max_examples=40)
    def test_roundtrip(self, encoder, value):
        assert encoder.decode(encoder.encode(value)) == value

    def test_negative_embedding(self, encoder):
        assert encoder.encode(-1) == MODULUS - 1
        assert encoder.decode(MODULUS - 1) == -1

    def test_out_of_range(self, encoder):
        with pytest.raises(EncodingRangeError):
            encoder.encode(MODULUS)


class TestScores:
    def test_check_score_bounds(self, encoder):
        assert encoder.check_score(0) == 0
        assert encoder.check_score(encoder.max_score) == encoder.max_score
        with pytest.raises(EncodingRangeError):
            encoder.check_score(-1)
        with pytest.raises(EncodingRangeError):
            encoder.check_score(encoder.max_score + 1)

    def test_sentinel_dominates_scores(self, encoder):
        assert encoder.sentinel > encoder.max_score

    def test_fits_aggregate(self, encoder):
        assert encoder.fits_aggregate(8)
        tight = SignedEncoder(1 << 70, score_bits=20, blind_bits=20)
        assert not tight.fits_aggregate(1 << 28)

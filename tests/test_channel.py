"""Tests for the inter-cloud accounting channel and latency model."""

import pytest

from repro.net.channel import Channel, ChannelStats, LinkModel, measure_size


class TestMeasureSize:
    def test_primitives(self):
        assert measure_size(None) == 0
        assert measure_size(True) == 1
        assert measure_size(0) == 1
        assert measure_size(255) == 1
        assert measure_size(256) == 2
        assert measure_size(b"abcd") == 4

    def test_nested_lists(self):
        assert measure_size([1, [2, (3, b"xy")]]) == 1 + 1 + 1 + 2

    def test_ciphertext(self, keypair, rng):
        c = keypair.public_key.encrypt(1, rng)
        assert measure_size(c) == keypair.public_key.ciphertext_bytes

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            measure_size(object())


class TestChannel:
    def test_round_and_bytes(self):
        ch = Channel()
        with ch.round("P"):
            ch.send(b"abc")
            ch.receive(b"defg")
        assert ch.stats.rounds == 1
        assert ch.stats.bytes_s1_to_s2 == 3
        assert ch.stats.bytes_s2_to_s1 == 4
        assert ch.stats.total_bytes == 7
        assert ch.stats.per_protocol_bytes["P"] == 7
        assert ch.stats.per_protocol_rounds["P"] == 1

    def test_nested_protocol_attribution(self):
        ch = Channel()
        with ch.protocol("outer"):
            with ch.round("inner"):
                ch.send(b"xx")
        assert ch.stats.per_protocol_bytes["inner"] == 2
        assert ch.stats.rounds == 1

    def test_send_returns_payload(self):
        ch = Channel()
        with ch.round("P"):
            assert ch.send(b"a") == b"a"
            assert ch.send(b"a", b"b") == (b"a", b"b")

    def test_snapshot_delta(self):
        ch = Channel()
        with ch.round("P"):
            ch.send(b"ab")
        before = ch.snapshot()
        with ch.round("Q"):
            ch.send(b"cdef")
        delta = ch.stats.delta(before)
        assert delta.total_bytes == 4
        assert delta.rounds == 1
        assert delta.per_protocol_bytes == {"Q": 4}

    def test_reset(self):
        ch = Channel()
        with ch.round("P"):
            ch.send(b"ab")
        ch.reset()
        assert ch.stats.total_bytes == 0
        assert ch.stats.rounds == 0


class TestLinkModel:
    def test_bandwidth_only(self):
        stats = ChannelStats(bytes_s1_to_s2=50_000_000 // 8, rounds=0)
        # 50 Mbit over a 50 Mbps link = 1 second.
        assert LinkModel(bandwidth_mbps=50).latency_seconds(stats) == pytest.approx(1.0)

    def test_rtt_contribution(self):
        stats = ChannelStats(rounds=10)
        model = LinkModel(bandwidth_mbps=50, rtt_ms=5)
        assert model.latency_seconds(stats) == pytest.approx(0.05)

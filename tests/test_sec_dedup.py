"""Tests for SecDedup (Algorithm 7) and SecDupElim (Section 10.1)."""

import pytest

from repro.protocols.sec_dedup import sec_dedup
from repro.protocols.sec_dup_elim import sec_dup_elim
from repro.exceptions import ProtocolError
from repro.structures.ehl_plus import EhlPlusFactory
from repro.structures.items import ScoredItem


@pytest.fixture()
def factory(ctx):
    return EhlPlusFactory(ctx.public_key, b"d" * 32, n_hashes=3, rng=ctx.rng)


def _scored(ctx, factory, object_id, worst, best):
    return ScoredItem(
        ehl=factory.encode(object_id),
        worst=ctx.encrypt(worst),
        best=ctx.encrypt(best),
        record=ctx.encrypt(hash(object_id) % 1000),
    )


def _decrypt_pairs(items, keypair):
    sk = keypair.secret_key
    return sorted((sk.decrypt_signed(i.worst), sk.decrypt_signed(i.best)) for i in items)


class TestSecDedup:
    def test_no_duplicates_preserved(self, ctx, factory, keypair, own_keypair):
        items = [_scored(ctx, factory, f"o{i}", i * 10, i * 10 + 1) for i in range(4)]
        result = sec_dedup(ctx, items, own_keypair)
        assert len(result) == 4
        assert _decrypt_pairs(result, keypair) == _decrypt_pairs(items, keypair)

    def test_duplicates_buried(self, ctx, factory, keypair, own_keypair):
        items = [
            _scored(ctx, factory, "dup", 10, 20),
            _scored(ctx, factory, "dup", 10, 20),
            _scored(ctx, factory, "solo", 5, 6),
        ]
        result = sec_dedup(ctx, items, own_keypair)
        assert len(result) == 3
        scores = _decrypt_pairs(result, keypair)
        sentinel = -ctx.encoder.sentinel
        assert (sentinel, sentinel) in scores
        assert (10, 20) in scores
        assert (5, 6) in scores

    def test_buried_identity_randomized(self, ctx, factory, keypair, own_keypair):
        items = [_scored(ctx, factory, "dup", 1, 1) for _ in range(2)]
        result = sec_dedup(ctx, items, own_keypair)
        # After burial the two items must no longer test equal.
        eq = result[0].ehl.minus(result[1].ehl, ctx.rng)
        assert keypair.secret_key.decrypt(eq) != 0

    def test_rank_preference(self, ctx, factory, keypair, own_keypair):
        """The lowest-rank copy survives with its scores intact."""
        items = [
            _scored(ctx, factory, "dup", 111, 222),   # rank 1
            _scored(ctx, factory, "dup", 333, 444),   # rank 0  <- keeper
        ]
        result = sec_dedup(ctx, items, own_keypair, ranks=[1, 0])
        scores = _decrypt_pairs(result, keypair)
        assert (333, 444) in scores
        assert (111, 222) not in scores

    def test_fresh_encryptions(self, ctx, factory, own_keypair):
        items = [_scored(ctx, factory, "a", 1, 2), _scored(ctx, factory, "b", 3, 4)]
        originals = {i.worst.value for i in items}
        result = sec_dedup(ctx, items, own_keypair)
        assert all(i.worst.value not in originals for i in result)

    def test_trivial_inputs(self, ctx, factory, own_keypair):
        assert sec_dedup(ctx, [], own_keypair) == []
        single = [_scored(ctx, factory, "x", 1, 2)]
        assert sec_dedup(ctx, single, own_keypair) == single

    def test_rank_length_validated(self, ctx, factory, own_keypair):
        items = [_scored(ctx, factory, "a", 1, 2), _scored(ctx, factory, "b", 3, 4)]
        with pytest.raises(ProtocolError):
            sec_dedup(ctx, items, own_keypair, ranks=[0])

    def test_group_size_leakage_recorded(self, ctx, factory, own_keypair):
        items = [
            _scored(ctx, factory, "dup", 1, 2),
            _scored(ctx, factory, "dup", 1, 2),
            _scored(ctx, factory, "x", 3, 4),
        ]
        sec_dedup(ctx, items, own_keypair)
        groups = ctx.leakage.by_kind("dedup_groups")[-1].payload
        assert groups == [1, 2]


class TestSecDupElim:
    def test_duplicates_dropped(self, ctx, factory, keypair, own_keypair):
        items = [
            _scored(ctx, factory, "dup", 10, 20),
            _scored(ctx, factory, "dup", 10, 20),
            _scored(ctx, factory, "solo", 5, 6),
        ]
        result = sec_dup_elim(ctx, items, own_keypair)
        assert len(result) == 2
        assert _decrypt_pairs(result, keypair) == [(5, 6), (10, 20)]

    def test_three_way_group(self, ctx, factory, keypair, own_keypair):
        items = [_scored(ctx, factory, "t", 7, 8) for _ in range(3)]
        items.append(_scored(ctx, factory, "u", 1, 2))
        result = sec_dup_elim(ctx, items, own_keypair)
        assert len(result) == 2

    def test_rank_preference(self, ctx, factory, keypair, own_keypair):
        items = [
            _scored(ctx, factory, "dup", 111, 222),
            _scored(ctx, factory, "dup", 333, 444),
        ]
        result = sec_dup_elim(ctx, items, own_keypair, ranks=[5, 2])
        assert _decrypt_pairs(result, keypair) == [(333, 444)]

    def test_uniqueness_leakage_recorded(self, ctx, factory, own_keypair):
        items = [
            _scored(ctx, factory, "dup", 1, 1),
            _scored(ctx, factory, "dup", 1, 1),
        ]
        sec_dup_elim(ctx, items, own_keypair)
        uniques = [e for e in ctx.leakage.by_kind("unique_count")]
        assert any(e.payload == 1 for e in uniques)

    def test_no_duplicates_noop(self, ctx, factory, keypair, own_keypair):
        items = [_scored(ctx, factory, f"o{i}", i, i) for i in range(3)]
        result = sec_dup_elim(ctx, items, own_keypair)
        assert len(result) == 3

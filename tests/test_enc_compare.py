"""Tests for both EncCompare constructions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rng import SecureRandom
from repro.exceptions import ProtocolError
from repro.protocols.base import make_parties
from repro.protocols.enc_compare import comparison_bits, enc_compare

CASES = [
    (0, 0),
    (0, 1),
    (1, 0),
    (5, 5),
    (2, 100),
    (100, 2),
    (-3, 4),
    (4, -3),
    (-9, -9),
    (-10, -2),
    (-2, -10),
]


class TestBlinded:
    @pytest.mark.parametrize("a,b", CASES)
    def test_exhaustive_cases(self, ctx, a, b):
        assert enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "blinded") == (a <= b)

    def test_sentinel_ordering(self, ctx):
        sentinel = -ctx.encoder.sentinel
        assert enc_compare(ctx, ctx.encrypt(sentinel), ctx.encrypt(0), "blinded")
        assert not enc_compare(ctx, ctx.encrypt(0), ctx.encrypt(sentinel), "blinded")

    def test_one_round(self, ctx):
        before = ctx.channel.stats.rounds
        enc_compare(ctx, ctx.encrypt(1), ctx.encrypt(2), "blinded")
        assert ctx.channel.stats.rounds == before + 1

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=30)
    def test_property(self, keypair, a, b):
        ctx = make_parties(keypair, rng=SecureRandom(a * 7919 + b))
        assert enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "blinded") == (a <= b)


class TestDgk:
    @pytest.mark.parametrize("a,b", CASES)
    def test_exhaustive_cases(self, ctx, a, b):
        assert enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "dgk") == (a <= b)

    def test_sentinel_ordering(self, ctx):
        sentinel = -ctx.encoder.sentinel
        assert enc_compare(ctx, ctx.encrypt(sentinel), ctx.encrypt(7), "dgk")
        assert not enc_compare(ctx, ctx.encrypt(7), ctx.encrypt(sentinel), "dgk")

    @given(st.integers(-500, 500), st.integers(-500, 500))
    @settings(max_examples=15)
    def test_property(self, keypair, a, b):
        ctx = make_parties(keypair, rng=SecureRandom(a * 31 + b))
        assert enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "dgk") == (a <= b)

    def test_boundary_powers_of_two(self, ctx):
        for shift in (1, 4, 10):
            v = 1 << shift
            assert enc_compare(ctx, ctx.encrypt(v - 1), ctx.encrypt(v), "dgk")
            assert not enc_compare(ctx, ctx.encrypt(v), ctx.encrypt(v - 1), "dgk")

    def test_three_rounds(self, ctx):
        before = ctx.channel.stats.rounds
        enc_compare(ctx, ctx.encrypt(1), ctx.encrypt(2), "dgk")
        assert ctx.channel.stats.rounds == before + 3


class TestInterface:
    def test_unknown_method(self, ctx):
        with pytest.raises(ProtocolError):
            enc_compare(ctx, ctx.encrypt(1), ctx.encrypt(2), method="magic")

    def test_comparison_bits_covers_sentinel(self, ctx):
        assert (1 << (comparison_bits(ctx) - 1)) > ctx.encoder.sentinel

    def test_methods_agree(self, ctx):
        for a, b in CASES:
            blinded = enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "blinded")
            dgk = enc_compare(ctx, ctx.encrypt(a), ctx.encrypt(b), "dgk")
            assert blinded == dgk == (a <= b)

    def test_s2_observations_are_coin_like(self, ctx):
        """Over many random comparisons, the sign bits S2 sees under the
        blinded construction should be roughly balanced (they are masked
        by S1's coin)."""
        signs = []
        for i in range(60):
            enc_compare(ctx, ctx.encrypt(3), ctx.encrypt(9), "blinded")
        signs = [e.payload for e in ctx.leakage.by_kind("cmp_sign")]
        assert 10 < sum(signs) < 50

"""Sharded S1 relations: property-based transcript-equivalence harness.

The repo's core invariant is that every execution strategy produces the
*same S2-visible transcript* — results, round counts, byte totals and
leakage event sequence — for the same seeded deployment.  PR 5 adds
relation sharding (``repro.server.sharding``), and this suite locks the
invariant down **property-style**: Hypothesis draws random relations,
query shapes, engines, shard counts and transports, and every draw must
reproduce the unsharded transcript bit for bit.

Deterministic tests cover the plumbing around the property: the shard
plan partition laws, the fan-in validation, the server/clients routes
(``TopKServer(shards=N)`` / ``connect(shards=N)`` /
``QueryConfig(shards=...)``), the per-shard ``QueryStats`` slice, and
the process-wide slice store.

Requires Hypothesis (the ``test`` extra); the module skips cleanly
where only the dependency-free core is installed.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip(
    "hypothesis", reason="property harness needs the 'test' extra (hypothesis)"
)

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

import repro  # noqa: E402
from repro.core.params import SystemParams  # noqa: E402
from repro.core.results import QueryConfig, ShardStats  # noqa: E402
from repro.core.scheme import SecTopK  # noqa: E402
from repro.exceptions import ProtocolError, QueryError, ShardFanInError  # noqa: E402
from repro.net.batching import fan_in_batches  # noqa: E402
from repro.server import TopKServer  # noqa: E402
from repro.server.sharding import (  # noqa: E402
    _SLICE_STORE,
    _SLICE_STORE_MAX,
    ShardPlan,
    ShardedQueryLists,
    invalidate_slices,
)

SEED = 424242

# Every property example runs two full secure queries; keep the example
# budget small and deterministic (derandomized) so the tier-1 suite
# stays fast and CI never flakes on a fresh draw.
PROPERTY_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _transcript(scheme: SecTopK, result) -> tuple:
    """Everything S2 (and the accountant) can see, as one comparable value."""
    return (
        scheme.reveal(result),
        result.halting_depth,
        result.channel_stats.rounds,
        result.channel_stats.bytes_s1_to_s2,
        result.channel_stats.bytes_s2_to_s1,
        tuple(
            (e.observer, e.protocol, e.kind, repr(e.payload))
            for e in result.leakage_events
        ),
    )


def _run(rows, attrs, k, config, transport="inprocess", weights=None, placement=None):
    """One query on a fresh, identically-seeded deployment."""
    scheme = SecTopK(SystemParams.tiny(), seed=SEED)
    encrypted = scheme.encrypt(rows)
    token = scheme.token(attrs, k=k, weights=weights)
    ctx = scheme._make_context(transport=transport, relation=encrypted)
    try:
        result = scheme.query(
            encrypted, token, config, ctx=ctx, shard_placement=placement
        )
    finally:
        ctx.close()
    return _transcript(scheme, result), result


# ---------------------------------------------------------------------------
# The tentpole property: sharded == unsharded, bit for bit.
# ---------------------------------------------------------------------------


@st.composite
def query_cases(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    m = draw(st.integers(min_value=2, max_value=3))
    rows = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=30), min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    attrs = sorted(
        draw(st.sets(st.integers(0, m - 1), min_size=min(2, m), max_size=m))
    )
    k = draw(st.integers(min_value=1, max_value=min(2, n)))
    engine = draw(st.sampled_from(["eager", "literal"]))
    variant = draw(st.sampled_from(["elim", "full", "batch"]))
    halting = draw(st.sampled_from(["strict", "paper"]))
    batch_p = draw(st.integers(2, 3)) if variant == "batch" else 150
    shards = draw(st.integers(min_value=2, max_value=5))
    transport = draw(st.sampled_from(["inprocess", "threaded"]))
    weights = draw(
        st.one_of(
            st.none(),
            st.lists(st.integers(1, 3), min_size=len(attrs), max_size=len(attrs)),
        )
    )
    config = QueryConfig(
        variant=variant, batch_p=batch_p, engine=engine, halting=halting
    )
    return rows, attrs, k, config, shards, transport, weights


class TestShardedEqualsUnsharded:
    """Acceptance criterion: ``shards >= 2`` is transcript-invisible."""

    @given(case=query_cases())
    @settings(**PROPERTY_SETTINGS)
    def test_bit_parity(self, case):
        rows, attrs, k, config, shards, transport, weights = case
        base, _ = _run(rows, attrs, k, config, transport, weights)
        sharded_config = QueryConfig(
            variant=config.variant,
            batch_p=config.batch_p,
            engine=config.engine,
            halting=config.halting,
            shards=shards,
        )
        sharded, result = _run(rows, attrs, k, sharded_config, transport, weights)
        assert sharded == base, (
            f"sharded transcript diverged (engine={config.engine}, "
            f"variant={config.variant}, shards={shards}, transport={transport})"
        )
        assert result.shard_stats, "sharded run reported no shard stats"

    @given(case=query_cases())
    @settings(**PROPERTY_SETTINGS)
    def test_shard_stats_tile_the_scan(self, case):
        """The per-shard cost slice is internally consistent: the slices
        tile ``[0, n)``, served records match the fetched windows, and
        untouched tail shards report zero work."""
        rows, attrs, k, config, shards, transport, weights = case
        sharded_config = QueryConfig(
            variant=config.variant,
            batch_p=config.batch_p,
            engine=config.engine,
            halting=config.halting,
            shards=shards,
        )
        _, result = _run(rows, attrs, k, sharded_config, transport, weights)

        stats = result.shard_stats
        n, m = len(rows), len(attrs)
        assert len(stats) == min(shards, n)  # clamped to the scan length
        assert stats[0].depth_lo == 0 and stats[-1].depth_hi == n
        for left, right in zip(stats, stats[1:]):
            assert left.depth_hi == right.depth_lo, "slices must be contiguous"

        # The scan fetches whole check windows: the deepest fetched depth
        # is the halting depth rounded up to a window boundary.
        window = sharded_config.check_every()
        depths = result.halting_depth
        fetched = min(n, ((depths + window - 1) // window) * window)
        assert sum(s.records_scanned for s in stats) == m * fetched
        for s in stats:
            if s.depth_lo < fetched:
                assert s.depth_reached == min(s.depth_hi, fetched)
                assert s.records_scanned == m * (
                    min(s.depth_hi, fetched) - s.depth_lo
                )
            else:
                assert s.depth_reached == 0 and s.records_scanned == 0

    def test_socket_transport_shard_leg(self):
        """One sharded run against a real S2 daemon: the wire transport
        carries the sharded scan identically too (the cheap complement
        to the in-process/threaded property dimension; CI runs the full
        shard-enabled transport-equivalence leg against a daemon)."""
        from repro.net.socket_transport import disconnect_all
        from repro.server import S2Service

        rows = [[(7 * i + 3 * j) % 23 for j in range(3)] for i in range(8)]
        service = S2Service("tcp://127.0.0.1:0")
        address = service.start()
        try:
            base, _ = _run(rows, [0, 1, 2], 2, QueryConfig())
            remote, _ = _run(rows, [0, 1, 2], 2, QueryConfig(shards=3), address)
            assert remote == base
        finally:
            disconnect_all()
            service.close()


class TestRemotePlacement:
    """The distributed form: plan slices live on remote shard daemons.

    Same acceptance bar as local sharding — the placement must be
    transcript-invisible (results, rounds, bytes, leakage bit-identical
    to the unsharded run) on every engine/variant/halting draw.  The
    lifecycle suite (worker death, delta-sync, restarts) lives in
    ``tests/test_shard_service.py``; this class pins only parity.
    """

    @pytest.fixture(scope="class")
    def shard_daemons(self):
        from repro.net.socket_transport import disconnect_all
        from repro.server.shard_service import ShardService

        services = [ShardService("tcp://127.0.0.1:0") for _ in range(2)]
        addresses = tuple(service.start() for service in services)
        yield addresses
        disconnect_all()
        for service in services:
            service.close()

    @given(case=query_cases())
    @settings(**PROPERTY_SETTINGS)
    def test_remote_bit_parity(self, case, shard_daemons):
        rows, attrs, k, config, shards, transport, weights = case
        base, _ = _run(rows, attrs, k, config, transport, weights)
        sharded_config = QueryConfig(
            variant=config.variant,
            batch_p=config.batch_p,
            engine=config.engine,
            halting=config.halting,
            shards=shards,
        )
        remote, result = _run(
            rows, attrs, k, sharded_config, transport, weights,
            placement=shard_daemons,
        )
        assert remote == base, (
            f"remote-sharded transcript diverged (engine={config.engine}, "
            f"variant={config.variant}, shards={shards}, transport={transport})"
        )
        assert result.shard_stats, "remote-sharded run reported no shard stats"


# ---------------------------------------------------------------------------
# Shard plan partition laws (pure, so the example budget can be generous).
# ---------------------------------------------------------------------------


class TestShardPlan:
    @given(
        n=st.integers(min_value=1, max_value=500),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None, derandomize=True)
    def test_partition_laws(self, n, shards):
        plan = ShardPlan.for_scan(n, shards)
        assert 1 <= plan.n_shards <= min(shards, n)
        # Contiguous cover of range(n)...
        assert plan.bounds[0][0] == 0 and plan.bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(plan.bounds, plan.bounds[1:]):
            assert hi == lo
        # ...balanced to within one row...
        sizes = [hi - lo for lo, hi in plan.bounds]
        assert max(sizes) - min(sizes) <= 1
        # ...and owner() agrees with the bounds.
        for shard, (lo, hi) in enumerate(plan.bounds):
            assert plan.owner(lo) == shard
            assert plan.owner(hi - 1) == shard

    def test_invalid_plans_rejected(self):
        with pytest.raises(QueryError):
            ShardPlan(0, 1)
        with pytest.raises(QueryError):
            ShardPlan(4, 5)
        with pytest.raises(QueryError):
            ShardPlan(4, 0)
        with pytest.raises(QueryError):
            ShardPlan(4, 2).owner(4)

    def test_overlapping_windows(self):
        plan = ShardPlan(10, 3)  # bounds: (0,4) (4,7) (7,10)
        assert plan.overlapping(0, 4) == [0]
        assert plan.overlapping(3, 5) == [0, 1]
        assert plan.overlapping(0, 10) == [0, 1, 2]
        assert plan.overlapping(5, 5) == []


class TestFanIn:
    def test_merges_depth_ordered(self):
        merged = fan_in_batches([[(3, "d"), (4, "e")], [(1, "b"), (2, "c")]])
        assert merged == [(1, "b"), (2, "c"), (3, "d"), (4, "e")]

    def test_rejects_overlap_and_gap(self):
        with pytest.raises(ProtocolError, match="overlapping"):
            fan_in_batches([[(1, "a")], [(1, "b")]])
        with pytest.raises(ProtocolError, match="gap"):
            fan_in_batches([[(1, "a")], [(3, "c")]])

    def test_empty_contributions_ok(self):
        assert fan_in_batches([[], [(5, "x")], []]) == [(5, "x")]

    def test_errors_name_the_offending_shard_and_window(self):
        """Fan-in failures are typed and carry the culprit: the shard id
        that contributed the bad depth plus the window bounds, so a
        distributed-scan bug is diagnosable from the exception alone."""
        with pytest.raises(ShardFanInError) as exc_info:
            fan_in_batches(
                [[(1, "a")], [(1, "b")]], 1, 2, shard_ids=[7, 9]
            )
        assert exc_info.value.shard_id == 9
        assert exc_info.value.window == (1, 2)
        assert "shard 9" in str(exc_info.value)

        with pytest.raises(ShardFanInError) as exc_info:
            fan_in_batches([[(0, "a")], [(2, "c")]], 0, 3, shard_ids=[4, 6])
        assert exc_info.value.window == (0, 3)
        assert "[0, 3)" in str(exc_info.value)

        # A stray depth outside the window is attributed to its owner.
        with pytest.raises(ShardFanInError) as exc_info:
            fan_in_batches([[(0, "a")], [(5, "z")]], 0, 2, shard_ids=[0, 3])
        assert exc_info.value.shard_id == 3

    def test_window_bounds_catch_edge_gaps(self):
        """Interior contiguity cannot see a missing first/last depth;
        the window bounds make those gaps diagnosable too."""
        batches = [[(1, "b")], [(2, "c")]]
        assert fan_in_batches(batches, 1, 3) == [(1, "b"), (2, "c")]
        with pytest.raises(ProtocolError, match="tile the window"):
            fan_in_batches(batches, 0, 3)  # depth 0 missing at the edge
        with pytest.raises(ProtocolError, match="tile the window"):
            fan_in_batches(batches, 1, 4)  # depth 3 missing at the edge
        with pytest.raises(ProtocolError, match="tile the window"):
            fan_in_batches([], 0, 1)  # nothing contributed at all


# ---------------------------------------------------------------------------
# Server / client routes and the slice store.
# ---------------------------------------------------------------------------


def _deployment(seed: int = SEED):
    rows = [[(11 * i + 5 * j + i * j) % 31 for j in range(3)] for i in range(9)]
    scheme = SecTopK(SystemParams.tiny(), seed=seed)
    return scheme, scheme.encrypt(rows), rows


class TestServerRoutes:
    def test_config_validation(self):
        with pytest.raises(QueryError):
            QueryConfig(shards=-1)
        with pytest.raises(ValueError):
            TopKServer(*_deployment()[:2], shards=-2)
        assert QueryConfig().effective_shards() == 0
        assert QueryConfig(shards=1).effective_shards() == 1

    def test_server_default_and_per_query_override(self):
        scheme_a, relation_a, _ = _deployment()
        with TopKServer(scheme_a, relation_a) as server:
            base = server.execute(scheme_a.token([0, 1, 2], k=2))

        scheme_b, relation_b, _ = _deployment()
        with TopKServer(scheme_b, relation_b, shards=3) as server:
            # Inherits the server default...
            default = server.execute(scheme_b.token([0, 1, 2], k=2))
            # ...and an explicit config overrides it.
            override = server.execute(
                scheme_b.token([0, 1, 2], k=2), QueryConfig(shards=2)
            )
        assert len(default.shard_stats) == 3
        assert len(override.shard_stats) == 2
        assert _transcript(scheme_a, base)[2:] == _transcript(scheme_b, default)[2:]

    def test_connect_shards_and_query_stats_slice(self):
        scheme, relation, _ = _deployment()
        with repro.connect(scheme, relation, shards=2) as client:
            result = client.query(client.token([0, 1], k=2))
        stats = result.stats
        assert len(stats.shards) == 2
        assert all(isinstance(s, ShardStats) for s in stats.shards)
        assert stats.shards[0].depth_lo == 0
        assert sum(s.records_scanned for s in stats.shards) > 0

    def test_unsharded_results_carry_empty_slice(self):
        scheme, relation, _ = _deployment()
        with repro.connect(scheme, relation) as client:
            result = client.query(client.token([0, 1], k=2))
        assert result.shard_stats is None
        assert result.stats.shards == ()

    def test_slice_store_reused_across_queries(self):
        scheme, relation, _ = _deployment()
        for stale in [k for k in _SLICE_STORE if k[0] == relation.relation_id()]:
            _SLICE_STORE.pop(stale, None)
        token = scheme.token([0, 1, 2], k=2)
        with TopKServer(scheme, relation, shards=3) as server:
            server.execute(token)
            matching = [k for k in _SLICE_STORE if k[0] == relation.relation_id()]
            assert matching, "sharded query did not populate the slice store"
            key = matching[0]
            # Key carries the relation fingerprint: list count + row count.
            assert key[3] == len(relation.lists)
            assert key[4] == relation.n_objects
            stored = _SLICE_STORE[key]
            server.execute(token)
            assert _SLICE_STORE[key] is stored, "slices re-built"

    def test_slice_store_is_a_true_lru(self):
        """A hit refreshes the entry's age (move-to-end), so a hot
        relation survives eviction pressure that retires colder ones."""
        scheme, relation, _ = _deployment()
        token = scheme.token([0, 1, 2], k=2)
        with TopKServer(scheme, relation, shards=3) as server:
            server.execute(token)
        (hot,) = [k for k in _SLICE_STORE if k[0] == relation.relation_id()]
        # Age the hot entry to the eviction end, then hit it: it must
        # move back to the fresh end.
        _SLICE_STORE.move_to_end(hot, last=False)
        lists = ShardedQueryLists(relation, token, n_shards=3)
        lists[0]  # touches the store through _shard_slices
        assert next(reversed(_SLICE_STORE)) == hot, "hit did not refresh LRU age"
        # Under eviction pressure the refreshed entry survives while the
        # filler entries (older, never hit) are retired first.
        _SLICE_STORE.move_to_end(hot, last=False)
        ShardedQueryLists(relation, token, n_shards=3)[0]
        filler_ids = []
        for i in range(_SLICE_STORE_MAX - 1):
            filler_scheme, filler_relation, _ = _deployment(seed=SEED + 1 + i)
            filler_token = filler_scheme.token([0, 1, 2], k=2)
            ShardedQueryLists(filler_relation, filler_token, n_shards=3)[0]
            filler_ids.append(filler_relation.relation_id())
        assert hot in _SLICE_STORE, "LRU evicted the most recently used entry"
        for rid in filler_ids:
            invalidate_slices(rid)

    def test_slice_store_key_fingerprints_relation_shape(self):
        """An id collision (simulated) between relations of different
        shapes must not cross-serve slices: the 9-row relation's slices
        would make the 5-row scan read past its end."""
        scheme, relation, rows = _deployment()
        token = scheme.token([0, 1, 2], k=2)
        with TopKServer(scheme, relation, shards=3) as server:
            server.execute(token)

        scheme2, _, _ = _deployment()
        relation2 = scheme2.encrypt(rows[:5])
        relation2._relation_id = relation.relation_id()  # forced collision
        token2 = scheme2.token([0, 1, 2], k=2)
        with TopKServer(scheme2, relation2, shards=3) as server:
            result = server.execute(token2)
        assert result.shard_stats[-1].depth_hi == 5
        keys = [k for k in _SLICE_STORE if k[0] == relation.relation_id()]
        assert {(k[3], k[4]) for k in keys} >= {(3, 9), (3, 5)}
        invalidate_slices(relation.relation_id())

    def test_sharded_lists_reject_bad_index(self):
        scheme, relation, _ = _deployment()
        token = scheme.token([0, 1], k=2)
        lists = ShardedQueryLists(relation, token, n_shards=2)
        column = lists[0]
        assert len(column) == relation.n_objects
        assert column[-1] is column[relation.n_objects - 1]
        with pytest.raises(IndexError):
            column[relation.n_objects]
        with pytest.raises(TypeError):
            column["0"]

"""The standalone shard-worker daemon: lifecycle and failure modes.

The parity property (remote placement is transcript-invisible) lives in
``tests/test_sharding.py``; this suite covers everything around it —
the slice registry (racing uploads, restart from the state dir), the
mutation delta-sync (touched prefixes re-key held slices bit-identically
to a full re-upload), and the failure surface (a worker dying or going
silent mid-window raises a typed error instead of hanging the fan-in).

A CI leg additionally launches two shard daemons as separate OS
processes and points ``REPRO_REMOTE_SHARDS`` here, which activates
:class:`TestExternalDaemons` against them.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core.params import SystemParams
from repro.core.results import QueryConfig
from repro.core.scheme import SecTopK
from repro.exceptions import ShardWorkerError, TransportError
from repro.net.socket_transport import disconnect_all, shard_client_for
from repro.server import TopKServer
from repro.server.mutations import MutableRelation
from repro.server.shard_service import ShardService
from repro.server import sharding

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

SEED = 424242
ROWS = [[(11 * i + 5 * j + i * j) % 31 for j in range(3)] for i in range(9)]


@pytest.fixture()
def daemon():
    service = ShardService("tcp://127.0.0.1:0")
    address = service.start()
    yield service, address
    disconnect_all()
    service.close()


def _deployment(seed: int = SEED):
    scheme = SecTopK(SystemParams.tiny(), seed=seed)
    return scheme, scheme.encrypt(ROWS)


def _transcript(scheme, result):
    return (
        scheme.reveal(result),
        result.halting_depth,
        result.channel_stats.rounds,
        result.channel_stats.bytes_s1_to_s2,
        result.channel_stats.bytes_s2_to_s1,
        tuple(
            (e.observer, e.protocol, e.kind, repr(e.payload))
            for e in result.leakage_events
        ),
    )


def _slice_payload(relation, shard_id: int, n_shards: int) -> dict:
    plan = sharding.ShardPlan.for_scan(relation.n_objects, n_shards)
    lo, hi = plan.bounds[shard_id]
    return {
        "relation_id": relation.relation_id(),
        "shard_id": shard_id,
        "n_shards": plan.n_shards,
        "lo": lo,
        "hi": hi,
        "lists": {
            name: entries[lo:hi] for name, entries in relation.lists.items()
        },
    }


class TestPlacementRoutes:
    def test_server_placement_form(self, daemon):
        """``TopKServer(shards=[...])`` serves the same answers as a
        local deployment, with shard stats tiling the scan."""
        _, address = daemon
        scheme_a, relation_a = _deployment()
        with TopKServer(scheme_a, relation_a) as server:
            base = server.execute(scheme_a.token([0, 1, 2], k=2))

        scheme_b, relation_b = _deployment()
        with TopKServer(scheme_b, relation_b, shards=[address]) as server:
            remote = server.execute(scheme_b.token([0, 1, 2], k=2))
        assert _transcript(scheme_a, base) == _transcript(scheme_b, remote)
        assert remote.shard_stats
        assert remote.shard_stats[0].depth_lo == 0
        assert remote.shard_stats[-1].depth_hi == relation_b.n_objects

    def test_placement_validation(self):
        scheme, relation = _deployment()
        with pytest.raises(ValueError, match="at least one address"):
            TopKServer(scheme, relation, shards=[])
        with pytest.raises(ValueError, match="socket addresses"):
            TopKServer(scheme, relation, shards=["inprocess"])

    def test_second_query_reuses_uploaded_slices(self, daemon):
        """The repeat query ships zero SLICE frames — and both queries
        still match a local control run transcript for transcript (a
        repeat legitimately differs from its first run, so the pairing
        is first-with-first, second-with-second)."""
        service, address = daemon
        scheme_a, relation_a = _deployment()
        token_a = scheme_a.token([0, 1, 2], k=2)
        with TopKServer(scheme_a, relation_a, cache=False) as server:
            local = [
                _transcript(scheme_a, server.execute(token_a)) for _ in range(2)
            ]

        scheme_b, relation_b = _deployment()
        token_b = scheme_b.token([0, 1, 2], k=2)
        with TopKServer(
            scheme_b, relation_b, shards=[address], cache=False
        ) as server:
            first = server.execute(token_b)
            uploads = service.stats()["slice_uploads"]
            assert uploads >= 2, "first sharded query did not upload slices"
            second = server.execute(token_b)
            assert service.stats()["slice_uploads"] == uploads, (
                "repeat query re-uploaded slices"
            )
        assert _transcript(scheme_b, first) == local[0]
        assert _transcript(scheme_b, second) == local[1]

    def test_round_robin_over_fewer_daemons_than_shards(self, daemon):
        """A 4-shard plan over one daemon still works (round-robin)."""
        _, address = daemon
        scheme_a, relation_a = _deployment()
        with TopKServer(scheme_a, relation_a) as server:
            base = server.execute(scheme_a.token([0, 1, 2], k=2))
        scheme_b, relation_b = _deployment()
        with TopKServer(scheme_b, relation_b, shards=[address]) as server:
            remote = server.execute(
                scheme_b.token([0, 1, 2], k=2), QueryConfig(shards=4)
            )
        assert _transcript(scheme_a, base) == _transcript(scheme_b, remote)
        assert len(remote.shard_stats) == 4


class TestSliceRegistry:
    def test_racing_uploads_register_once(self, daemon):
        """Concurrent SLICE frames for the same (relation, shard) are
        idempotent: one registration, every uploader acknowledged."""
        service, address = daemon
        _, relation = _deployment()
        payload = _slice_payload(relation, 0, 2)
        client = shard_client_for(address)
        barrier = threading.Barrier(8)
        errors = []

        def _upload():
            try:
                barrier.wait(timeout=5)
                client.upload_slice(payload)
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=_upload) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        stats = service.stats()
        assert stats["slice_uploads"] == 8
        assert stats["slices"] == 1

    def test_restart_from_state_dir_skips_reupload(self, tmp_path):
        """A restarted daemon serves its spilled slices: the client's
        next query needs zero SLICE frames and the answers match.

        The *daemon* restarts, not the deployment — ciphertext
        randomness is not replayable, so only the live relation carries
        the id the spills are keyed under (same contract as the S2
        registration spill)."""
        state = str(tmp_path / "shard-state")
        scheme, relation = _deployment()
        token = scheme.token([0, 1, 2], k=2)

        first = ShardService("tcp://127.0.0.1:0", state_dir=state)
        address = first.start()
        try:
            with TopKServer(scheme, relation, shards=[address]) as server:
                baseline = server.execute(token)
            assert first.stats()["slice_uploads"] >= 2
        finally:
            disconnect_all()
            first.close()
        spills = [f for f in os.listdir(state) if f.endswith(".slice")]
        assert {f.split(".")[0] for f in spills} == {relation.relation_id()}

        second = ShardService("tcp://127.0.0.1:0", state_dir=state)
        address = second.start()
        try:
            assert second.stats()["slices_restored"] >= 2
            with TopKServer(scheme, relation, shards=[address]) as server:
                revived = server.execute(token)
            assert second.stats()["slice_uploads"] == 0, (
                "restart lost the spilled slices"
            )
            # The repeat run may halt at a different depth (the scheme's
            # depth history), revealing exact scores where the first run
            # revealed NRA bounds — the winning set is the invariant.
            assert {oid for oid, _ in scheme.reveal(revived)} == {
                oid for oid, _ in scheme.reveal(baseline)
            }
        finally:
            disconnect_all()
            second.close()

    def test_corrupt_spill_is_skipped_not_fatal(self, tmp_path):
        state = tmp_path / "shard-state"
        state.mkdir()
        (state / "nothex!.0.slice").write_bytes(b"garbage")
        (state / "aaaa.0.slice").write_bytes(b"\x80\x04junk")
        service = ShardService("tcp://127.0.0.1:0", state_dir=str(state))
        try:
            service.start()
            assert service.stats()["slices"] == 0
        finally:
            service.close()

    def test_handshake_requires_shard_banner(self, daemon):
        """An S2 client (wrong banner) is rejected at the handshake —
        the shard link never silently downgrades."""
        from repro.net.socket_transport import client_for

        _, address = daemon
        with pytest.raises(TransportError):
            client_for(address)
        disconnect_all()


class TestFailureModes:
    def test_worker_death_mid_query_raises_typed_error(self):
        """Killing the daemon between queries fails the next scan with
        :class:`ShardWorkerError` naming the shard and address — and a
        submitted job resolves FAILED instead of hanging."""
        service = ShardService("tcp://127.0.0.1:0")
        address = service.start()
        scheme, relation = _deployment()
        token = scheme.token([0, 1, 2], k=2)
        try:
            with TopKServer(
                scheme, relation, shards=[address], cache=False
            ) as server:
                server.execute(token)  # healthy round, slices uploaded
                service.close()
                with pytest.raises(ShardWorkerError) as exc_info:
                    server.execute(token)
                assert exc_info.value.address == address
                assert exc_info.value.shard_id is not None
        finally:
            disconnect_all()
            service.close()

    def test_silent_worker_times_out_not_hangs(self, daemon, monkeypatch):
        """A daemon that accepts the request but never answers trips the
        per-request timeout: the connection is poisoned and the scan
        surfaces :class:`ShardWorkerError`, not a hung fan-in."""
        service, address = daemon
        monkeypatch.setattr(sharding, "SHARD_REQUEST_TIMEOUT", 0.3)

        def _never_answer(self, msg):
            time.sleep(2.0)
            return None

        monkeypatch.setattr(ShardService, "_depth_batch", _never_answer)
        scheme, relation = _deployment()
        token = scheme.token([0, 1, 2], k=2)
        started = time.monotonic()
        with TopKServer(scheme, relation, shards=[address], cache=False) as server:
            with pytest.raises(ShardWorkerError, match="did not answer"):
                server.execute(token)
        assert time.monotonic() - started < 10.0

    def test_dead_daemon_fails_job_not_scheduler(self):
        service = ShardService("tcp://127.0.0.1:0")
        address = service.start()
        scheme, relation = _deployment()
        token = scheme.token([0, 1, 2], k=2)
        try:
            with TopKServer(
                scheme, relation, shards=[address], cache=False
            ) as server:
                server.execute(token)
                service.close()
                job = server.submit(token)
                with pytest.raises(ShardWorkerError):
                    job.result(timeout=30)
                # The scheduler survives the failed job: queries against
                # a repaired placement would dispatch fine (closed check).
                assert job.status == "failed"
        finally:
            disconnect_all()
            service.close()


class TestMutationDeltaSync:
    OPS = (
        ("insert", ([29, 7, 16],)),
        ("update", (2, [1, 25, 3])),
        ("delete", (4,)),
    )

    def _run_mutation_leg(self, wipe_between: bool, n_daemons: int = 1):
        """One full deployment: query, mutate thrice, query again.

        ``wipe_between=False`` exercises the delta-sync path (the daemon
        re-keys its held slices from the shipped prefixes);
        ``wipe_between=True`` wipes the daemon after the mutations so the
        second query must fall back to a full slice re-upload.  Both legs
        are identically seeded, so their transcripts must match bit for
        bit — the acceptance criterion for the delta-sync.
        """
        services = [
            ShardService("tcp://127.0.0.1:0") for _ in range(n_daemons)
        ]
        addresses = [service.start() for service in services]
        try:
            scheme = SecTopK(SystemParams.tiny(), seed=SEED)
            mutable = MutableRelation(scheme, ROWS)
            token = scheme.token([0, 1, 2], k=2)
            with TopKServer(
                scheme, mutable, shards=addresses, cache=False
            ) as server:
                server.execute(token)  # registers pre-mutation slices
                for op, args in self.OPS:
                    getattr(server, op)(*args)
                if wipe_between:
                    for service in services:
                        with service._lock:
                            service._slices.clear()
                            service._weighted.clear()
                result = server.execute(token)
                transcript = _transcript(scheme, result)
            uploads = sum(s.stats()["slice_uploads"] for s in services)
            rekeyed = sum(s.stats()["slices_rekeyed"] for s in services)
            dropped = sum(s.stats()["slices_dropped"] for s in services)
            return transcript, uploads, rekeyed, dropped
        finally:
            disconnect_all()
            for service in services:
                service.close()

    def test_delta_sync_matches_full_reupload(self):
        """One daemon holding every slice: all rebuilds are fillable, so
        the post-mutation query runs on delta-synced slices alone —
        bit-identical to the full re-upload and cheaper on the wire."""
        delta, delta_uploads, delta_rekeyed, _ = self._run_mutation_leg(False)
        full, full_uploads, _, _ = self._run_mutation_leg(True)
        assert delta == full, "delta-synced transcript diverged from re-upload"
        assert delta_rekeyed > 0, "no slice was actually delta-synced"
        # The whole point: only prefix rows shipped, no second upload.
        assert delta_uploads < full_uploads

    def test_partial_drop_falls_back_to_reupload(self):
        """Two daemons, one slice each: the delete's suffix shift needs
        a row the sibling daemon holds, so that rebuild is dropped (not
        re-keyed stale) and lazily re-uploaded — transcripts must still
        match the wiped-daemon control exactly."""
        delta, _, _, dropped = self._run_mutation_leg(False, n_daemons=2)
        full, _, _, _ = self._run_mutation_leg(True, n_daemons=2)
        assert delta == full, "partial-drop fallback diverged"
        assert dropped > 0, "expected at least one unfillable rebuild"

    def test_drop_only_mutate_purges_slices(self, daemon):
        service, address = daemon
        _, relation = _deployment()
        client = shard_client_for(address)
        client.upload_slice(_slice_payload(relation, 0, 2))
        client.upload_slice(_slice_payload(relation, 1, 2))
        assert service.stats()["slices"] == 2
        summary = client.mutate(
            {"old_id": relation.relation_id(), "new_id": None, "prefixes": None}
        )
        assert summary == {"rekeyed": 0, "dropped": 2}
        assert service.stats()["slices"] == 0

    def test_unknown_old_id_is_a_noop(self, daemon):
        _, address = daemon
        client = shard_client_for(address)
        summary = client.mutate(
            {"old_id": "facefeed", "new_id": None, "prefixes": None}
        )
        assert summary == {"rekeyed": 0, "dropped": 0}


@pytest.mark.skipif(
    "REPRO_REMOTE_SHARDS" not in os.environ,
    reason="needs externally launched shard daemons (CI socket-smoke leg)",
)
class TestExternalDaemons:
    """Against real daemon subprocesses (comma-separated addresses in
    ``REPRO_REMOTE_SHARDS``): the in-process suite above already pins
    semantics; this leg pins the packaging — ``python -m
    repro.server.shard_service`` serves the same transcripts."""

    def test_query_parity_over_external_daemons(self):
        placement = tuple(os.environ["REPRO_REMOTE_SHARDS"].split(","))
        scheme_a, relation_a = _deployment()
        with TopKServer(scheme_a, relation_a) as server:
            base = server.execute(scheme_a.token([0, 1, 2], k=2))
        scheme_b, relation_b = _deployment()
        try:
            with TopKServer(scheme_b, relation_b, shards=list(placement)) as server:
                remote = server.execute(scheme_b.token([0, 1, 2], k=2))
        finally:
            disconnect_all()
        assert _transcript(scheme_a, base) == _transcript(scheme_b, remote)
        assert len(remote.shard_stats) == max(2, len(placement))
